"""Controlled injection of data quality problems.

"From this initial dataset we will introduce some data quality problems in a
controlled manner.  This allows us to test the incidence of data quality in
the LOD sources." (paper, §3.1)

Every injector takes a clean dataset and a ``severity`` in ``[0, 1]`` and
returns a *new* degraded dataset; the original is never mutated.  Injector
names deliberately match the data quality criteria of :mod:`repro.quality`
that they degrade, so experiment records can relate "what was injected" to
"what was measured".
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence

import numpy as np

from repro.exceptions import ExperimentError
from repro.tabular.dataset import Column, ColumnRole, ColumnType, Dataset, is_missing_value


class Injector(ABC):
    """A reproducible, severity-parameterised data quality degradation."""

    #: Registry key; also the name of the quality criterion primarily degraded.
    name = "injector"

    @abstractmethod
    def apply(self, dataset: Dataset, severity: float, seed: int = 0) -> Dataset:
        """Return a degraded copy of ``dataset``.

        ``severity`` 0.0 must return an (equal-valued) copy; 1.0 is the
        strongest supported degradation.
        """

    def _check_severity(self, severity: float) -> float:
        if not 0.0 <= severity <= 1.0:
            raise ExperimentError(f"severity must be in [0, 1], got {severity}")
        return severity


def _feature_columns(dataset: Dataset, include_target: bool = False) -> list[str]:
    roles = {ColumnRole.FEATURE}
    if include_target:
        roles.add(ColumnRole.TARGET)
    return [c.name for c in dataset.columns if c.role in roles]


class MissingValuesInjector(Injector):
    """Remove cells completely at random from the feature columns.

    ``severity`` is the fraction of feature cells blanked (degrades the
    *completeness* criterion).
    """

    name = "completeness"

    def __init__(self, columns: Sequence[str] | None = None) -> None:
        self.columns = list(columns) if columns is not None else None

    def apply(self, dataset: Dataset, severity: float, seed: int = 0) -> Dataset:
        severity = self._check_severity(severity)
        result = dataset.copy()
        if severity == 0.0:
            return result
        rng = random.Random(seed)
        target_columns = self.columns if self.columns is not None else _feature_columns(dataset)
        columns = []
        for column in result.columns:
            if column.name not in target_columns:
                columns.append(column)
                continue
            values = column.tolist()
            for i in range(len(values)):
                if rng.random() < severity:
                    values[i] = None
            columns.append(Column(column.name, values, ctype=column.ctype, role=column.role))
        return Dataset(columns, name=dataset.name)


class NoiseInjector(Injector):
    """Corrupt feature values (degrades the *accuracy* criterion).

    With probability ``severity`` a numeric cell is replaced by its value plus
    Gaussian noise of ``magnitude`` column standard deviations, and a
    categorical cell is replaced by a different random level.
    """

    name = "accuracy"

    def __init__(self, magnitude: float = 3.0, columns: Sequence[str] | None = None) -> None:
        self.magnitude = magnitude
        self.columns = list(columns) if columns is not None else None

    def apply(self, dataset: Dataset, severity: float, seed: int = 0) -> Dataset:
        severity = self._check_severity(severity)
        result = dataset.copy()
        if severity == 0.0:
            return result
        rng = np.random.default_rng(seed)
        target_columns = self.columns if self.columns is not None else _feature_columns(dataset)
        columns = []
        for column in result.columns:
            if column.name not in target_columns:
                columns.append(column)
                continue
            values = column.tolist()
            if column.is_numeric():
                present = [v for v in values if not is_missing_value(v)]
                std = float(np.std(present)) if len(present) > 1 else 1.0
                std = std if std > 0 else 1.0
                for i, value in enumerate(values):
                    if not is_missing_value(value) and rng.random() < severity:
                        values[i] = float(value) + float(rng.normal(0, self.magnitude * std))
            else:
                levels = [str(v) for v in column.distinct()]
                if len(levels) > 1:
                    for i, value in enumerate(values):
                        if not is_missing_value(value) and rng.random() < severity:
                            alternatives = [level for level in levels if level != str(value)]
                            values[i] = alternatives[int(rng.integers(len(alternatives)))]
            columns.append(Column(column.name, values, ctype=column.ctype, role=column.role))
        return Dataset(columns, name=dataset.name)


class ClassNoiseInjector(Injector):
    """Flip target labels with probability ``severity`` (label noise)."""

    name = "class_noise"

    def apply(self, dataset: Dataset, severity: float, seed: int = 0) -> Dataset:
        severity = self._check_severity(severity)
        result = dataset.copy()
        if severity == 0.0:
            return result
        rng = np.random.default_rng(seed)
        target = result.target_column()
        levels = [str(v) for v in target.distinct()]
        if len(levels) < 2:
            raise ExperimentError("cannot inject class noise with fewer than two classes")
        values = target.tolist()
        for i, value in enumerate(values):
            if not is_missing_value(value) and rng.random() < severity:
                alternatives = [level for level in levels if level != str(value)]
                values[i] = alternatives[int(rng.integers(len(alternatives)))]
        return result.replace_column(Column(target.name, values, ctype=target.ctype, role=target.role))


class DuplicateInjector(Injector):
    """Append duplicated rows (degrades the *duplication* criterion).

    ``severity`` is the ratio of appended duplicates to original rows; with
    ``fuzzy=True`` the copies get small perturbations so only near-duplicate
    detection finds them.
    """

    name = "duplication"

    def __init__(self, fuzzy: bool = False) -> None:
        self.fuzzy = fuzzy

    def apply(self, dataset: Dataset, severity: float, seed: int = 0) -> Dataset:
        severity = self._check_severity(severity)
        result = dataset.copy()
        if severity == 0.0:
            return result
        rng = np.random.default_rng(seed)
        n_duplicates = int(round(severity * dataset.n_rows))
        if n_duplicates == 0:
            return result
        indices = [int(rng.integers(dataset.n_rows)) for _ in range(n_duplicates)]
        duplicated = dataset.take(indices)
        if self.fuzzy:
            columns = []
            for column in duplicated.columns:
                values = column.tolist()
                if column.is_numeric():
                    present = [v for v in values if not is_missing_value(v)]
                    std = float(np.std(present)) if len(present) > 1 else 1.0
                    values = [
                        v if is_missing_value(v) else float(v) + float(rng.normal(0, 0.01 * (std or 1.0)))
                        for v in values
                    ]
                elif column.ctype == ColumnType.STRING or column.role == ColumnRole.IDENTIFIER:
                    values = [v if is_missing_value(v) else f"{v} " for v in values]
                columns.append(Column(column.name, values, ctype=column.ctype, role=column.role))
            duplicated = Dataset(columns, name=duplicated.name)
        return result.concat(duplicated)


class ImbalanceInjector(Injector):
    """Skew the class distribution (degrades the *balance* criterion).

    ``severity`` 0.0 keeps the dataset unchanged; 1.0 keeps only ~2 % of the
    minority classes' rows.  All classes except the majority class are
    down-sampled by the same factor.
    """

    name = "balance"

    def __init__(self, min_minority_fraction: float = 0.02) -> None:
        self.min_minority_fraction = min_minority_fraction

    def apply(self, dataset: Dataset, severity: float, seed: int = 0) -> Dataset:
        severity = self._check_severity(severity)
        result = dataset.copy()
        if severity == 0.0:
            return result
        rng = random.Random(seed)
        target = result.target_column()
        by_class: dict[str, list[int]] = {}
        for i, value in enumerate(target.tolist()):
            if is_missing_value(value):
                continue
            by_class.setdefault(str(value), []).append(i)
        if len(by_class) < 2:
            raise ExperimentError("cannot inject imbalance with fewer than two classes")
        majority = max(by_class, key=lambda cls: len(by_class[cls]))
        keep_fraction = 1.0 - severity * (1.0 - self.min_minority_fraction)
        keep_indices: list[int] = list(by_class[majority])
        for cls, indices in by_class.items():
            if cls == majority:
                continue
            n_keep = max(2, int(round(keep_fraction * len(indices))))
            shuffled = indices[:]
            rng.shuffle(shuffled)
            keep_indices.extend(shuffled[:n_keep])
        return result.take(sorted(keep_indices))


class CorrelatedAttributesInjector(Injector):
    """Add near-copies of existing numeric features (degrades *correlation*).

    ``severity`` controls how many redundant attributes are added (up to one
    per existing numeric feature, twice over at severity 1.0) and how faithful
    the copies are (noise shrinks as severity grows).
    """

    name = "correlation"

    def apply(self, dataset: Dataset, severity: float, seed: int = 0) -> Dataset:
        severity = self._check_severity(severity)
        result = dataset.copy()
        if severity == 0.0:
            return result
        rng = np.random.default_rng(seed)
        numeric_features = [c for c in dataset.feature_columns() if c.is_numeric()]
        if not numeric_features:
            raise ExperimentError("no numeric features to correlate with")
        n_copies = max(1, int(round(severity * 2 * len(numeric_features))))
        noise_scale = max(0.02, 0.3 * (1.0 - severity))
        for index in range(n_copies):
            source = numeric_features[index % len(numeric_features)]
            values = source.values.astype(float)
            present = values[~np.isnan(values)]
            std = float(present.std()) if present.size > 1 else 1.0
            copy_values = values + rng.normal(0, noise_scale * (std or 1.0), size=values.shape)
            copy_values = np.where(np.isnan(values), np.nan, copy_values)
            name = f"{source.name}_redundant_{index}"
            result = result.add_column(Column(name, copy_values.tolist(), ctype=ColumnType.NUMERIC))
        return result


class IrrelevantAttributesInjector(Injector):
    """Add pure-noise attributes (degrades *dimensionality*).

    ``severity`` 1.0 adds ``max_added`` random attributes carrying no signal —
    the high-dimensionality situation the paper associates with LOD.
    """

    name = "dimensionality"

    def __init__(self, max_added: int = 60, categorical_share: float = 0.3, levels: int = 4) -> None:
        self.max_added = max_added
        self.categorical_share = categorical_share
        self.levels = levels

    def apply(self, dataset: Dataset, severity: float, seed: int = 0) -> Dataset:
        severity = self._check_severity(severity)
        result = dataset.copy()
        if severity == 0.0:
            return result
        rng = np.random.default_rng(seed)
        n_added = int(round(severity * self.max_added))
        for index in range(n_added):
            if rng.random() < self.categorical_share:
                values = [f"noise_{int(rng.integers(self.levels))}" for _ in range(dataset.n_rows)]
                column = Column(f"irrelevant_cat_{index}", values, ctype=ColumnType.CATEGORICAL)
            else:
                values = rng.normal(size=dataset.n_rows).tolist()
                column = Column(f"irrelevant_num_{index}", values, ctype=ColumnType.NUMERIC)
            result = result.add_column(column)
        return result


class OutlierInjector(Injector):
    """Replace numeric cells with extreme values (degrades *outliers*)."""

    name = "outliers"

    def __init__(self, magnitude: float = 8.0) -> None:
        self.magnitude = magnitude

    def apply(self, dataset: Dataset, severity: float, seed: int = 0) -> Dataset:
        severity = self._check_severity(severity)
        result = dataset.copy()
        if severity == 0.0:
            return result
        rng = np.random.default_rng(seed)
        columns = []
        for column in result.columns:
            if not column.is_numeric() or column.role != ColumnRole.FEATURE:
                columns.append(column)
                continue
            values = column.tolist()
            present = [v for v in values if not is_missing_value(v)]
            mean = float(np.mean(present)) if present else 0.0
            std = float(np.std(present)) if len(present) > 1 else 1.0
            std = std if std > 0 else 1.0
            for i, value in enumerate(values):
                if not is_missing_value(value) and rng.random() < severity * 0.3:
                    sign = 1.0 if rng.random() < 0.5 else -1.0
                    values[i] = mean + sign * self.magnitude * std * (1.0 + rng.random())
            columns.append(Column(column.name, values, ctype=column.ctype, role=column.role))
        return Dataset(columns, name=dataset.name)


class InconsistencyInjector(Injector):
    """Introduce inconsistent category spellings and impossible values.

    Degrades the *consistency* (and partially *accuracy*) criteria: with
    probability proportional to ``severity`` categorical cells get case /
    whitespace variants and numeric cells get sign flips, the way messy open
    data files commonly disagree with their documented schema.
    """

    name = "consistency"

    def apply(self, dataset: Dataset, severity: float, seed: int = 0) -> Dataset:
        severity = self._check_severity(severity)
        result = dataset.copy()
        if severity == 0.0:
            return result
        rng = np.random.default_rng(seed)
        columns = []
        for column in result.columns:
            if column.role != ColumnRole.FEATURE:
                columns.append(column)
                continue
            values = column.tolist()
            if column.ctype in (ColumnType.CATEGORICAL, ColumnType.STRING):
                for i, value in enumerate(values):
                    if is_missing_value(value) or rng.random() >= severity * 0.5:
                        continue
                    text = str(value)
                    variant = int(rng.integers(3))
                    if variant == 0:
                        values[i] = text.upper()
                    elif variant == 1:
                        values[i] = f" {text} "
                    else:
                        values[i] = text.capitalize() + "."
            elif column.is_numeric():
                for i, value in enumerate(values):
                    if not is_missing_value(value) and rng.random() < severity * 0.2:
                        values[i] = -abs(float(value)) if float(value) >= 0 else abs(float(value))
            columns.append(Column(column.name, values, ctype=column.ctype, role=column.role))
        return Dataset(columns, name=dataset.name)


#: Registry injector name → class (constructed with defaults by :func:`get_injector`).
INJECTOR_REGISTRY: dict[str, type[Injector]] = {
    MissingValuesInjector.name: MissingValuesInjector,
    NoiseInjector.name: NoiseInjector,
    ClassNoiseInjector.name: ClassNoiseInjector,
    DuplicateInjector.name: DuplicateInjector,
    ImbalanceInjector.name: ImbalanceInjector,
    CorrelatedAttributesInjector.name: CorrelatedAttributesInjector,
    IrrelevantAttributesInjector.name: IrrelevantAttributesInjector,
    OutlierInjector.name: OutlierInjector,
    InconsistencyInjector.name: InconsistencyInjector,
}


def get_injector(name: str, **kwargs) -> Injector:
    """Instantiate a registered injector by name."""
    try:
        cls = INJECTOR_REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown injector {name!r}; known: {sorted(INJECTOR_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def apply_injections(dataset: Dataset, injections: Mapping[str, float], seed: int = 0) -> Dataset:
    """Apply several injectors in a deterministic order.

    ``injections`` maps injector name → severity.  Injectors are applied in
    the registry's declaration order so Phase-2 "mixed" experiments are
    reproducible regardless of dict ordering at the call site.
    """
    result = dataset
    step = 0
    for name in INJECTOR_REGISTRY:
        if name not in injections:
            continue
        severity = injections[name]
        injector = get_injector(name)
        result = injector.apply(result, severity, seed=seed + step)
        step += 1
    unknown = set(injections) - set(INJECTOR_REGISTRY)
    if unknown:
        raise ExperimentError(f"unknown injectors requested: {sorted(unknown)}")
    return result
