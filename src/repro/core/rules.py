"""Distil the knowledge base into human-readable guidance rules.

The knowledge base is only useful to a non-expert if its content can be
communicated.  :func:`derive_guidance_rules` turns the raw experiment records
into statements of the form

    "when completeness drops below 0.8, prefer naive_bayes over knn
     (average accuracy 0.84 vs 0.71 on comparable experiments)"

which the OpenBI reporting layer can show next to the recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.exceptions import KnowledgeBaseError
from repro.core.knowledge_base import KnowledgeBase


@dataclass(frozen=True)
class GuidanceRule:
    """One piece of guidance derived from the knowledge base."""

    criterion: str
    threshold: float
    best_algorithm: str
    best_score: float
    worst_algorithm: str
    worst_score: float
    n_observations: int

    def as_text(self) -> str:
        return (
            f"when {self.criterion} < {self.threshold:.2f}, prefer {self.best_algorithm} "
            f"(mean score {self.best_score:.3f}) and avoid {self.worst_algorithm} "
            f"(mean score {self.worst_score:.3f}); based on {self.n_observations} experiments"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "criterion": self.criterion,
            "threshold": self.threshold,
            "best_algorithm": self.best_algorithm,
            "best_score": self.best_score,
            "worst_algorithm": self.worst_algorithm,
            "worst_score": self.worst_score,
            "n_observations": self.n_observations,
        }


def derive_guidance_rules(
    knowledge_base: KnowledgeBase,
    metric: str = "accuracy",
    threshold: float = 0.85,
    min_observations: int = 4,
    min_gap: float = 0.01,
) -> list[GuidanceRule]:
    """Derive one rule per measured criterion that falls below ``threshold``.

    For every quality criterion, the records whose measured score for that
    criterion is below ``threshold`` are grouped by algorithm; a rule is
    emitted when at least ``min_observations`` such records exist and the best
    and worst algorithms differ by at least ``min_gap`` in the chosen metric.
    """
    if len(knowledge_base) == 0:
        raise KnowledgeBaseError("cannot derive rules from an empty knowledge base")
    rules: list[GuidanceRule] = []
    for criterion in knowledge_base.criteria():
        selected = [
            record
            for record in knowledge_base.records
            if record.quality_scores.get(criterion, 1.0) < threshold
        ]
        if len(selected) < min_observations:
            continue
        by_algorithm: dict[str, list[float]] = {}
        for record in selected:
            by_algorithm.setdefault(record.algorithm, []).append(record.metrics[metric])
        if len(by_algorithm) < 2:
            continue
        means = {algorithm: float(np.mean(values)) for algorithm, values in by_algorithm.items()}
        best = max(sorted(means), key=means.get)
        worst = min(sorted(means), key=means.get)
        if means[best] - means[worst] < min_gap:
            continue
        rules.append(
            GuidanceRule(
                criterion=criterion,
                threshold=threshold,
                best_algorithm=best,
                best_score=means[best],
                worst_algorithm=worst,
                worst_score=means[worst],
                n_observations=len(selected),
            )
        )
    rules.sort(key=lambda rule: rule.criterion)
    return rules


def guidance_report(rules: list[GuidanceRule]) -> str:
    """Render the guidance rules as a plain-text bulleted list."""
    if not rules:
        return "No guidance rules could be derived (knowledge base too small or too uniform)."
    lines = ["Guidance derived from the DQ4DM knowledge base:", ""]
    lines.extend(f"  * {rule.as_text()}" for rule in rules)
    return "\n".join(lines)
