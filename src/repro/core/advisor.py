"""The advisor: "the best option is ALGORITHM X" (paper, Figure 2).

Given the DQ4DM knowledge base and a new source's measured data quality
profile, the advisor predicts how each candidate algorithm would perform on
data of that quality and recommends the best one, with a rationale a
non-expert user can read.  Two baselines (random choice, fixed
best-on-clean-data choice) are provided for the evaluation benchmarks.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import KnowledgeBaseError
from repro.core.knowledge_base import KnowledgeBase
from repro.quality.profile import DataQualityProfile, measure_quality
from repro.tabular.dataset import Dataset


@dataclass
class Recommendation:
    """The advisor's output for one source."""

    dataset: str
    ranked_algorithms: list[tuple[str, float]]
    rationale: str
    neighbours_used: int
    quality_profile: dict[str, float] = field(default_factory=dict)

    @property
    def best_algorithm(self) -> str:
        return self.ranked_algorithms[0][0]

    @property
    def expected_score(self) -> float:
        return self.ranked_algorithms[0][1]

    def as_dict(self) -> dict[str, Any]:
        return {
            "dataset": self.dataset,
            "best_algorithm": self.best_algorithm,
            "expected_score": self.expected_score,
            "ranking": [{"algorithm": a, "expected_score": s} for a, s in self.ranked_algorithms],
            "rationale": self.rationale,
            "neighbours_used": self.neighbours_used,
            "quality_profile": dict(self.quality_profile),
        }


class Advisor:
    """Nearest-neighbour advice over the knowledge base.

    Parameters
    ----------
    knowledge_base:
        A populated :class:`~repro.core.knowledge_base.KnowledgeBase`.
    k:
        Number of nearest experiment records (per algorithm) averaged to
        predict an algorithm's performance on the new source.
    metric:
        Which recorded metric to optimise (``accuracy``, ``macro_f1``, ``kappa``).
    criteria:
        Quality criteria used for the profile distance; defaults to the
        criteria shared by the knowledge base and the new profile.
    criteria_weights:
        Optional per-criterion weights in the distance (ablation hook).
    distance_weighting:
        When ``True`` neighbour contributions are weighted by 1/(distance+eps).
    """

    def __init__(
        self,
        knowledge_base: KnowledgeBase,
        k: int = 7,
        metric: str = "accuracy",
        criteria: Sequence[str] | None = None,
        criteria_weights: dict[str, float] | None = None,
        distance_weighting: bool = True,
    ) -> None:
        if len(knowledge_base) == 0:
            raise KnowledgeBaseError("cannot advise from an empty knowledge base")
        if k < 1:
            raise KnowledgeBaseError("k must be at least 1")
        self.knowledge_base = knowledge_base
        self.k = k
        self.metric = metric
        self.criteria = list(criteria) if criteria is not None else None
        self.criteria_weights = dict(criteria_weights) if criteria_weights else None
        self.distance_weighting = distance_weighting

    # -- prediction --------------------------------------------------------------

    def predict_performance(self, profile: DataQualityProfile, algorithm: str) -> float:
        """Predict the chosen metric for one algorithm on data with this profile."""
        records = self.knowledge_base.query(algorithm=algorithm)
        if not records:
            raise KnowledgeBaseError(f"the knowledge base has no records for {algorithm!r}")
        scored = []
        for record in records:
            distance = record.profile_distance(profile, criteria=self.criteria, weights=self.criteria_weights)
            scored.append((distance, record.metrics[self.metric]))
        scored.sort(key=lambda pair: pair[0])
        nearest = scored[: self.k]
        if self.distance_weighting:
            weights = np.asarray([1.0 / (distance + 1e-6) for distance, _ in nearest])
            values = np.asarray([value for _, value in nearest])
            return float((weights * values).sum() / weights.sum())
        return float(np.mean([value for _, value in nearest]))

    def rank_algorithms(self, profile: DataQualityProfile, algorithms: Sequence[str] | None = None) -> list[tuple[str, float]]:
        """Rank candidate algorithms by predicted performance (best first)."""
        candidates = list(algorithms) if algorithms is not None else self.knowledge_base.algorithms()
        ranking = [(algorithm, self.predict_performance(profile, algorithm)) for algorithm in candidates]
        ranking.sort(key=lambda pair: (-pair[1], pair[0]))
        return ranking

    # -- advice -------------------------------------------------------------------

    def advise_profile(self, profile: DataQualityProfile, algorithms: Sequence[str] | None = None) -> Recommendation:
        """Produce a recommendation from an already measured quality profile."""
        ranking = self.rank_algorithms(profile, algorithms)
        best_algorithm, best_score = ranking[0]
        worst = profile.worst_criteria(2)
        problems = ", ".join(f"{name} = {score:.2f}" for name, score in worst)
        runner_up = ranking[1] if len(ranking) > 1 else None
        rationale = (
            f"The source's weakest data quality criteria are {problems}. "
            "On knowledge-base experiments with similar quality profiles, "
            f"{best_algorithm} achieved the best expected {self.metric} ({best_score:.3f})"
        )
        if runner_up is not None:
            rationale += f", ahead of {runner_up[0]} ({runner_up[1]:.3f})"
        rationale += "."
        return Recommendation(
            dataset=profile.dataset_name,
            ranked_algorithms=ranking,
            rationale=rationale,
            neighbours_used=min(self.k, len(self.knowledge_base)),
            quality_profile=profile.as_dict(),
        )

    def advise(self, dataset: Dataset, algorithms: Sequence[str] | None = None) -> Recommendation:
        """Measure a dataset's quality profile and produce a recommendation.

        The dataset is encoded once (``measure_quality`` caches the
        :class:`~repro.tabular.encoded.EncodedDataset` on the instance) and
        that encoding is shared with anything run on the dataset afterwards:
        ``cross_validate`` — or any miner — picks up the same views when the
        caller follows the advice on the same dataset instance.
        """
        criteria = self.criteria or self.knowledge_base.criteria() or None
        profile = measure_quality(dataset, criteria=criteria)
        return self.advise_profile(profile, algorithms)


# ---------------------------------------------------------------------------
# Baseline strategies used by the evaluation benchmarks
# ---------------------------------------------------------------------------

def random_choice_baseline(algorithms: Sequence[str], seed: int = 0) -> str:
    """Pick an algorithm uniformly at random (the uninformed citizen)."""
    if not algorithms:
        raise KnowledgeBaseError("no algorithms to choose from")
    return random.Random(seed).choice(sorted(algorithms))


def fixed_best_on_clean_baseline(knowledge_base: KnowledgeBase, metric: str = "accuracy") -> str:
    """Always pick the algorithm that was best on the clean baselines.

    This models a user who benchmarked algorithms once on trusted data and
    never adapts to the quality of the source at hand.
    """
    clean_records = knowledge_base.query(phase="clean_baseline")
    if not clean_records:
        clean_records = knowledge_base.records
    by_algorithm: dict[str, list[float]] = {}
    for record in clean_records:
        by_algorithm.setdefault(record.algorithm, []).append(record.metrics[metric])
    if not by_algorithm:
        raise KnowledgeBaseError("the knowledge base has no usable records")
    return max(sorted(by_algorithm), key=lambda a: float(np.mean(by_algorithm[a])))
