"""The DQ4DM knowledge base.

"Results of experiments are included in a knowledge base … Once a knowledge
base is obtained, it can be used in OpenBI for a non-expert user to be aware
of data quality when mining LOD." (paper, §3.1, step 4)

The knowledge base stores :class:`~repro.core.experiment.ExperimentRecord`
objects (what was injected, what quality was measured, how every algorithm
performed) and offers query, aggregation and persistence (JSON file or a
SQLite database).
"""

from __future__ import annotations

import json
import sqlite3
from collections.abc import Callable, Iterable, Sequence
from pathlib import Path
from typing import Any

import numpy as np

from repro.exceptions import KnowledgeBaseError
from repro.core.experiment import ExperimentRecord
from repro.quality.profile import DataQualityProfile


class KnowledgeBase:
    """An append-only store of experiment observations with query helpers."""

    def __init__(self, records: Iterable[ExperimentRecord] | None = None, name: str = "dq4dm") -> None:
        self.name = name
        self._records: list[ExperimentRecord] = list(records or [])

    # -- mutation ----------------------------------------------------------------

    def add(self, record: ExperimentRecord) -> None:
        """Append one experiment observation."""
        self._records.append(record)

    def extend(self, records: Iterable[ExperimentRecord]) -> None:
        for record in records:
            self.add(record)

    # -- basic access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def records(self) -> list[ExperimentRecord]:
        return list(self._records)

    def algorithms(self) -> list[str]:
        """Distinct algorithm names present in the knowledge base."""
        return sorted({record.algorithm for record in self._records})

    def criteria(self) -> list[str]:
        """Distinct measured criteria present in the knowledge base."""
        names: set[str] = set()
        for record in self._records:
            names.update(record.quality_scores)
        return sorted(names)

    def datasets(self) -> list[str]:
        return sorted({record.dataset for record in self._records})

    # -- querying -------------------------------------------------------------------

    def query(
        self,
        algorithm: str | None = None,
        dataset: str | None = None,
        phase: str | None = None,
        injected: str | None = None,
        predicate: Callable[[ExperimentRecord], bool] | None = None,
    ) -> list[ExperimentRecord]:
        """Filter records by algorithm, dataset, phase, injected criterion or a predicate."""
        results = []
        for record in self._records:
            if algorithm is not None and record.algorithm != algorithm:
                continue
            if dataset is not None and record.dataset != dataset:
                continue
            if phase is not None and record.phase != phase:
                continue
            if injected is not None and injected not in record.injections:
                continue
            if predicate is not None and not predicate(record):
                continue
            results.append(record)
        return results

    def mean_metric(self, algorithm: str, metric: str = "accuracy", **filters: Any) -> float:
        """Mean value of a metric over the (filtered) records of one algorithm."""
        records = self.query(algorithm=algorithm, **filters)
        if not records:
            raise KnowledgeBaseError(f"no records for algorithm {algorithm!r} with filters {filters}")
        return float(np.mean([record.metrics[metric] for record in records]))

    def sensitivity_table(self, injected: str, metric: str = "accuracy") -> dict[str, dict[float, float]]:
        """algorithm → {severity → mean metric} for one injected criterion.

        This is the aggregation behind the Phase-1 experiment tables: how each
        algorithm's performance moves as one data quality problem worsens.
        """
        table: dict[str, dict[float, list[float]]] = {}
        for record in self._records:
            if list(record.injections.keys()) != [injected]:
                continue
            severity = record.injections[injected]
            table.setdefault(record.algorithm, {}).setdefault(severity, []).append(record.metrics[metric])
        if not table:
            raise KnowledgeBaseError(f"no single-criterion records for {injected!r}")
        return {
            algorithm: {severity: float(np.mean(values)) for severity, values in sorted(by_severity.items())}
            for algorithm, by_severity in table.items()
        }

    def robustness_ranking(self, injected: str, metric: str = "accuracy") -> list[tuple[str, float]]:
        """Algorithms ranked by (clean score − worst degraded score), ascending.

        The most robust algorithm to the given problem comes first.
        """
        table = self.sensitivity_table(injected, metric=metric)
        ranking = []
        for algorithm, by_severity in table.items():
            clean = by_severity.get(0.0)
            if clean is None:
                clean = by_severity[min(by_severity)]
            worst = min(by_severity.values())
            ranking.append((algorithm, clean - worst))
        ranking.sort(key=lambda pair: pair[1])
        return ranking

    def nearest_records(
        self,
        profile: DataQualityProfile,
        k: int = 10,
        criteria: Sequence[str] | None = None,
        weights: dict[str, float] | None = None,
    ) -> list[tuple[float, ExperimentRecord]]:
        """The ``k`` records whose measured quality profile is closest to ``profile``."""
        if not self._records:
            raise KnowledgeBaseError("the knowledge base is empty")
        scored: list[tuple[float, ExperimentRecord]] = []
        for record in self._records:
            distance = record.profile_distance(profile, criteria=criteria, weights=weights)
            scored.append((distance, record))
        scored.sort(key=lambda pair: pair[0])
        return scored[:k]

    # -- persistence -----------------------------------------------------------------

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialise the knowledge base to JSON (optionally writing a file)."""
        payload = {
            "name": self.name,
            "records": [record.as_dict() for record in self._records],
        }
        text = json.dumps(payload, indent=2, ensure_ascii=False)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @classmethod
    def from_json(cls, source: str | Path) -> "KnowledgeBase":
        """Load a knowledge base previously saved with :meth:`to_json`."""
        if isinstance(source, Path) or (isinstance(source, str) and not source.lstrip().startswith("{")):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = str(source)
        payload = json.loads(text)
        records = [ExperimentRecord.from_dict(entry) for entry in payload.get("records", [])]
        return cls(records, name=payload.get("name", "dq4dm"))

    def to_sqlite(self, path: str | Path) -> Path:
        """Persist the knowledge base to a SQLite database (table ``experiments``)."""
        path = Path(path)
        connection = sqlite3.connect(path)
        try:
            with connection:
                connection.execute(
                    """
                    CREATE TABLE IF NOT EXISTS experiments (
                        id INTEGER PRIMARY KEY AUTOINCREMENT,
                        dataset TEXT NOT NULL,
                        algorithm TEXT NOT NULL,
                        phase TEXT NOT NULL,
                        seed INTEGER NOT NULL,
                        injections TEXT NOT NULL,
                        quality_scores TEXT NOT NULL,
                        metrics TEXT NOT NULL
                    )
                    """
                )
                connection.execute("DELETE FROM experiments")
                connection.executemany(
                    """
                    INSERT INTO experiments (dataset, algorithm, phase, seed, injections, quality_scores, metrics)
                    VALUES (?, ?, ?, ?, ?, ?, ?)
                    """,
                    [
                        (
                            record.dataset,
                            record.algorithm,
                            record.phase,
                            record.seed,
                            json.dumps(record.injections),
                            json.dumps(record.quality_scores),
                            json.dumps(record.metrics),
                        )
                        for record in self._records
                    ],
                )
        finally:
            connection.close()
        return path

    @classmethod
    def from_sqlite(cls, path: str | Path, name: str = "dq4dm") -> "KnowledgeBase":
        """Load a knowledge base previously saved with :meth:`to_sqlite`."""
        path = Path(path)
        if not path.exists():
            raise KnowledgeBaseError(f"no SQLite knowledge base at {path}")
        connection = sqlite3.connect(path)
        try:
            rows = connection.execute(
                "SELECT dataset, algorithm, phase, seed, injections, quality_scores, metrics FROM experiments"
            ).fetchall()
        finally:
            connection.close()
        records = [
            ExperimentRecord(
                dataset=row[0],
                algorithm=row[1],
                phase=row[2],
                seed=int(row[3]),
                injections=json.loads(row[4]),
                quality_scores=json.loads(row[5]),
                metrics=json.loads(row[6]),
            )
            for row in rows
        ]
        return cls(records, name=name)

    # -- summaries ---------------------------------------------------------------------

    def summary(self, metric: str = "accuracy") -> dict[str, Any]:
        """High-level statistics used in reports and benchmarks."""
        if not self._records:
            raise KnowledgeBaseError("the knowledge base is empty")
        by_algorithm = {
            algorithm: float(np.mean([r.metrics[metric] for r in self.query(algorithm=algorithm)]))
            for algorithm in self.algorithms()
        }
        return {
            "n_records": len(self._records),
            "n_algorithms": len(by_algorithm),
            "n_datasets": len(self.datasets()),
            "phases": sorted({record.phase for record in self._records}),
            f"mean_{metric}_by_algorithm": by_algorithm,
        }
