"""The paper's primary contribution: data-quality-aware guidance for mining.

The framework has two stages (paper, Figure 2):

1. **Experiments → knowledge base.**  Starting from clean reference datasets,
   :mod:`repro.core.injection` introduces data quality problems in a
   controlled manner; :mod:`repro.core.experiment` runs the mining algorithms
   over every degraded variant (Phase 1: one criterion at a time, Phase 2:
   mixed criteria) and stores what happened in the
   :class:`~repro.core.knowledge_base.KnowledgeBase` ("DQ4DM").
2. **Advice.**  For a new LOD source, its measured
   :class:`~repro.quality.profile.DataQualityProfile` is matched against the
   knowledge base by the :class:`~repro.core.advisor.Advisor`, which
   recommends the most appropriate algorithm ("the best option is
   ALGORITHM X") together with a rationale, and
   :mod:`repro.core.rules` distils the knowledge base into human-readable
   guidance rules.
"""

from repro.core.injection import (
    Injector,
    INJECTOR_REGISTRY,
    get_injector,
    MissingValuesInjector,
    NoiseInjector,
    ClassNoiseInjector,
    DuplicateInjector,
    ImbalanceInjector,
    CorrelatedAttributesInjector,
    IrrelevantAttributesInjector,
    OutlierInjector,
    InconsistencyInjector,
    apply_injections,
)
from repro.core.profiles import UserProfile
from repro.core.experiment import ExperimentPlan, ExperimentRunner, ExperimentRecord
from repro.core.knowledge_base import KnowledgeBase
from repro.core.advisor import Advisor, Recommendation
from repro.core.rules import derive_guidance_rules, GuidanceRule

__all__ = [
    "Injector",
    "INJECTOR_REGISTRY",
    "get_injector",
    "MissingValuesInjector",
    "NoiseInjector",
    "ClassNoiseInjector",
    "DuplicateInjector",
    "ImbalanceInjector",
    "CorrelatedAttributesInjector",
    "IrrelevantAttributesInjector",
    "OutlierInjector",
    "InconsistencyInjector",
    "apply_injections",
    "UserProfile",
    "ExperimentPlan",
    "ExperimentRunner",
    "ExperimentRecord",
    "KnowledgeBase",
    "Advisor",
    "Recommendation",
    "derive_guidance_rules",
    "GuidanceRule",
]
