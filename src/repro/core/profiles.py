"""User profiles: what the non-expert user wants and which criteria to assess.

"Our experiments take the user profile as input data.  The user profile
includes the data quality criteria to assess." (paper, §3.1, step 1)
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import ExperimentError
from repro.quality.profile import DEFAULT_CRITERIA

#: Technique families supported by the experiment harness.
TECHNIQUE_FAMILIES = ("classification", "association_rules", "clustering")

#: Default candidate algorithms per technique family.
DEFAULT_ALGORITHMS: dict[str, tuple[str, ...]] = {
    "classification": (
        "decision_tree",
        "naive_bayes",
        "knn",
        "logistic_regression",
        "one_r",
        "prism",
    ),
    "association_rules": ("apriori",),
    "clustering": ("kmeans", "agglomerative"),
}


@dataclass
class UserProfile:
    """Configuration of an experiment campaign / advice request.

    Parameters
    ----------
    name:
        Identifier of the profile (e.g. "citizen-analyst").
    technique_family:
        One of :data:`TECHNIQUE_FAMILIES`.
    criteria:
        Data quality criteria to assess; defaults to every registered default
        criterion.
    algorithms:
        Candidate algorithms to compare; defaults to the family's defaults.
    evaluation_metric:
        The metric the user cares about (``accuracy``, ``macro_f1``, ``kappa``).
    cv_folds:
        Cross-validation folds used during the experiments.
    """

    name: str = "default"
    technique_family: str = "classification"
    criteria: tuple[str, ...] = tuple(DEFAULT_CRITERIA)
    algorithms: tuple[str, ...] = ()
    evaluation_metric: str = "accuracy"
    cv_folds: int = 3
    notes: str = ""

    def __post_init__(self) -> None:
        if self.technique_family not in TECHNIQUE_FAMILIES:
            raise ExperimentError(
                f"unknown technique family {self.technique_family!r}; choose from {TECHNIQUE_FAMILIES}"
            )
        if not self.algorithms:
            self.algorithms = DEFAULT_ALGORITHMS[self.technique_family]
        if self.evaluation_metric not in ("accuracy", "macro_f1", "kappa"):
            raise ExperimentError(f"unknown evaluation metric {self.evaluation_metric!r}")
        if self.cv_folds < 2:
            raise ExperimentError("cv_folds must be at least 2")
        self.criteria = tuple(self.criteria)
        self.algorithms = tuple(self.algorithms)

    def with_algorithms(self, algorithms: Sequence[str]) -> "UserProfile":
        """Return a copy restricted to the given candidate algorithms."""
        return UserProfile(
            name=self.name,
            technique_family=self.technique_family,
            criteria=self.criteria,
            algorithms=tuple(algorithms),
            evaluation_metric=self.evaluation_metric,
            cv_folds=self.cv_folds,
            notes=self.notes,
        )

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "technique_family": self.technique_family,
            "criteria": list(self.criteria),
            "algorithms": list(self.algorithms),
            "evaluation_metric": self.evaluation_metric,
            "cv_folds": self.cv_folds,
            "notes": self.notes,
        }
