"""The experiment campaign that populates the DQ4DM knowledge base.

Paper §3.1 defines the four steps — input data (user profile + LOD sources),
data preparation (simple and mixed degraded variants), application of the
experiments, and accumulation of the results in a knowledge base.  The
:class:`ExperimentRunner` implements exactly that loop; the
:class:`ExperimentPlan` describes which degraded variants are produced.
"""

from __future__ import annotations

import itertools
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any, Callable

from repro.exceptions import ExperimentError
from repro.core.injection import INJECTOR_REGISTRY, apply_injections
from repro.core.profiles import UserProfile
from repro.mining import CLASSIFIER_REGISTRY
from repro.mining.validation import cross_validate
from repro.quality.profile import DataQualityProfile, measure_quality
from repro.tabular.dataset import Dataset

#: Phase identifiers (paper §3.1: "PHASE 1: simple", "PHASE 2: mixed").
PHASE_SIMPLE = "phase1_simple"
PHASE_MIXED = "phase2_mixed"
PHASE_CLEAN = "clean_baseline"


@dataclass
class ExperimentRecord:
    """One observation: algorithm × degraded dataset → measured performance."""

    dataset: str
    algorithm: str
    phase: str
    injections: dict[str, float]
    quality_scores: dict[str, float]
    metrics: dict[str, float]
    seed: int = 0

    def profile_distance(
        self,
        profile: DataQualityProfile,
        criteria: Sequence[str] | None = None,
        weights: Mapping[str, float] | None = None,
    ) -> float:
        """Euclidean distance between this record's measured quality and a profile."""
        other = profile.as_dict()
        names = list(criteria) if criteria is not None else sorted(set(self.quality_scores) & set(other))
        if not names:
            raise ExperimentError("record and profile share no quality criteria")
        total = 0.0
        for name in names:
            weight = float(weights.get(name, 1.0)) if weights else 1.0
            diff = self.quality_scores.get(name, 1.0) - other.get(name, 1.0)
            total += weight * diff * diff
        return total ** 0.5

    def as_dict(self) -> dict[str, Any]:
        return {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "phase": self.phase,
            "injections": dict(self.injections),
            "quality_scores": dict(self.quality_scores),
            "metrics": dict(self.metrics),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentRecord":
        return cls(
            dataset=str(payload["dataset"]),
            algorithm=str(payload["algorithm"]),
            phase=str(payload.get("phase", PHASE_SIMPLE)),
            injections={str(k): float(v) for k, v in payload.get("injections", {}).items()},
            quality_scores={str(k): float(v) for k, v in payload.get("quality_scores", {}).items()},
            metrics={str(k): float(v) for k, v in payload.get("metrics", {}).items()},
            seed=int(payload.get("seed", 0)),
        )


@dataclass
class ExperimentPlan:
    """Which degraded dataset variants the campaign produces.

    ``simple_severities`` drives Phase 1 (each criterion individually at each
    severity); ``mixed_combinations`` drives Phase 2 (each mapping is applied
    as a joint degradation).  By default Phase 2 combines every unordered pair
    of criteria at ``mixed_severity``.
    """

    criteria: tuple[str, ...] = ("completeness", "accuracy", "balance", "correlation", "dimensionality", "duplication")
    simple_severities: tuple[float, ...] = (0.0, 0.1, 0.2, 0.4)
    mixed_combinations: tuple[Mapping[str, float], ...] = ()
    mixed_severity: float = 0.25
    include_clean_baseline: bool = True

    def __post_init__(self) -> None:
        unknown = [c for c in self.criteria if c not in INJECTOR_REGISTRY]
        if unknown:
            raise ExperimentError(f"plan references unknown injectors: {unknown}")
        for severity in self.simple_severities:
            if not 0.0 <= severity <= 1.0:
                raise ExperimentError(f"severity {severity} outside [0, 1]")
        if not self.mixed_combinations:
            pairs = itertools.combinations(self.criteria, 2)
            self.mixed_combinations = tuple({a: self.mixed_severity, b: self.mixed_severity} for a, b in pairs)

    def simple_variants(self) -> list[dict[str, float]]:
        """Phase-1 injection mappings (one criterion at a time)."""
        variants: list[dict[str, float]] = []
        for criterion in self.criteria:
            for severity in self.simple_severities:
                if severity == 0.0:
                    continue  # the shared clean baseline covers severity 0
                variants.append({criterion: severity})
        return variants

    def mixed_variants(self) -> list[dict[str, float]]:
        """Phase-2 injection mappings (several criteria at once)."""
        return [dict(combination) for combination in self.mixed_combinations]

    def n_variants(self) -> int:
        baseline = 1 if self.include_clean_baseline else 0
        return baseline + len(self.simple_variants()) + len(self.mixed_variants())


class ExperimentRunner:
    """Runs an :class:`ExperimentPlan` for a :class:`UserProfile` over datasets.

    Parameters
    ----------
    profile:
        The user profile (candidate algorithms, criteria, CV folds, metric).
    plan:
        The degradation plan; a default plan is built when omitted.
    algorithm_factories:
        Override mapping algorithm name → zero-argument factory.  Defaults to
        :data:`repro.mining.CLASSIFIER_REGISTRY` restricted to the profile's
        algorithms.
    """

    def __init__(
        self,
        profile: UserProfile | None = None,
        plan: ExperimentPlan | None = None,
        algorithm_factories: Mapping[str, Callable[[], Any]] | None = None,
    ) -> None:
        self.profile = profile or UserProfile()
        self.plan = plan or ExperimentPlan()
        if algorithm_factories is None:
            missing = [a for a in self.profile.algorithms if a not in CLASSIFIER_REGISTRY]
            if missing:
                raise ExperimentError(f"no registered factory for algorithms: {missing}")
            algorithm_factories = {name: CLASSIFIER_REGISTRY[name] for name in self.profile.algorithms}
        self.algorithm_factories = dict(algorithm_factories)
        if not self.algorithm_factories:
            raise ExperimentError("no algorithms to run")

    # -- core loop --------------------------------------------------------------

    def run_variant(
        self,
        dataset: Dataset,
        injections: Mapping[str, float],
        phase: str,
        seed: int = 0,
    ) -> list[ExperimentRecord]:
        """Produce one degraded variant, measure its quality, evaluate every algorithm."""
        degraded = apply_injections(dataset, injections, seed=seed) if injections else dataset
        quality = measure_quality(degraded, criteria=self.profile.criteria)
        records = []
        for algorithm, factory in self.algorithm_factories.items():
            result = cross_validate(factory, degraded, k=self.profile.cv_folds, seed=seed)
            records.append(
                ExperimentRecord(
                    dataset=dataset.name,
                    algorithm=algorithm,
                    phase=phase,
                    injections=dict(injections),
                    quality_scores=quality.as_dict(),
                    metrics={
                        "accuracy": result.accuracy,
                        "macro_f1": result.macro_f1,
                        "kappa": result.kappa,
                        "accuracy_std": result.accuracy_std,
                    },
                    seed=seed,
                )
            )
        return records

    def run(
        self,
        datasets: Sequence[Dataset],
        seed: int = 0,
        verbose: bool = False,
    ) -> "KnowledgeBase":
        """Run the full campaign and return the populated knowledge base.

        The returned object is a :class:`repro.core.knowledge_base.KnowledgeBase`.
        """
        from repro.core.knowledge_base import KnowledgeBase

        if not datasets:
            raise ExperimentError("no datasets to experiment on")
        knowledge_base = KnowledgeBase(name=f"dq4dm-{self.profile.name}")
        started = time.perf_counter()
        for dataset_index, dataset in enumerate(datasets):
            variant_seed = seed + 1000 * dataset_index
            if self.plan.include_clean_baseline:
                knowledge_base.extend(self.run_variant(dataset, {}, PHASE_CLEAN, seed=variant_seed))
            for offset, injections in enumerate(self.plan.simple_variants()):
                knowledge_base.extend(
                    self.run_variant(dataset, injections, PHASE_SIMPLE, seed=variant_seed + offset + 1)
                )
            for offset, injections in enumerate(self.plan.mixed_variants()):
                knowledge_base.extend(
                    self.run_variant(dataset, injections, PHASE_MIXED, seed=variant_seed + 500 + offset)
                )
            if verbose:  # pragma: no cover - informational output only
                elapsed = time.perf_counter() - started
                print(
                    f"[experiment] {dataset.name}: {knowledge_base and len(knowledge_base)} records "
                    f"after {elapsed:.1f}s"
                )
        return knowledge_base
