"""Deterministic synthetic open-data generators.

The paper works on governmental/civic Linked Open Data which we cannot fetch
offline; these generators produce statistically controlled stand-ins:

* :mod:`repro.datasets.synthetic` — abstract classification / regression /
  clustering / transaction datasets with tunable separability, noise and
  dimensionality (the "initial and representative sample … manually cleaned"
  of §3.1 is a clean draw from these generators);
* :mod:`repro.datasets.civic` — named civic scenarios (municipal budget,
  air-quality sensors, census, service requests) published as tabular data and
  as LOD graphs, in clean and dirty variants.

All generators take a ``seed`` and are fully deterministic.
"""

from repro.datasets.synthetic import (
    make_classification_dataset,
    make_regression_dataset,
    make_clustered_dataset,
    make_transactions_dataset,
)
from repro.datasets.civic import (
    municipal_budget,
    air_quality,
    census_income,
    service_requests,
    civic_lod_graph,
    CIVIC_GENERATORS,
)

__all__ = [
    "make_classification_dataset",
    "make_regression_dataset",
    "make_clustered_dataset",
    "make_transactions_dataset",
    "municipal_budget",
    "air_quality",
    "census_income",
    "service_requests",
    "civic_lod_graph",
    "CIVIC_GENERATORS",
]
