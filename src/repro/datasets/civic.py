"""Named civic open-data scenarios (clean and dirty variants, tabular and LOD).

These deterministic generators stand in for the governmental open data the
paper motivates OpenBI with.  Each generator returns a
:class:`~repro.tabular.dataset.Dataset`; :func:`civic_lod_graph` additionally
publishes any of them as a Linked Open Data graph so the full
ingest → link → tabulate → measure → mine pipeline can be exercised.

The ``dirty`` variants exhibit the natural data quality problems of published
open data (missing cells, inconsistent category spellings, duplicated records,
out-of-range values) *without* using the controlled injectors — they are the
"unseen sources" the advisor is evaluated on.
"""

from __future__ import annotations

import numpy as np

from repro.lod.graph import Graph
from repro.lod.terms import Literal
from repro.lod.vocabulary import DCTERMS, Namespace, RDF, RDFS
from repro.tabular.dataset import ColumnRole, ColumnType, Dataset, is_missing_value

#: Namespace used for all civic LOD resources.
CIVIC = Namespace("http://openbi.example.org/civic/")

_DISTRICTS = ["centre", "north", "south", "east", "west", "harbour"]
_CATEGORIES = ["education", "culture", "transport", "health", "sports", "environment"]


def municipal_budget(n_rows: int = 240, seed: int = 0, dirty: bool = False, name: str = "municipal_budget") -> Dataset:
    """Municipal budget execution lines.

    Columns: district, category, year, budgeted, executed, execution_rate and
    the classification target ``overrun`` (whether executed > budgeted).
    """
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n_rows):
        district = _DISTRICTS[int(rng.integers(len(_DISTRICTS)))]
        category = _CATEGORIES[int(rng.integers(len(_CATEGORIES)))]
        year = int(2008 + rng.integers(4))
        budgeted = float(np.round(rng.uniform(50_000, 2_000_000), 2))
        # Transport and health in dense districts tend to overrun.
        overrun_probability = 0.25
        if category in ("transport", "health"):
            overrun_probability += 0.3
        if district in ("centre", "harbour"):
            overrun_probability += 0.15
        overrun = rng.random() < overrun_probability
        factor = rng.uniform(1.02, 1.35) if overrun else rng.uniform(0.6, 0.99)
        executed = float(np.round(budgeted * factor, 2))
        rows.append(
            {
                "line_id": f"B{i:05d}",
                "district": district,
                "category": category,
                "year": year,
                "budgeted": budgeted,
                "executed": executed,
                "execution_rate": float(np.round(executed / budgeted, 4)),
                "overrun": "yes" if overrun else "no",
            }
        )
    if dirty:
        rows = _make_dirty(rows, rng, categorical=["district", "category"], numeric=["budgeted", "executed"])
    dataset = Dataset.from_rows(
        rows,
        name=name,
        roles={"line_id": ColumnRole.IDENTIFIER, "overrun": ColumnRole.TARGET},
        ctypes={"year": ColumnType.CATEGORICAL},
    )
    return dataset


def air_quality(n_rows: int = 360, seed: int = 1, dirty: bool = False, name: str = "air_quality") -> Dataset:
    """Hourly air-quality sensor readings with an ``alert`` classification target."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n_rows):
        district = _DISTRICTS[int(rng.integers(len(_DISTRICTS)))]
        month = int(1 + rng.integers(12))
        traffic = float(np.round(rng.uniform(50, 900), 1))
        temperature = float(np.round(rng.normal(12 + 10 * np.sin(month / 12 * np.pi), 4), 1))
        wind = float(np.round(abs(rng.normal(12, 6)), 1))
        no2 = float(np.round(10 + 0.06 * traffic - 0.8 * wind + rng.normal(0, 5), 1))
        pm10 = float(np.round(8 + 0.04 * traffic - 0.5 * wind + 0.3 * max(temperature, 0) + rng.normal(0, 4), 1))
        alert = "alert" if (no2 > 45 or pm10 > 42) else "ok"
        rows.append(
            {
                "reading_id": f"AQ{i:05d}",
                "district": district,
                "month": month,
                "traffic_intensity": traffic,
                "temperature": temperature,
                "wind_speed": wind,
                "no2": max(no2, 0.0),
                "pm10": max(pm10, 0.0),
                "alert": alert,
            }
        )
    if dirty:
        rows = _make_dirty(rows, rng, categorical=["district"], numeric=["no2", "pm10", "wind_speed"])
    return Dataset.from_rows(
        rows,
        name=name,
        roles={"reading_id": ColumnRole.IDENTIFIER, "alert": ColumnRole.TARGET},
        ctypes={"month": ColumnType.NUMERIC},
    )


def census_income(n_rows: int = 400, seed: int = 2, dirty: bool = False, name: str = "census_income") -> Dataset:
    """Census-style microdata with an ``income_band`` classification target."""
    rng = np.random.default_rng(seed)
    education_levels = ["primary", "secondary", "vocational", "university"]
    sectors = ["public", "services", "industry", "agriculture", "unemployed"]
    rows = []
    for i in range(n_rows):
        age = int(rng.integers(18, 85))
        education = education_levels[int(rng.choice(len(education_levels), p=[0.2, 0.35, 0.25, 0.2]))]
        sector = sectors[int(rng.integers(len(sectors)))]
        household = int(rng.integers(1, 7))
        base = 12_000 + 350 * (age - 18 if age < 60 else 45)
        base += {"primary": 0, "secondary": 4_000, "vocational": 7_000, "university": 14_000}[education]
        base += {"public": 5_000, "services": 2_000, "industry": 3_500, "agriculture": -1_000, "unemployed": -9_000}[sector]
        income = max(float(rng.normal(base, 4_000)), 0.0)
        band = "high" if income > 30_000 else ("medium" if income > 18_000 else "low")
        rows.append(
            {
                "person_id": f"P{i:05d}",
                "age": age,
                "education": education,
                "sector": sector,
                "household_size": household,
                "district": _DISTRICTS[int(rng.integers(len(_DISTRICTS)))],
                "income": float(np.round(income, 2)),
                "income_band": band,
            }
        )
    if dirty:
        rows = _make_dirty(rows, rng, categorical=["education", "sector", "district"], numeric=["income", "age"])
    dataset = Dataset.from_rows(
        rows,
        name=name,
        roles={"person_id": ColumnRole.IDENTIFIER, "income_band": ColumnRole.TARGET},
    )
    # The raw income column would leak the target; mark it as metadata.
    return dataset.set_role("income", ColumnRole.METADATA)


def service_requests(n_rows: int = 300, seed: int = 3, dirty: bool = False, name: str = "service_requests") -> Dataset:
    """Citizen service-request (311-style) records with a ``resolved_late`` target."""
    rng = np.random.default_rng(seed)
    channels = ["web", "phone", "office", "mobile_app"]
    topics = ["streetlight", "waste", "noise", "roads", "water", "parks"]
    rows = []
    for i in range(n_rows):
        district = _DISTRICTS[int(rng.integers(len(_DISTRICTS)))]
        channel = channels[int(rng.integers(len(channels)))]
        topic = topics[int(rng.integers(len(topics)))]
        backlog = float(np.round(rng.uniform(0, 120), 1))
        priority = int(rng.integers(1, 4))
        late_probability = 0.15 + 0.004 * backlog + (0.2 if topic in ("roads", "water") else 0.0) - 0.05 * priority
        late = rng.random() < min(max(late_probability, 0.02), 0.95)
        resolution_days = float(np.round(rng.uniform(15, 60) if late else rng.uniform(1, 14), 1))
        rows.append(
            {
                "request_id": f"SR{i:05d}",
                "district": district,
                "channel": channel,
                "topic": topic,
                "priority": priority,
                "open_backlog": backlog,
                "resolution_days": resolution_days,
                "resolved_late": "late" if late else "on_time",
            }
        )
    if dirty:
        rows = _make_dirty(rows, rng, categorical=["district", "channel", "topic"], numeric=["open_backlog"])
    return Dataset.from_rows(
        rows,
        name=name,
        roles={"request_id": ColumnRole.IDENTIFIER, "resolved_late": ColumnRole.TARGET},
        ctypes={"priority": ColumnType.CATEGORICAL},
    )


#: Registry used by examples and benchmarks: name → generator callable.
CIVIC_GENERATORS = {
    "municipal_budget": municipal_budget,
    "air_quality": air_quality,
    "census_income": census_income,
    "service_requests": service_requests,
}


def _make_dirty(rows: list[dict], rng: np.random.Generator, categorical: list[str], numeric: list[str]) -> list[dict]:
    """Introduce the organic quality problems of real published open data."""
    dirty_rows = [dict(row) for row in rows]
    n = len(dirty_rows)
    # Missing cells spread over all feature columns.
    for row in dirty_rows:
        for key in categorical + numeric:
            if rng.random() < 0.06:
                row[key] = None
    # Inconsistent category spellings (case / whitespace variants).
    for row in dirty_rows:
        for key in categorical:
            value = row.get(key)
            if isinstance(value, str) and rng.random() < 0.05:
                row[key] = value.upper() if rng.random() < 0.5 else f" {value} ".title()
    # Out-of-range / corrupted numeric values.
    for row in dirty_rows:
        for key in numeric:
            value = row.get(key)
            if isinstance(value, (int, float)) and rng.random() < 0.03:
                row[key] = float(value) * -1 if rng.random() < 0.5 else float(value) * 100
    # Duplicated records.
    n_duplicates = max(1, int(0.05 * n))
    for _ in range(n_duplicates):
        dirty_rows.append(dict(dirty_rows[int(rng.integers(n))]))
    return dirty_rows


def civic_lod_graph(dataset: Dataset, entity_class: str | None = None, base: Namespace = CIVIC) -> Graph:
    """Publish a civic dataset as a LOD graph (one resource per row).

    Each row becomes an instance of ``base[entity_class]``; every column
    becomes a datatype property.  Identifier columns provide the resource IRI.
    """
    entity_class = entity_class or dataset.name.title().replace("_", "")
    class_iri = base[entity_class]
    graph = Graph(f"{base.prefix}graph/{dataset.name}")
    graph.bind("civic", base)
    graph.add_resource(class_iri, rdf_type=RDFS.Class, label=entity_class)
    identifier_columns = [c.name for c in dataset.columns if c.role == ColumnRole.IDENTIFIER]
    for index, row in enumerate(dataset.iter_rows()):
        if identifier_columns and not is_missing_value(row[identifier_columns[0]]):
            local = str(row[identifier_columns[0]])
        else:
            local = f"{dataset.name}-{index}"
        subject = base[f"{entity_class.lower()}/{local}"]
        graph.add(subject, RDF.type, class_iri)
        graph.add(subject, DCTERMS.identifier, Literal(local))
        for name, value in row.items():
            if name in identifier_columns or is_missing_value(value):
                continue
            graph.add(subject, base[name], Literal(value))
    return graph
