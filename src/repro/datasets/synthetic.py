"""Statistically controlled synthetic datasets.

These are the "clean reference samples" the experiment campaign starts from
(paper §3.1): by construction they contain no missing values, no duplicates,
balanced classes and no redundant attributes, so every data quality problem
later observed was injected on purpose by :mod:`repro.core.injection`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SchemaError
from repro.tabular.dataset import Column, ColumnRole, ColumnType, Dataset


def make_classification_dataset(
    n_rows: int = 300,
    n_numeric: int = 4,
    n_categorical: int = 2,
    n_classes: int = 2,
    class_separation: float = 2.0,
    categorical_levels: int = 3,
    seed: int = 0,
    name: str = "synthetic_classification",
) -> Dataset:
    """Generate a clean classification dataset.

    Numeric features are drawn from per-class Gaussians whose means are
    ``class_separation`` apart; categorical features are drawn from per-class
    multinomials whose preferred level depends on the class.  The target
    column is called ``target`` and already has the target role.
    """
    if n_rows < n_classes * 2:
        raise SchemaError("need at least two rows per class")
    if n_numeric < 1 and n_categorical < 1:
        raise SchemaError("need at least one feature")
    rng = np.random.default_rng(seed)

    labels = np.asarray([f"class_{i % n_classes}" for i in range(n_rows)])
    rng.shuffle(labels)
    class_index = np.asarray([int(label.split("_")[1]) for label in labels])

    columns: list[Column] = []
    for j in range(n_numeric):
        means = np.arange(n_classes) * class_separation + j * 0.5
        values = rng.normal(loc=means[class_index], scale=1.0)
        columns.append(Column(f"num_{j}", values.tolist(), ctype=ColumnType.NUMERIC))

    level_names = [f"level_{i}" for i in range(categorical_levels)]
    for j in range(n_categorical):
        values = []
        for cls in class_index:
            preferred = (cls + j) % categorical_levels
            probabilities = np.full(categorical_levels, 0.15 / max(categorical_levels - 1, 1))
            probabilities[preferred] = 0.85
            probabilities = probabilities / probabilities.sum()
            values.append(level_names[int(rng.choice(categorical_levels, p=probabilities))])
        columns.append(Column(f"cat_{j}", values, ctype=ColumnType.CATEGORICAL))

    columns.append(Column("target", labels.tolist(), ctype=ColumnType.CATEGORICAL, role=ColumnRole.TARGET))
    return Dataset(columns, name=name)


def make_regression_dataset(
    n_rows: int = 300,
    n_numeric: int = 4,
    noise: float = 0.5,
    seed: int = 0,
    name: str = "synthetic_regression",
) -> Dataset:
    """Generate a clean regression dataset with a linear + interaction signal."""
    if n_numeric < 2:
        raise SchemaError("need at least two numeric features")
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_rows, n_numeric))
    weights = np.linspace(1.0, 2.0, n_numeric)
    y = X @ weights + 0.5 * X[:, 0] * X[:, 1] + rng.normal(scale=noise, size=n_rows)
    columns = [
        Column(f"num_{j}", X[:, j].tolist(), ctype=ColumnType.NUMERIC) for j in range(n_numeric)
    ]
    columns.append(Column("target", y.tolist(), ctype=ColumnType.NUMERIC, role=ColumnRole.TARGET))
    return Dataset(columns, name=name)


def make_clustered_dataset(
    n_rows: int = 300,
    n_clusters: int = 3,
    n_numeric: int = 3,
    cluster_std: float = 0.6,
    seed: int = 0,
    name: str = "synthetic_clusters",
) -> Dataset:
    """Generate well-separated Gaussian blobs plus a ``cluster`` metadata column."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-6.0, 6.0, size=(n_clusters, n_numeric))
    assignments = np.asarray([i % n_clusters for i in range(n_rows)])
    rng.shuffle(assignments)
    X = centers[assignments] + rng.normal(scale=cluster_std, size=(n_rows, n_numeric))
    columns = [
        Column(f"num_{j}", X[:, j].tolist(), ctype=ColumnType.NUMERIC) for j in range(n_numeric)
    ]
    columns.append(
        Column("cluster", [f"blob_{int(a)}" for a in assignments], ctype=ColumnType.CATEGORICAL, role=ColumnRole.METADATA)
    )
    return Dataset(columns, name=name)


def make_transactions_dataset(
    n_rows: int = 400,
    seed: int = 0,
    name: str = "synthetic_transactions",
) -> Dataset:
    """Generate a categorical dataset with planted co-occurrence patterns.

    The planted rule is ``district = centre ∧ service = library → satisfaction
    = high`` (plus a weaker seasonal pattern), so Apriori should recover rules
    with high confidence on the clean data.
    """
    rng = np.random.default_rng(seed)
    districts = ["centre", "north", "south", "harbour"]
    services = ["library", "sports", "transport", "parks"]
    seasons = ["spring", "summer", "autumn", "winter"]
    rows = []
    for _ in range(n_rows):
        district = districts[int(rng.integers(len(districts)))]
        service = services[int(rng.integers(len(services)))]
        season = seasons[int(rng.integers(len(seasons)))]
        if district == "centre" and service == "library":
            satisfaction = "high" if rng.random() < 0.9 else "medium"
        elif service == "transport" and season == "winter":
            satisfaction = "low" if rng.random() < 0.75 else "medium"
        else:
            satisfaction = ["low", "medium", "high"][int(rng.integers(3))]
        rows.append(
            {
                "district": district,
                "service": service,
                "season": season,
                "satisfaction": satisfaction,
            }
        )
    return Dataset.from_rows(rows, name=name)
