"""Content fingerprints for ``.rps`` store snapshots.

The serving tier keys its result caches on *what data a response was
computed from*, not on which file path happened to hold it.  The store
format already pays for exactly the summary we need: every section
payload carries a CRC-32 in the directory (``docs/store-format.md``), and
the writer is deterministic — saving the same dataset or graph twice
produces byte-identical section payloads.  A fingerprint therefore hashes
the *directory*, not the data:

* computing one is **O(metadata)** — it reads the 64-byte header and the
  64-byte-per-section directory, never the array payloads, so
  fingerprinting a multi-gigabyte snapshot costs the same as a tiny one
  and never pages mapped arrays in;
* two stores holding identical content share a fingerprint (deterministic
  writer ⇒ identical payload bytes ⇒ identical section CRCs);
* any one-cell mutation changes at least one section payload, hence that
  section's CRC, hence the fingerprint.

The fingerprint is the first 16 hex digits of a SHA-256 over the payload
kind and every section's identity ``(name, kind, dtype, count, length,
crc32)`` in directory order.  Offsets are deliberately excluded: they are
a property of the file layout, not of the content (though today's writer
makes them deterministic too).
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any

from repro.exceptions import ServeError
from repro.store.format import KIND_NAMES, StoreFile

#: Hex digits kept from the SHA-256 digest (64 bits — comfortably below
#: any realistic collision risk for a registry of snapshots).
FINGERPRINT_HEX_DIGITS = 16


def fingerprint_store_file(store_file: StoreFile) -> str:
    """Fingerprint an open :class:`~repro.store.format.StoreFile`.

    Reads only the already parsed header and directory — no payload bytes
    are touched, so this works identically on a freshly opened store and
    on one whose arrays are lazily memory-mapped behind live views.
    """
    digest = hashlib.sha256()
    digest.update(KIND_NAMES[store_file.kind].encode("ascii"))
    for name, section in store_file.sections.items():
        digest.update(
            f"|{name}:{section.kind}:{section.dtype}:{section.count}"
            f":{section.length}:{section.crc:08x}".encode("ascii")
        )
    return digest.hexdigest()[:FINGERPRINT_HEX_DIGITS]


def fingerprint_path(path: Path | str) -> str:
    """Fingerprint the store file at ``path`` (opened and closed here).

    The open validates the header and directory checksums, so a corrupt
    directory raises :class:`~repro.exceptions.StoreCorruptionError`
    instead of producing a fingerprint for garbage.
    """
    with StoreFile(path) as store_file:
        return fingerprint_store_file(store_file)


def fingerprint_payload(payload: Any) -> str:
    """Fingerprint a store-backed :class:`Dataset` or :class:`Graph`.

    The payload must have been produced by ``Dataset.open`` /
    ``Graph.open`` (it carries its ``StoreFile`` as ``_store_file``); an
    in-memory payload has no on-disk identity to fingerprint and raises
    :class:`~repro.exceptions.ServeError` — save it first.
    """
    store_file = getattr(payload, "_store_file", None)
    if store_file is None or getattr(store_file, "closed", True):
        raise ServeError(
            "payload is not backed by an open .rps store; save it and reopen "
            "it (Dataset.open / Graph.open) before serving it"
        )
    return fingerprint_store_file(store_file)
