"""The snapshot-serving tier: a long-lived advisor/BI server (O3).

``repro.serve`` turns the library from a fresh-process-per-question CLI
into a production shape: one long-lived process holding **immutable
memory-mapped snapshots** (datasets and graphs opened from ``.rps`` store
files, see :mod:`repro.store`) and answering concurrent JSON-over-HTTP
queries against them — profile, advise, cube aggregate/pivot, KPI and LOD
select/ask — with nothing but the standard library.

The tier stands on three guarantees, each carried by one module:

* **content fingerprints** (:mod:`repro.serve.fingerprint`) — O(metadata)
  identities derived from the store's per-section CRC-32 directory; equal
  content ⇒ equal fingerprint, any one-cell mutation ⇒ a different one;
* **fingerprint-keyed result caching** (:mod:`repro.serve.cache`) — a
  bounded LRU over serialized response bytes keyed by ``(fingerprint,
  endpoint, canonical query)``, so hot responses are bit-identical to
  cold ones and entries for retired snapshots are unreachable by key;
* **atomic snapshot swaps** (:mod:`repro.serve.registry`) —
  publish-then-retire reloads that never tear an in-flight request: a
  request leases one snapshot for its whole life and the retired memory
  map closes only when the last lease drains.

Every endpoint response is *defined* as the canonical serialization of a
direct library call (:func:`repro.serve.endpoints.evaluate`), which is
what the concurrency-parity suite (``tests/test_serve_parity.py``)
verifies bit-for-bit under thread contention, cache hits and mid-flight
swaps.  Start one from the command line with ``repro serve``; see
``docs/serving.md``.
"""

from repro.serve.cache import DEFAULT_MAX_ENTRIES, ResultCache, canonical_query
from repro.serve.endpoints import ENDPOINTS, encode_response, evaluate
from repro.serve.fingerprint import (
    fingerprint_path,
    fingerprint_payload,
    fingerprint_store_file,
)
from repro.serve.registry import Snapshot, SnapshotRegistry, open_snapshot_payload
from repro.serve.server import (
    CACHE_HEADER,
    FINGERPRINT_HEADER,
    SNAPSHOT_HEADER,
    ReproApp,
    ReproServer,
    create_server,
)

__all__ = [
    "CACHE_HEADER",
    "DEFAULT_MAX_ENTRIES",
    "ENDPOINTS",
    "FINGERPRINT_HEADER",
    "ReproApp",
    "ReproServer",
    "ResultCache",
    "SNAPSHOT_HEADER",
    "Snapshot",
    "SnapshotRegistry",
    "canonical_query",
    "create_server",
    "encode_response",
    "evaluate",
    "fingerprint_path",
    "fingerprint_payload",
    "fingerprint_store_file",
    "open_snapshot_payload",
]
