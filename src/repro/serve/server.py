"""The long-lived JSON-over-HTTP front end (stdlib only).

:class:`ReproApp` is the transport-free core: it routes a parsed request
(method, path, params) through the endpoint table, leases the snapshot it
needs from the :class:`~repro.serve.registry.SnapshotRegistry`, consults
the fingerprint-keyed :class:`~repro.serve.cache.ResultCache`, and
returns ``(status, headers, body-bytes)``.  :class:`ReproServer` wraps it
in a ``ThreadingHTTPServer`` — one thread per in-flight request, all of
them reading the same immutable snapshots.

The concurrency contract, in one place:

* a request **leases** its snapshot once and computes on that object for
  its whole life, so an atomic swap (``POST /reload``) never tears an
  in-flight response — the retired snapshot's memory map closes only
  after its last lease drains;
* cache keys start with the leased snapshot's **fingerprint**, so a
  result computed on retired content is unreachable the moment the swap
  publishes a new fingerprint — stale hits are impossible by key
  construction, not by invalidation discipline;
* handler threads run endpoints inside
  :func:`repro.parallel.thread_sequential`, pinning every ``n_jobs``
  resolution to 1: forking a worker pool from a request thread is unsafe
  (see that function's docstring), and the parallel tier is bit-identical
  to the sequential tier anyway, so responses don't change — only the
  fork does;
* a cache hit replays the exact bytes the first computation produced
  (the cache stores serialized bodies), so hot and cold responses are
  bit-identical by construction.

Request shapes: ``POST`` with a JSON-object body, or ``GET`` with a
``q=<url-encoded JSON object>`` query parameter; bare ``key=value`` query
parameters are merged in as strings (convenient for ``curl`` and for the
``dataset=``/``graph=`` snapshot selectors).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro._version import __version__
from repro.exceptions import ReproError, ServeError
from repro.parallel import thread_sequential
from repro.serve.cache import DEFAULT_MAX_ENTRIES, ResultCache, canonical_query
from repro.serve.endpoints import ENDPOINTS, encode_response, evaluate
from repro.serve.registry import SnapshotRegistry

#: Response header carrying the fingerprint of the snapshot a query
#: response was computed from (the cache-key anchor).
FINGERPRINT_HEADER = "X-Repro-Fingerprint"
#: Response header flagging whether the body came from the result cache.
CACHE_HEADER = "X-Repro-Cache"
#: Response header naming the snapshot a query response was served from.
SNAPSHOT_HEADER = "X-Repro-Snapshot"


class ReproApp:
    """Routing, caching and snapshot leasing — everything but the sockets.

    The app object is shared by every handler thread; it owns the
    registry, the result cache and the (optional) knowledge base, and is
    itself stateless per request.  Using it directly —
    ``app.handle("GET", "/profile", {})`` — exercises the identical code
    path the HTTP server runs, minus the transport, which is how the
    property suite drives thousands of cache/swap interleavings without
    socket overhead.
    """

    def __init__(self, registry: SnapshotRegistry | None = None,
                 cache: ResultCache | None = None, knowledge_base: Any = None) -> None:
        """Assemble an app around a registry, cache and optional KB."""
        self.registry = registry if registry is not None else SnapshotRegistry()
        self.cache = cache if cache is not None else ResultCache()
        self.knowledge_base = knowledge_base

    # -- request entry -------------------------------------------------------

    def handle(self, method: str, path: str, params: dict[str, Any]) -> tuple[int, dict[str, str], bytes]:
        """Serve one parsed request; returns ``(status, headers, body)``."""
        try:
            if path in ENDPOINTS:
                if method != "GET" and method != "POST":
                    return self._error(405, f"{path} accepts GET or POST, not {method}")
                return self._handle_query(path, params)
            if path == "/health":
                return self._ok({"status": "ok", "version": __version__,
                                 "snapshots": self.registry.names()})
            if path == "/snapshots":
                return self._ok({"snapshots": self.registry.describe()})
            if path == "/cache/stats":
                return self._ok({"cache": self.cache.stats()})
            if path == "/reload":
                if method != "POST":
                    return self._error(405, "/reload is a POST endpoint")
                return self._handle_reload(params)
            return self._error(404, f"unknown endpoint {path!r}")
        except ServeError as exc:
            status = 404 if "no snapshot named" in str(exc) else 400
            return self._error(status, str(exc))
        except ReproError as exc:
            return self._error(400, str(exc))

    # -- query endpoints -----------------------------------------------------

    def _handle_query(self, path: str, params: dict[str, Any]) -> tuple[int, dict[str, str], bytes]:
        """One cacheable endpoint request: lease → cache lookup → compute."""
        kind, _fn = ENDPOINTS[path]
        name = params.get(kind)
        name = str(name) if name is not None else self.registry.default_name(kind)
        query = canonical_query(params)
        with self.registry.lease(name) as snapshot:
            if snapshot.kind != kind:
                raise ServeError(
                    f"endpoint {path} needs a {kind} snapshot, but {name!r} is a {snapshot.kind}"
                )
            headers = {
                "Content-Type": "application/json",
                SNAPSHOT_HEADER: name,
                FINGERPRINT_HEADER: snapshot.fingerprint,
            }
            body = self.cache.get(snapshot.fingerprint, path, query)
            if body is not None:
                headers[CACHE_HEADER] = "hit"
                return 200, headers, body
            with thread_sequential():
                result = evaluate(path, snapshot.payload, params, self.knowledge_base)
            body = encode_response(result)
            self.cache.put(snapshot.fingerprint, path, query, body)
            headers[CACHE_HEADER] = "miss"
            return 200, headers, body

    # -- admin endpoints -----------------------------------------------------

    def _handle_reload(self, params: dict[str, Any]) -> tuple[int, dict[str, str], bytes]:
        """``POST /reload`` — publish-then-retire swap of one snapshot."""
        name = params.get("name")
        if name is None:
            names = self.registry.names()
            if len(names) != 1:
                raise ServeError(
                    f"reload needs a 'name' parameter when several snapshots "
                    f"are registered (have: {names})"
                )
            name = names[0]
        previous = self.registry.get(str(name)).fingerprint
        path = params.get("path")
        snapshot = self.registry.swap(str(name), Path(str(path)) if path is not None else None)
        pruned = self.cache.prune(self.registry.fingerprints())
        return self._ok(
            {
                "snapshot": snapshot.describe(),
                "previous_fingerprint": previous,
                "changed": snapshot.fingerprint != previous,
                "cache_entries_pruned": pruned,
            }
        )

    # -- response helpers ----------------------------------------------------

    @staticmethod
    def _ok(result: dict[str, Any]) -> tuple[int, dict[str, str], bytes]:
        """A 200 response with a canonical JSON body."""
        return 200, {"Content-Type": "application/json"}, encode_response(result)

    @staticmethod
    def _error(status: int, message: str) -> tuple[int, dict[str, str], bytes]:
        """A structured JSON error response."""
        return status, {"Content-Type": "application/json"}, encode_response(
            {"error": message, "status": status}
        )


class _RequestHandler(BaseHTTPRequestHandler):
    """Per-connection glue: parse HTTP, call the app, write the response."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-serve/{__version__}"
    # An unbuffered wfile emits each status/header line as its own tiny TCP
    # segment, and Nagle + delayed ACK then stall small keep-alive responses
    # at ~25 req/s.  Buffer the whole response (handle_one_request flushes
    # it) and disable Nagle so the reply leaves in one segment, immediately.
    wbufsize = -1
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Dispatch a GET request."""
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Dispatch a POST request."""
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        """Parse parameters, run the app, serialize the reply."""
        try:
            split = urlsplit(self.path)
            params: dict[str, Any] = {
                key: values[0] for key, values in parse_qs(split.query).items()
            }
            packed = params.pop("q", None)
            if packed is not None:
                decoded = json.loads(packed)
                if not isinstance(decoded, dict):
                    raise ValueError("the q= query parameter must hold a JSON object")
                params.update(decoded)
            if method == "POST":
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length) if length else b""
                if raw.strip():
                    decoded = json.loads(raw)
                    if not isinstance(decoded, dict):
                        raise ValueError("the request body must hold a JSON object")
                    params.update(decoded)
        except (ValueError, UnicodeDecodeError) as exc:
            status, headers, body = ReproApp._error(400, f"malformed request: {exc}")
        else:
            status, headers, body = self.server.app.handle(method, split.path, params)
        self.send_response(status)
        for key, value in headers.items():
            self.send_header(key, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002 - http.server API
        """Per-request access log, silenced unless the server is verbose."""
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class ReproServer(ThreadingHTTPServer):
    """A threaded HTTP server wired to one :class:`ReproApp`.

    Handler threads are daemons, so an abrupt interpreter exit never
    blocks on an in-flight request; a clean shutdown goes through
    :meth:`close` (stop accepting, release every snapshot's memory map).
    """

    daemon_threads = True

    def __init__(self, address: tuple[str, int], app: ReproApp, verbose: bool = False) -> None:
        """Bind to ``address`` and attach ``app``."""
        self.app = app
        self.verbose = verbose
        try:
            super().__init__(address, _RequestHandler)
        except (OSError, OverflowError) as exc:
            raise ServeError(f"cannot bind {address[0]}:{address[1]}: {exc}") from exc

    @property
    def url(self) -> str:
        """The server's reachable base URL (the OS-assigned port resolved)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Release the listening socket and every registered snapshot."""
        self.server_close()
        self.app.registry.close_all()


def create_server(
    stores: list[Path | str] | None = None,
    graphs: list[Path | str] | None = None,
    knowledge_base: Any = None,
    host: str = "127.0.0.1",
    port: int = 0,
    cache_entries: int = DEFAULT_MAX_ENTRIES,
    verbose: bool = False,
) -> ReproServer:
    """Open the given ``.rps`` files and return a ready-to-serve server.

    Snapshots are named after their file stems (``budget.rps`` serves as
    ``budget``); duplicate names are rejected rather than silently
    shadowed.  ``port=0`` asks the OS for a free port — read it back from
    :attr:`ReproServer.url`.  The files are opened *before* the socket
    binds, so a corrupt store fails the launch instead of the first
    request.
    """
    if not stores and not graphs:
        raise ServeError("a server needs at least one --store or --graph snapshot")
    if not 0 <= int(port) <= 65535:
        raise ServeError(f"port must be in [0, 65535], got {port}")
    registry = SnapshotRegistry()
    try:
        seen: set[str] = set()
        for path in list(stores or []) + list(graphs or []):
            name = Path(path).stem
            if name in seen:
                raise ServeError(
                    f"two snapshot files share the name {name!r}; rename one of them"
                )
            seen.add(name)
            registry.publish(name, path)
        app = ReproApp(registry, ResultCache(cache_entries), knowledge_base)
        return ReproServer((host, int(port)), app, verbose=verbose)
    except Exception:
        registry.close_all()
        raise
