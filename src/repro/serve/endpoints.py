"""The serving tier's endpoints, as plain library calls.

Every endpoint is a pure function ``(payload, params) -> JSON-serialisable
dict`` over an *immutable* snapshot payload — no handler state, no I/O —
dispatched through :func:`evaluate` by both the HTTP front end
(:mod:`repro.serve.server`) and anything that wants the identical answer
without a socket (the parity test suite, the benchmark's direct-library
lane).  That shared dispatch is the tier's correctness anchor: a server
response is *defined* as ``encode_response(evaluate(...))`` and can be
compared bit-for-bit against a direct call on the same snapshot.

Responses are serialized by :func:`encode_response` into canonical JSON
(sorted keys, compact separators, ``ensure_ascii``), so equal results are
equal bytes — the property the fingerprint-keyed cache and the
concurrency-parity suite are built on.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from repro.bi.kpi import KPI, evaluate_kpis, evaluate_kpis_by_level
from repro.bi.olap import Cube, Dimension, Measure
from repro.core.advisor import Advisor
from repro.exceptions import ServeError
from repro.lod.query import TriplePattern, Variable, ask, select
from repro.lod.terms import IRI, BNode, Literal
from repro.quality.profile import measure_quality
from repro.tabular.dataset import Dataset, is_missing_value


def encode_response(result: dict[str, Any]) -> bytes:
    """Serialize an endpoint result into its canonical response bytes."""
    return (
        json.dumps(result, sort_keys=True, separators=(",", ":"), ensure_ascii=True) + "\n"
    ).encode("ascii")


# ---------------------------------------------------------------------------
# Parameter and result plumbing
# ---------------------------------------------------------------------------

def _expect(params: dict[str, Any], key: str, types: tuple[type, ...], kind: str,
            required: bool = False, default: Any = None) -> Any:
    """Fetch and type-check one query parameter."""
    if key not in params or params[key] is None:
        if required:
            raise ServeError(f"query needs a {key!r} parameter ({kind})")
        return default
    value = params[key]
    if not isinstance(value, types) or isinstance(value, bool) and bool not in types:
        raise ServeError(f"query parameter {key!r} must be {kind}, got {type(value).__name__}")
    return value


def _cell(value: Any) -> Any:
    """One dataset cell as a JSON value (missing → ``null``, numpy unboxed)."""
    if is_missing_value(value):
        return None
    if isinstance(value, bool):
        return value
    if hasattr(value, "item"):  # numpy scalar
        value = value.item()
    if isinstance(value, (int, float, str, bool)):
        return value
    return str(value)


def _dataset_json(dataset: Dataset) -> dict[str, Any]:
    """A dataset as a JSON table: column schema plus row-major cells."""
    names = [column.name for column in dataset.columns]
    return {
        "name": dataset.name,
        "columns": [
            {"name": column.name, "type": column.ctype, "role": column.role}
            for column in dataset.columns
        ],
        "rows": [[_cell(row[name]) for name in names] for row in dataset.iter_rows()],
    }


def _parse_term(spec: Any, position: str):
    """One pattern term from its JSON form.

    Strings starting with ``?`` are variables; any other string is an IRI.
    Objects select the term kind explicitly: ``{"iri": ...}``,
    ``{"bnode": ...}``, or ``{"literal": value, "datatype"?: iri,
    "language"?: tag}``.
    """
    if isinstance(spec, str):
        if spec.startswith("?"):
            if len(spec) < 2:
                raise ServeError(f"pattern {position} has an empty variable name")
            return Variable(spec[1:])
        return IRI(spec)
    if isinstance(spec, dict):
        if "iri" in spec:
            return IRI(str(spec["iri"]))
        if "bnode" in spec:
            return BNode(str(spec["bnode"]))
        if "literal" in spec:
            datatype = spec.get("datatype")
            return Literal(
                spec["literal"],
                datatype=IRI(str(datatype)) if datatype is not None else None,
                language=spec.get("language"),
            )
        raise ServeError(
            f"pattern {position} object needs an 'iri', 'bnode' or 'literal' key"
        )
    raise ServeError(
        f"pattern {position} must be a string ('?var' or an IRI) or a term object, "
        f"got {type(spec).__name__}"
    )


def _parse_patterns(params: dict[str, Any]) -> list[TriplePattern]:
    """The ``patterns`` parameter as triple patterns."""
    raw = _expect(params, "patterns", (list,), "a list of [s, p, o] triples", required=True)
    patterns = []
    for i, entry in enumerate(raw):
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise ServeError(f"pattern #{i} must be a 3-element [s, p, o] list")
        patterns.append(
            TriplePattern(
                _parse_term(entry[0], f"#{i} subject"),
                _parse_term(entry[1], f"#{i} predicate"),
                _parse_term(entry[2], f"#{i} object"),
            )
        )
    if not patterns:
        raise ServeError("query needs at least one triple pattern")
    return patterns


def _binding_json(binding: dict[str, Any]) -> dict[str, Any]:
    """One query solution with every bound term in N-Triples form."""
    return {name: None if term is None else term.n3() for name, term in binding.items()}


def _build_cube(dataset: Dataset, params: dict[str, Any]) -> Cube:
    """A cube from the ``dimensions``/``measures`` query parameters."""
    raw_dimensions = _expect(
        params, "dimensions", (list,), "a list of column names or {name, levels} objects",
        required=True,
    )
    dimensions = []
    for spec in raw_dimensions:
        if isinstance(spec, str):
            dimensions.append(Dimension(spec, (spec,)))
        elif isinstance(spec, dict) and "name" in spec:
            levels = spec.get("levels") or [spec["name"]]
            dimensions.append(Dimension(str(spec["name"]), tuple(str(level) for level in levels)))
        else:
            raise ServeError("each dimension must be a column name or a {name, levels} object")
    raw_measures = _expect(
        params, "measures", (list,), "a list of {column, aggregation, name} objects",
        required=True,
    )
    measures = []
    for spec in raw_measures:
        if not isinstance(spec, dict) or "column" not in spec:
            raise ServeError("each measure must be an object with at least a 'column' key")
        aggregation = str(spec.get("aggregation", "sum"))
        measures.append(
            Measure(
                str(spec.get("name", f"{aggregation}_{spec['column']}")),
                str(spec["column"]),
                aggregation,
            )
        )
    return Cube(dataset, dimensions=dimensions, measures=measures)


def _parse_kpis(params: dict[str, Any]) -> list[KPI]:
    """The ``kpis`` parameter as KPI definitions."""
    raw = _expect(
        params, "kpis", (list,), "a list of {name, column, target, ...} objects", required=True
    )
    kpis = []
    for spec in raw:
        if not isinstance(spec, dict) or not {"name", "column", "target"} <= set(spec):
            raise ServeError("each KPI needs at least 'name', 'column' and 'target' keys")
        kpis.append(
            KPI(
                name=str(spec["name"]),
                compute=str(spec["column"]),
                target=float(spec["target"]),
                higher_is_better=bool(spec.get("higher_is_better", True)),
                tolerance=float(spec.get("tolerance", 0.1)),
                description=str(spec.get("description", "")),
            )
        )
    if not kpis:
        raise ServeError("query needs at least one KPI")
    return kpis


# ---------------------------------------------------------------------------
# Endpoints
# ---------------------------------------------------------------------------

def profile_endpoint(dataset: Dataset, params: dict[str, Any]) -> dict[str, Any]:
    """``/profile`` — the dataset's data quality profile.

    Parameters: ``criteria`` (optional list of criterion names; default:
    the full registered set).
    """
    criteria = _expect(params, "criteria", (list,), "a list of criterion names")
    profile = measure_quality(dataset, criteria=[str(c) for c in criteria] if criteria else None)
    return {"profile": profile.to_json_dict()}


def advise_endpoint(dataset: Dataset, params: dict[str, Any],
                    knowledge_base: Any = None) -> dict[str, Any]:
    """``/advise`` — algorithm recommendation from the loaded knowledge base.

    Parameters: ``neighbours`` (int, default 7), ``algorithms`` (optional
    list restricting the ranking).  Needs the server started with a
    knowledge base (``repro serve --kb ...``).
    """
    if knowledge_base is None:
        raise ServeError("this server was started without a knowledge base; /advise is unavailable")
    neighbours = _expect(params, "neighbours", (int,), "an integer", default=7)
    algorithms = _expect(params, "algorithms", (list,), "a list of algorithm names")
    advisor = Advisor(knowledge_base, k=int(neighbours))
    recommendation = advisor.advise(
        dataset, algorithms=[str(a) for a in algorithms] if algorithms else None
    )
    return {"recommendation": recommendation.as_dict()}


def cube_aggregate_endpoint(dataset: Dataset, params: dict[str, Any]) -> dict[str, Any]:
    """``/cube/aggregate`` — grouped measures over dimension levels.

    Parameters: ``dimensions``, ``measures`` (see :func:`_build_cube`),
    ``levels`` (optional list of level columns to group by; default: the
    grand total).
    """
    cube = _build_cube(dataset, params)
    levels = _expect(params, "levels", (list,), "a list of level columns")
    result = cube.aggregate([str(level) for level in levels] if levels else None)
    return {"table": _dataset_json(result)}


def cube_pivot_endpoint(dataset: Dataset, params: dict[str, Any]) -> dict[str, Any]:
    """``/cube/pivot`` — one measure cross-tabulated over two levels.

    Parameters: ``dimensions``, ``measures``, ``row_level``,
    ``column_level``, ``measure`` (optional measure name; default: the
    first declared measure).
    """
    cube = _build_cube(dataset, params)
    row_level = str(_expect(params, "row_level", (str,), "a level column", required=True))
    column_level = str(_expect(params, "column_level", (str,), "a level column", required=True))
    measure = _expect(params, "measure", (str,), "a measure name")
    result = cube.pivot(row_level, column_level, measure_name=measure)
    return {"table": _dataset_json(result)}


def kpi_endpoint(dataset: Dataset, params: dict[str, Any]) -> dict[str, Any]:
    """``/kpi`` — KPI statuses, whole-dataset or per group of one level.

    Parameters: ``kpis`` (list of ``{name, column, target,
    higher_is_better?, tolerance?}``), ``level`` (optional grouping
    column; with it the response is a per-group scoreboard table, without
    it a list of whole-dataset statuses).
    """
    kpis = _parse_kpis(params)
    level = _expect(params, "level", (str,), "a grouping column name")
    if level is None:
        return {"kpis": evaluate_kpis(kpis, dataset)}
    cube = Cube(
        dataset,
        dimensions=[Dimension(str(level), (str(level),))],
        measures=[Measure(f"{kpi.name}_measure", kpi.compute, "mean") for kpi in kpis],
    )
    scoreboard = evaluate_kpis_by_level(kpis, cube, str(level))
    return {"table": _dataset_json(scoreboard)}


def lod_select_endpoint(graph: Any, params: dict[str, Any]) -> dict[str, Any]:
    """``/lod/select`` — basic graph pattern query over a graph snapshot.

    Parameters: ``patterns`` (list of ``[s, p, o]``; see
    :func:`_parse_term` for the term syntax), ``variables``,
    ``distinct``, ``order_by``, ``descending``, ``limit`` — each mapping
    straight onto :func:`repro.lod.query.select`.
    """
    patterns = _parse_patterns(params)
    variables = _expect(params, "variables", (list,), "a list of variable names")
    distinct = _expect(params, "distinct", (bool,), "a boolean", default=False)
    order_by = _expect(params, "order_by", (str,), "a variable name")
    descending = _expect(params, "descending", (bool,), "a boolean", default=False)
    limit = _expect(params, "limit", (int,), "an integer")
    bindings = select(
        graph,
        patterns,
        variables=[str(v) for v in variables] if variables else None,
        distinct=bool(distinct),
        order_by=order_by,
        descending=bool(descending),
        limit=int(limit) if limit is not None else None,
    )
    return {"n_solutions": len(bindings), "bindings": [_binding_json(b) for b in bindings]}


def lod_ask_endpoint(graph: Any, params: dict[str, Any]) -> dict[str, Any]:
    """``/lod/ask`` — whether the basic graph pattern has any solution."""
    return {"answer": ask(graph, _parse_patterns(params))}


#: Endpoint table: request path → (snapshot kind consumed, function).
#: ``evaluate`` and the HTTP router both dispatch through this, so the
#: two stay in lockstep by construction.
ENDPOINTS: dict[str, tuple[str, Callable[..., dict[str, Any]]]] = {
    "/profile": ("dataset", profile_endpoint),
    "/advise": ("dataset", advise_endpoint),
    "/cube/aggregate": ("dataset", cube_aggregate_endpoint),
    "/cube/pivot": ("dataset", cube_pivot_endpoint),
    "/kpi": ("dataset", kpi_endpoint),
    "/lod/select": ("graph", lod_select_endpoint),
    "/lod/ask": ("graph", lod_ask_endpoint),
}


def evaluate(endpoint: str, payload: Any, params: dict[str, Any],
             knowledge_base: Any = None) -> dict[str, Any]:
    """Run one endpoint directly against a payload — the parity reference.

    ``endpoint`` is the request path (e.g. ``"/cube/pivot"``); ``payload``
    is the dataset or graph the path's kind expects.  The HTTP server
    produces exactly ``encode_response(evaluate(...))`` for a cache-miss
    request, which is what makes server responses comparable bit-for-bit
    against direct library calls.
    """
    spec = ENDPOINTS.get(endpoint)
    if spec is None:
        raise ServeError(f"unknown endpoint {endpoint!r} (have: {sorted(ENDPOINTS)})")
    _, fn = spec
    if fn is advise_endpoint:
        return fn(payload, params, knowledge_base=knowledge_base)
    return fn(payload, params)
