"""Immutable snapshots of opened stores, swapped atomically.

The serving tier never computes on mutable state.  A :class:`Snapshot`
couples one opened store payload (a memory-mapped ``Dataset`` or
``Graph``) with its content fingerprint; the payload is treated as
immutable for the snapshot's whole life (memmap views are read-only, and
nothing in the read paths mutates a dataset or graph).  The
:class:`SnapshotRegistry` maps names to current snapshots and supports
exactly one mutation, :meth:`SnapshotRegistry.swap`, with
**publish-then-retire** semantics:

1. the replacement store is opened and fingerprinted *first* (failures
   leave the registry untouched — the old snapshot keeps serving);
2. the name is rebound to the new snapshot in one dictionary assignment
   under the registry lock, so a request either sees the old snapshot or
   the new one, never a half-open in-between;
3. the old snapshot is *retired*: its backing store file is closed only
   once the last in-flight request holding a lease on it finishes, so a
   swap can never tear a response out from under a reader.

Requests access snapshots through :meth:`SnapshotRegistry.lease`, which
pins the snapshot (and its open memory map) for the duration of the
request.  Cache correctness across swaps needs no locking at all: result
caches are keyed by fingerprint (:mod:`repro.serve.cache`), and a request
uses the fingerprint of the snapshot it leased, so post-swap requests
look up under the new fingerprint and retired results are unreachable.
"""

from __future__ import annotations

import contextlib
import threading
from pathlib import Path
from typing import Any, Iterator

from repro.exceptions import ServeError
from repro.serve.fingerprint import fingerprint_payload
from repro.store import open_dataset, open_graph
from repro.store.format import KIND_DATASET, StoreFile


def open_snapshot_payload(path: Path | str) -> tuple[Any, str]:
    """Open the store at ``path`` as a payload; return ``(payload, kind)``.

    The payload kind is probed from the store header (the probe's map is
    released immediately), then the matching open routine memory-maps the
    real payload.  ``kind`` is ``"dataset"`` or ``"graph"``.
    """
    with StoreFile(path) as probe:
        kind = probe.kind
    if kind == KIND_DATASET:
        return open_dataset(path), "dataset"
    return open_graph(path), "graph"


class Snapshot:
    """One immutable opened store: payload + fingerprint + lease count.

    Snapshots are created by the registry and handed to requests through
    leases.  ``generation`` is a per-name counter (1 for the first
    snapshot published under a name, +1 per swap) — diagnostics for the
    ``/snapshots`` endpoint, never part of any cache key.
    """

    def __init__(self, name: str, path: Path, payload: Any, kind: str,
                 fingerprint: str, generation: int) -> None:
        """Record the snapshot's identity; starts unretired with no leases."""
        self.name = name
        self.path = path
        self.payload = payload
        self.kind = kind
        self.fingerprint = fingerprint
        self.generation = generation
        self._lock = threading.Lock()
        self._leases = 0
        self._retired = False
        self._closed = False

    @property
    def closed(self) -> bool:
        """Whether the backing store file has been released."""
        with self._lock:
            return self._closed

    def acquire(self) -> "Snapshot":
        """Pin the snapshot for an in-flight request; returns ``self``."""
        with self._lock:
            if self._closed:
                raise ServeError(f"snapshot {self.name!r} ({self.fingerprint}) is closed")
            self._leases += 1
        return self

    def release(self) -> None:
        """Drop one lease; a retired snapshot closes when the last one drops."""
        with self._lock:
            self._leases -= 1
            should_close = self._retired and self._leases <= 0 and not self._closed
            if should_close:
                self._closed = True
        if should_close:
            self.payload.close()

    def retire(self) -> None:
        """Mark the snapshot replaced; close now if no request holds it."""
        with self._lock:
            self._retired = True
            should_close = self._leases <= 0 and not self._closed
            if should_close:
                self._closed = True
        if should_close:
            self.payload.close()

    def describe(self) -> dict[str, Any]:
        """JSON-serialisable summary for the ``/snapshots`` endpoint."""
        size = (
            {"n_rows": self.payload.n_rows, "n_columns": self.payload.n_columns}
            if self.kind == "dataset"
            else {"n_triples": len(self.payload)}
        )
        return {
            "name": self.name,
            "kind": self.kind,
            "path": str(self.path),
            "fingerprint": self.fingerprint,
            "generation": self.generation,
            **size,
        }


class SnapshotRegistry:
    """Name → current :class:`Snapshot`, with atomic publish-then-retire swaps."""

    def __init__(self) -> None:
        """Create an empty registry."""
        self._lock = threading.Lock()
        self._snapshots: dict[str, Snapshot] = {}

    def publish(self, name: str, path: Path | str) -> Snapshot:
        """Open the store at ``path`` and bind it under ``name``.

        Publishing over an existing name is a :meth:`swap`; publishing a
        fresh name installs generation 1.  The open happens *before* the
        registry changes, so a corrupt file never disturbs what is being
        served.
        """
        return self._install(name, Path(path))

    def swap(self, name: str, path: Path | str | None = None) -> Snapshot:
        """Atomically replace ``name``'s snapshot; return the new one.

        With no ``path`` the snapshot's current file is reopened (picking
        up an in-place rewrite); with a ``path`` the name is repointed at
        a different store file.  The old snapshot is retired — closed as
        soon as the last in-flight lease on it drains.
        """
        current = self.get(name)
        return self._install(name, Path(path) if path is not None else current.path)

    def _install(self, name: str, path: Path) -> Snapshot:
        """Open ``path``, fingerprint it, and rebind ``name`` to the result."""
        payload, kind = open_snapshot_payload(path)
        try:
            fingerprint = fingerprint_payload(payload)
        except Exception:
            payload.close()
            raise
        with self._lock:
            old = self._snapshots.get(name)
            generation = old.generation + 1 if old is not None else 1
            snapshot = Snapshot(name, path, payload, kind, fingerprint, generation)
            self._snapshots[name] = snapshot
        if old is not None:
            old.retire()
        return snapshot

    def get(self, name: str) -> Snapshot:
        """The current snapshot bound to ``name`` (404 material if absent)."""
        with self._lock:
            snapshot = self._snapshots.get(name)
            names = sorted(self._snapshots)
        if snapshot is None:
            raise ServeError(
                f"no snapshot named {name!r} is registered (have: {names or 'none'})"
            )
        return snapshot

    def default_name(self, kind: str) -> str:
        """The single registered name of ``kind``, when it is unambiguous.

        Lets queries against a one-dataset (or one-graph) server omit the
        snapshot name; with zero or several candidates the query must name
        one, so this raises :class:`ServeError`.
        """
        with self._lock:
            names = [n for n, s in self._snapshots.items() if s.kind == kind]
        if len(names) == 1:
            return names[0]
        if not names:
            raise ServeError(f"no {kind} snapshot is registered")
        raise ServeError(
            f"several {kind} snapshots are registered ({sorted(names)}); "
            f"name one with the {kind!r} query parameter"
        )

    @contextlib.contextmanager
    def lease(self, name: str) -> Iterator[Snapshot]:
        """Pin ``name``'s current snapshot for the duration of the block.

        The leased snapshot — payload, fingerprint, open memory map —
        stays valid for the whole block even if a swap rebinds the name
        concurrently; the retired store closes only when the last lease
        drains.
        """
        while True:
            snapshot = self.get(name)
            try:
                snapshot.acquire()
            except ServeError:
                # Lost the race with a swap that already closed this
                # snapshot: re-read the registry and lease the successor.
                continue
            break
        try:
            yield snapshot
        finally:
            snapshot.release()

    def names(self) -> list[str]:
        """Registered snapshot names, sorted."""
        with self._lock:
            return sorted(self._snapshots)

    def fingerprints(self) -> set[str]:
        """The fingerprints currently being served (for cache pruning)."""
        with self._lock:
            return {s.fingerprint for s in self._snapshots.values()}

    def describe(self) -> list[dict[str, Any]]:
        """Summaries of every registered snapshot, in name order."""
        with self._lock:
            snapshots = [self._snapshots[n] for n in sorted(self._snapshots)]
        return [s.describe() for s in snapshots]

    def close_all(self) -> None:
        """Retire and release every snapshot (server shutdown)."""
        with self._lock:
            snapshots = list(self._snapshots.values())
            self._snapshots.clear()
        for snapshot in snapshots:
            snapshot.retire()
