"""A bounded, thread-safe, fingerprint-keyed LRU cache for query results.

Entries are keyed on ``(fingerprint, endpoint, canonical-query)``:

* the **fingerprint** (:mod:`repro.serve.fingerprint`) names the exact
  snapshot content a result was computed from, so a snapshot swap makes
  every old entry structurally unreachable — requests against the new
  snapshot look up under the new fingerprint and can never be handed a
  result computed on retired data;
* the **endpoint** is the request path (``/profile``, ``/cube/pivot``…);
* the **canonical query** is the request parameters re-serialized by
  :func:`canonical_query`, so two requests that spell the same query
  differently (key order, whitespace, GET vs POST) share one entry.

Values are the fully serialized response bodies (bytes), not Python
objects: a cache hit re-sends the exact bytes the first computation
produced, which is what makes hot responses *bit-identical* to cold ones
by construction rather than by re-serialization discipline.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any

from repro.exceptions import ServeError

#: Default maximum number of cached responses per server.
DEFAULT_MAX_ENTRIES = 256


def canonical_query(params: dict[str, Any]) -> str:
    """Serialize request parameters into their canonical cache-key form.

    Compact JSON with sorted keys: insertion order, whitespace and unicode
    spelling differences all collapse to one key.  Parameters must be
    JSON-serialisable (they arrived as JSON in the first place); anything
    else is a programming error surfaced as :class:`ServeError`.
    """
    try:
        return json.dumps(params, sort_keys=True, separators=(",", ":"), ensure_ascii=True)
    except (TypeError, ValueError) as exc:
        raise ServeError(f"query parameters are not JSON-serialisable: {exc}") from exc


class ResultCache:
    """Bounded LRU mapping ``(fingerprint, endpoint, canonical-query)`` → bytes.

    All operations take one internal lock, so the cache is safe under the
    serving tier's thread-per-request concurrency; hits move the entry to
    the most-recently-used end, and inserts beyond ``max_entries`` evict
    from the least-recently-used end.  Counters (:attr:`hits`,
    :attr:`misses`, :attr:`evictions`) feed the ``/cache/stats`` endpoint.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        """Create an empty cache holding at most ``max_entries`` responses."""
        if max_entries < 1:
            raise ServeError(f"cache needs max_entries >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[tuple[str, str, str], bytes] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, fingerprint: str, endpoint: str, query: str) -> bytes | None:
        """The cached response bytes, or ``None`` on a miss."""
        key = (fingerprint, endpoint, query)
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, fingerprint: str, endpoint: str, query: str, body: bytes) -> None:
        """Insert (or refresh) a response, evicting the LRU tail if full."""
        key = (fingerprint, endpoint, query)
        with self._lock:
            self._entries[key] = body
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def prune(self, live_fingerprints: set[str]) -> int:
        """Drop every entry whose fingerprint is not in ``live_fingerprints``.

        Called after a snapshot swap: retired-fingerprint entries are
        already unreachable (lookups use the new fingerprint), so pruning
        is purely a memory courtesy — it returns the number dropped.
        """
        with self._lock:
            dead = [key for key in self._entries if key[0] not in live_fingerprints]
            for key in dead:
                del self._entries[key]
            return len(dead)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        """Number of cached responses."""
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Counters and occupancy, as served by ``/cache/stats``."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
