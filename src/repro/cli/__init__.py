"""Command-line interface for the OpenBI workflows.

The CLI exposes the citizen-facing loop of the paper without writing any
Python: profile the quality of an open data file, run the experiment campaign
that builds a DQ4DM knowledge base, ask for algorithm advice, mine a file with
a chosen algorithm, derive guidance rules and publish data as Linked Open
Data.

Run ``python -m repro.cli --help`` for the command overview.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
