"""Argument parsing and command implementations for the OpenBI CLI.

Each subcommand is a thin orchestration of the library's public API; the heavy
lifting (quality measurement, experiments, advice, mining, publishing) lives in
the corresponding subpackages so everything here is easy to test by calling
:func:`main` with an argument list.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro._version import __version__
from repro.core import Advisor, ExperimentPlan, ExperimentRunner, KnowledgeBase, UserProfile, derive_guidance_rules
from repro.core.rules import guidance_report
from repro.datasets import CIVIC_GENERATORS
from repro.exceptions import ReproError
from repro.lod import parse_ntriples, to_ntriples, to_turtle
from repro.lod.linker import EntityLinker, LinkRule
from repro.lod.publish import publish_dataset, publish_quality_profile
from repro.lod.tabulate import tabulate_entities
from repro.lod.terms import IRI, Triple
from repro.lod.vocabulary import OWL
from repro.mining import CLASSIFIER_REGISTRY
from repro.mining.validation import cross_validate, holdout_evaluate, train_test_split
from repro.quality import measure_quality, quality_report
from repro.tabular import read_csv
from repro.tabular.dataset import ColumnRole, Dataset


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def _load_dataset(path: str, target: str | None, identifier: str | None) -> Dataset:
    """Load a CSV file and apply the requested column roles."""
    dataset = read_csv(Path(path))
    if target is not None:
        if target not in dataset:
            raise ReproError(f"target column {target!r} not found in {path}")
        dataset = dataset.set_target(target)
    if identifier is not None:
        if identifier not in dataset:
            raise ReproError(f"identifier column {identifier!r} not found in {path}")
        dataset = dataset.set_role(identifier, ColumnRole.IDENTIFIER)
    return dataset


def _parse_list(text: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _parse_severities(text: str) -> tuple[float, ...]:
    return tuple(float(part) for part in text.split(",") if part.strip())


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------

def _cmd_profile(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.data, args.target, args.identifier)
    reference = None
    if args.reference:
        reference_dataset = _load_dataset(args.reference, args.target, args.identifier)
        reference = measure_quality(reference_dataset)
    profile = measure_quality(dataset)
    if args.json:
        print(json.dumps(profile.to_json_dict(), indent=2))
    else:
        print(quality_report(profile, reference=reference, fmt=args.format))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    algorithms = _parse_list(args.algorithms)
    criteria = _parse_list(args.criteria)
    severities = _parse_severities(args.severities)
    profile = UserProfile(name="cli", algorithms=algorithms, cv_folds=args.folds)
    plan = ExperimentPlan(criteria=criteria, simple_severities=severities, mixed_severity=args.mixed_severity)

    datasets = []
    if args.data:
        datasets.append(_load_dataset(args.data, args.target, args.identifier))
    for name in _parse_list(args.civic):
        if name not in CIVIC_GENERATORS:
            raise ReproError(f"unknown civic dataset {name!r}; choose from {sorted(CIVIC_GENERATORS)}")
        datasets.append(CIVIC_GENERATORS[name](n_rows=args.rows))
    if not datasets:
        raise ReproError("give --data CSV and/or --civic names to experiment on")

    runner = ExperimentRunner(profile, plan)
    knowledge_base = runner.run(datasets)
    output = Path(args.output)
    if output.suffix == ".db":
        knowledge_base.to_sqlite(output)
    else:
        knowledge_base.to_json(output)
    summary = knowledge_base.summary()
    print(f"knowledge base written to {output} ({summary['n_records']} records, "
          f"{summary['n_algorithms']} algorithms, {summary['n_datasets']} datasets)")
    return 0


def _load_knowledge_base(path: str) -> KnowledgeBase:
    kb_path = Path(path)
    if not kb_path.exists():
        raise ReproError(f"knowledge base {path} does not exist")
    if kb_path.suffix == ".db":
        return KnowledgeBase.from_sqlite(kb_path)
    return KnowledgeBase.from_json(kb_path)


def _cmd_advise(args: argparse.Namespace) -> int:
    knowledge_base = _load_knowledge_base(args.knowledge_base)
    dataset = _load_dataset(args.data, args.target, args.identifier)
    advisor = Advisor(knowledge_base, k=args.neighbours)
    recommendation = advisor.advise(dataset)
    if args.json:
        print(json.dumps(recommendation.as_dict(), indent=2))
        return 0
    print(f"the best option is {recommendation.best_algorithm.upper()} "
          f"(expected score {recommendation.expected_score:.3f})")
    print(recommendation.rationale)
    print()
    print("full ranking:")
    for name, score in recommendation.ranked_algorithms:
        print(f"  {name:<22} {score:.3f}")
    return 0


def _cmd_rules(args: argparse.Namespace) -> int:
    knowledge_base = _load_knowledge_base(args.knowledge_base)
    rules = derive_guidance_rules(
        knowledge_base, threshold=args.threshold, min_observations=args.min_observations
    )
    print(guidance_report(rules))
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    if args.algorithm not in CLASSIFIER_REGISTRY:
        raise ReproError(f"unknown algorithm {args.algorithm!r}; choose from {sorted(CLASSIFIER_REGISTRY)}")
    dataset = _load_dataset(args.data, args.target, args.identifier)
    factory = CLASSIFIER_REGISTRY[args.algorithm]
    if args.cross_validate:
        result = cross_validate(factory, dataset, k=args.folds)
    else:
        train, test = train_test_split(dataset, test_fraction=args.test_fraction, seed=args.seed)
        result = holdout_evaluate(factory, train, test)
    print(f"algorithm : {result.algorithm}")
    print(f"accuracy  : {result.accuracy:.3f}")
    print(f"macro F1  : {result.macro_f1:.3f}")
    print(f"kappa     : {result.kappa:.3f}")
    if args.show_rules and args.algorithm in ("decision_tree", "prism", "one_r"):
        model = factory().fit(dataset)
        description = model.describe()
        rules = description.get("rules", [])
        if args.algorithm == "decision_tree":
            rules = [
                " AND ".join(rule["conditions"]) + f" => {rule['prediction']}"
                for rule in model.extract_rules()
            ]
        print("\nrules:")
        for rule in list(rules)[: args.max_rules]:
            print(f"  {rule}")
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.data, args.target, args.identifier)
    graph = publish_dataset(dataset, base_iri=args.base_iri)
    if args.with_quality:
        publish_quality_profile(measure_quality(dataset), dataset.name, base_iri=args.base_iri, graph=graph)
    text = to_turtle(graph) if args.format == "turtle" else to_ntriples(graph)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {len(graph)} triples to {args.output}")
    else:
        print(text)
    return 0


def _cmd_lod_tabulate(args: argparse.Namespace) -> int:
    from repro.tabular.io_csv import write_csv

    graph = parse_ntriples(Path(args.graph))
    properties = [IRI(p) for p in _parse_list(args.properties)] if args.properties else None
    dataset = tabulate_entities(
        graph,
        IRI(args.type),
        properties=properties,
        multivalued=args.multivalued,
        min_property_coverage=args.min_coverage,
        force_row=args.force_row,
    )
    if args.output:
        path = write_csv(dataset, args.output)
        print(f"tabulated {dataset.n_rows} rows x {dataset.n_columns} columns to {path}")
    else:
        from repro.bi.reporting import dataset_to_table_text

        print(dataset_to_table_text(dataset, max_rows=args.max_rows))
    return 0


def _cmd_lod_link(args: argparse.Namespace) -> int:
    left_graph = parse_ntriples(Path(args.left))
    right_graph = parse_ntriples(Path(args.right))
    left_properties = _parse_list(args.property)
    right_properties = _parse_list(args.right_property) if args.right_property else left_properties
    if len(left_properties) != len(right_properties):
        raise ReproError("--property and --right-property need the same number of predicates")
    rules = [
        LinkRule(IRI(left), IRI(right))
        for left, right in zip(left_properties, right_properties)
    ]
    linker = EntityLinker(rules, threshold=args.threshold)
    linker._force_pairwise_link = args.force_pairwise
    links = linker.link(
        left_graph, IRI(args.type), right_graph, IRI(args.right_type or args.type)
    )
    for link in links:
        print(f"{link.left}\towl:sameAs\t{link.right}\t{link.score:.4f}")
    if args.output:
        from repro.lod.graph import Graph

        sameas = Graph("http://openbi.example.org/graph/links")
        for link in links:
            sameas.add_triple(Triple(link.left, OWL.sameAs, link.right))
        to_ntriples(sameas, args.output)
        print(f"wrote {len(links)} owl:sameAs links to {args.output}")
    elif not links:
        print("no links above the threshold")
    return 0


def _cmd_store_save(args: argparse.Namespace) -> int:
    """Encode a CSV or N-Triples source into a binary store file."""
    path = Path(args.data)
    if not path.exists():
        raise ReproError(f"input file {args.data} does not exist")
    is_ntriples = args.format == "ntriples" or (args.format == "auto" and path.suffix == ".nt")
    if is_ntriples:
        graph = parse_ntriples(path)
        out = graph.save(args.output)
        print(f"stored {len(graph)} triples ({len(graph.store.columnar().terms)} terms) to {out}")
    else:
        dataset = _load_dataset(args.data, args.target, args.identifier)
        out = dataset.save(args.output)
        print(f"stored {dataset.n_rows} rows x {dataset.n_columns} columns to {out}")
    return 0


def _cmd_store_open(args: argparse.Namespace) -> int:
    """Open a store file (memory-mapped) and print a summary of its payload."""
    from repro.store import StoreFile, open_dataset, open_graph
    from repro.store.format import KIND_DATASET

    # Probe the payload kind only; the probe's map is released immediately
    # and the real open below creates its own.
    with StoreFile(args.store) as probe:
        kind = probe.kind
    if kind == KIND_DATASET:
        dataset = open_dataset(args.store, force_memory=args.force_memory, verify=args.verify)
        print(f"dataset {dataset.name!r}: {dataset.n_rows} rows x {dataset.n_columns} columns")
        for name, info in dataset.summary().items():
            print(f"  {name:<24} {info['type']:<12} {info['role']:<11} "
                  f"missing={info['n_missing']} distinct={info['n_distinct']}")
        if args.head:
            from repro.bi.reporting import dataset_to_table_text

            print()
            print(dataset_to_table_text(dataset.head(args.head)))
        dataset.close()
    else:
        graph = open_graph(args.store, force_memory=args.force_memory, verify=args.verify)
        columnar = graph.store.columnar()
        print(f"graph <{graph.identifier}>: {len(graph)} triples, {len(columnar.terms)} interned terms")
        for i, triple in enumerate(graph):
            if i >= args.head:
                break
            print(f"  {triple.n3()}")
        graph.close()
    return 0


def _cmd_store_inspect(args: argparse.Namespace) -> int:
    """Print the header and section directory of a store file."""
    from repro.store import inspect_store

    info = inspect_store(args.store, verify=args.verify)
    if args.json:
        print(json.dumps(info, indent=2))
        return 0 if not info["damaged"] else 1
    print(f"{info['path']}: format v{info['format_version']}, {info['payload']} payload, "
          f"{info['n_sections']} sections, {info['file_length']} bytes")
    print(f"{'section':<18}{'kind':<6}{'derived':<9}{'offset':>10}{'length':>12}{'count':>10}  status")
    kinds = {1: "arr", 2: "str", 3: "json"}
    for section in info["sections"]:
        print(f"{section['name']:<18}{kinds.get(section['kind'], '?'):<6}"
              f"{'yes' if section['derived'] else 'no':<9}{section['offset']:>10}"
              f"{section['length']:>12}{section['count']:>10}  {section['status']}")
    if info["damaged"]:
        print(f"damaged sections: {', '.join(info['damaged'])} "
              "(see repro.recovery.salvage_store / `repro salvage`)")
        return 1
    return 0


def _cmd_salvage(args: argparse.Namespace) -> int:
    """Salvage a partially corrupt CSV, N-Triples or store file and report on it."""
    from repro.recovery import salvage_csv, salvage_ntriples

    path = Path(args.data)
    if not path.exists():
        raise ReproError(f"input file {args.data} does not exist")
    if args.format == "store" or (args.format == "auto" and path.suffix == ".rps"):
        from repro.recovery import salvage_store
        from repro.tabular.dataset import Dataset as _Dataset

        payload, report = salvage_store(path)
        if args.output:
            if isinstance(payload, _Dataset):
                from repro.tabular.io_csv import write_csv

                write_csv(payload, args.output)
                print(f"wrote {payload.n_rows} salvaged rows to {args.output}")
            else:
                to_ntriples(payload, args.output)
                print(f"wrote {len(payload)} salvaged triples to {args.output}")
        print(report.summary())
        if args.report:
            Path(args.report).write_text(
                json.dumps(report.to_json_dict(), indent=2) + "\n", encoding="utf-8"
            )
            print(f"wrote salvage report to {args.report}")
        return 0
    is_ntriples = args.format == "ntriples" or (args.format == "auto" and path.suffix == ".nt")
    if is_ntriples:
        graph, report = salvage_ntriples(path, _force_strict=args.strict)
        if args.output:
            to_ntriples(graph, args.output)
            print(f"wrote {len(graph)} salvaged triples to {args.output}")
    else:
        from repro.tabular.io_csv import write_csv

        dataset, report = salvage_csv(
            path,
            delimiter=args.delimiter,
            encoding=args.encoding,
            _force_strict=args.strict,
        )
        if args.output:
            write_csv(dataset, args.output)
            print(f"wrote {dataset.n_rows} salvaged rows to {args.output}")
    print(report.summary())
    if args.report:
        Path(args.report).write_text(
            json.dumps(report.to_json_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote salvage report to {args.report}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve snapshots over HTTP until SIGTERM/SIGINT (see docs/serving.md)."""
    import signal

    from repro.serve import ENDPOINTS, create_server

    for path in (args.store or []) + (args.graph or []):
        if not Path(path).exists():
            raise ReproError(f"snapshot file {path} does not exist")
    knowledge_base = _load_knowledge_base(args.kb) if args.kb else None
    server = create_server(
        stores=args.store,
        graphs=args.graph,
        knowledge_base=knowledge_base,
        host=args.host,
        port=args.port,
        cache_entries=args.cache_entries,
        verbose=args.verbose,
    )

    class _Shutdown(Exception):
        """Raised by the signal handlers to break out of serve_forever."""

    def _signalled(signum, _frame):
        raise _Shutdown(signal.Signals(signum).name)

    previous = {
        sig: signal.signal(sig, _signalled) for sig in (signal.SIGTERM, signal.SIGINT)
    }
    names = ", ".join(server.app.registry.names())
    try:
        print(f"serving {names} on {server.url} (endpoints: {', '.join(sorted(ENDPOINTS))})",
              flush=True)
        server.serve_forever(poll_interval=0.1)
    except _Shutdown as exc:
        print(f"shutting down ({exc})", flush=True)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.close()
    return 0


def _post_reload(url: str, name: str) -> dict:
    """POST /reload to a running ``repro serve`` instance; returns the reply."""
    import urllib.error
    import urllib.request

    body = json.dumps({"name": name}).encode("utf-8")
    request = urllib.request.Request(
        url.rstrip("/") + "/reload",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace").strip()
        raise ReproError(f"server at {url} rejected the reload: {detail}") from exc
    except (urllib.error.URLError, OSError) as exc:
        raise ReproError(f"cannot reach the server at {url}: {exc}") from exc


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Append a feed batch to a .rps dataset store, then optionally reload a server.

    The store file is replaced atomically (write to a sibling ``.tmp``, then
    ``os.replace``), so a server currently mapping the old file keeps serving
    its snapshot untorn until ``POST /reload`` swaps it.
    """
    import os

    from repro.feeds import FeedConnector, FixtureFeed

    store_path = Path(args.store)
    if not store_path.exists():
        raise ReproError(f"store file {args.store} does not exist")
    feed = FixtureFeed(args.feed, cursor_field=args.cursor_field)
    connector = FeedConnector(feed, page_size=args.limit, throttle=args.sleep)
    rows = connector.records(since=args.since)
    base = Dataset.open(store_path)
    try:
        if not rows:
            print(f"no new records in {args.feed}"
                  + (f" after cursor {args.since!r}" if args.since else "")
                  + "; store unchanged")
            return 0
        merged = base.append_rows(rows)
        tmp = store_path.with_name(store_path.name + ".tmp")
        merged.save(tmp)
    finally:
        base.close()
    os.replace(tmp, store_path)
    print(f"appended {len(rows)} rows to {store_path} ({merged.n_rows} rows total)")
    if args.reload_url:
        reply = _post_reload(args.reload_url, args.reload_name or store_path.stem)
        snapshot = reply.get("snapshot", {})
        print(f"reloaded snapshot {snapshot.get('name')!r} "
              f"(fingerprint {snapshot.get('fingerprint')}, changed: {reply.get('changed')})")
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.tabular.io_csv import write_csv

    generator = CIVIC_GENERATORS.get(args.name)
    if generator is None:
        raise ReproError(f"unknown civic dataset {args.name!r}; choose from {sorted(CIVIC_GENERATORS)}")
    dataset = generator(n_rows=args.rows, seed=args.seed, dirty=args.dirty)
    path = write_csv(dataset, args.output)
    print(f"wrote {dataset.n_rows} rows x {dataset.n_columns} columns to {path}")
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="OpenBI: data-quality-aware, user-friendly data mining over (linked) open data.",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_data_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("data", help="path to a CSV file")
        sub.add_argument("--target", help="name of the class/target column")
        sub.add_argument("--identifier", help="name of the identifier column")

    profile = subparsers.add_parser("profile", help="measure the data quality of a CSV file")
    add_data_arguments(profile)
    profile.add_argument("--reference", help="CSV file of a clean reference sample to compare against")
    profile.add_argument("--format", choices=("text", "markdown"), default="text")
    profile.add_argument("--json", action="store_true", help="emit the raw profile as JSON")
    profile.set_defaults(func=_cmd_profile)

    experiment = subparsers.add_parser("experiment", help="run the experiment campaign and build a knowledge base")
    experiment.add_argument("--data", help="CSV file with a clean reference sample")
    experiment.add_argument("--target", help="target column of --data")
    experiment.add_argument("--identifier", help="identifier column of --data")
    experiment.add_argument("--civic", default="", help="comma-separated built-in civic datasets to include")
    experiment.add_argument("--rows", type=int, default=200, help="rows per built-in civic dataset")
    experiment.add_argument("--algorithms", default="decision_tree,naive_bayes,knn,one_r")
    experiment.add_argument("--criteria", default="completeness,accuracy,balance")
    experiment.add_argument("--severities", default="0.0,0.2,0.4")
    experiment.add_argument("--mixed-severity", type=float, default=0.25)
    experiment.add_argument("--folds", type=int, default=3)
    experiment.add_argument("--output", default="dq4dm.json", help=".json or .db (SQLite) output path")
    experiment.set_defaults(func=_cmd_experiment)

    advise = subparsers.add_parser("advise", help="recommend a mining algorithm for a CSV file")
    advise.add_argument("knowledge_base", help="knowledge base file (.json or .db)")
    add_data_arguments(advise)
    advise.add_argument("--neighbours", type=int, default=7, help="nearest experiment records to average")
    advise.add_argument("--json", action="store_true", help="emit the recommendation as JSON")
    advise.set_defaults(func=_cmd_advise)

    rules = subparsers.add_parser("rules", help="derive human-readable guidance rules from a knowledge base")
    rules.add_argument("knowledge_base", help="knowledge base file (.json or .db)")
    rules.add_argument("--threshold", type=float, default=0.85)
    rules.add_argument("--min-observations", type=int, default=4)
    rules.set_defaults(func=_cmd_rules)

    mine = subparsers.add_parser("mine", help="train and evaluate one algorithm on a CSV file")
    add_data_arguments(mine)
    mine.add_argument("--algorithm", default="decision_tree", help=f"one of {sorted(CLASSIFIER_REGISTRY)}")
    mine.add_argument("--cross-validate", action="store_true", help="use k-fold CV instead of a holdout split")
    mine.add_argument("--folds", type=int, default=3)
    mine.add_argument("--test-fraction", type=float, default=0.3)
    mine.add_argument("--seed", type=int, default=0)
    mine.add_argument("--show-rules", action="store_true", help="print the induced rules (tree/1R/PRISM)")
    mine.add_argument("--max-rules", type=int, default=20)
    mine.set_defaults(func=_cmd_mine)

    publish = subparsers.add_parser("publish", help="publish a CSV file (and its quality) as Linked Open Data")
    add_data_arguments(publish)
    publish.add_argument("--format", choices=("turtle", "ntriples"), default="turtle")
    publish.add_argument("--base-iri", default="http://openbi.example.org/data/")
    publish.add_argument("--with-quality", action="store_true", help="also publish the measured quality profile")
    publish.add_argument("--output", help="write to this file instead of stdout")
    publish.set_defaults(func=_cmd_publish)

    lod = subparsers.add_parser("lod", help="work with Linked Open Data graphs (tabulate, link)")
    lod_sub = lod.add_subparsers(dest="lod_command", required=True)

    tabulate = lod_sub.add_parser("tabulate", help="pivot the instances of a class into a CSV dataset")
    tabulate.add_argument("graph", help="N-Triples file holding the LOD graph")
    tabulate.add_argument("--type", required=True, help="IRI of the class whose instances become rows")
    tabulate.add_argument("--properties", help="comma-separated predicate IRIs to use as columns")
    tabulate.add_argument("--multivalued", choices=("first", "count"), default="first")
    tabulate.add_argument("--min-coverage", type=float, default=0.0,
                          help="drop discovered properties present on fewer than this fraction of rows")
    tabulate.add_argument("--output", help="CSV path to write (default: print a table)")
    tabulate.add_argument("--max-rows", type=int, default=25, help="rows to print without --output")
    tabulate.add_argument("--force-row", action="store_true",
                          help="use the row-at-a-time reference tier instead of the columnar tier")
    tabulate.set_defaults(func=_cmd_lod_tabulate)

    link = lod_sub.add_parser("link", help="discover owl:sameAs links between two graphs")
    link.add_argument("left", help="N-Triples file of the left graph")
    link.add_argument("right", help="N-Triples file of the right graph")
    link.add_argument("--type", required=True, help="IRI of the class to link instances of")
    link.add_argument("--right-type", help="class IRI on the right side (default: --type)")
    link.add_argument("--property", required=True,
                      help="comma-separated predicate IRIs compared on the left side")
    link.add_argument("--right-property",
                      help="predicates compared on the right side (default: same as --property)")
    link.add_argument("--threshold", type=float, default=0.85, help="minimum similarity in (0, 1]")
    link.add_argument("--output", help="write the discovered links as N-Triples to this file")
    link.add_argument("--force-pairwise", action="store_true",
                      help="use the exhaustive pairwise reference tier instead of blocking")
    link.set_defaults(func=_cmd_lod_link)

    store = subparsers.add_parser("store", help="save, open and inspect binary encoded store files")
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_save = store_sub.add_parser("save", help="encode a CSV or N-Triples source into a .rps store file")
    store_save.add_argument("data", help="path to the CSV or N-Triples input")
    store_save.add_argument("output", help=".rps store path to write")
    store_save.add_argument("--format", choices=("auto", "csv", "ntriples"), default="auto",
                            help="input format (auto: .nt is N-Triples, anything else CSV)")
    store_save.add_argument("--target", help="name of the class/target column (CSV)")
    store_save.add_argument("--identifier", help="name of the identifier column (CSV)")
    store_save.set_defaults(func=_cmd_store_save)

    store_open = store_sub.add_parser("open", help="memory-map a store file and summarise its payload")
    store_open.add_argument("store", help=".rps store file to open")
    store_open.add_argument("--head", type=int, default=5, help="rows/triples to preview (0: none)")
    store_open.add_argument("--force-memory", action="store_true",
                            help="materialise arrays into memory instead of memory-mapping them")
    store_open.add_argument("--verify", action="store_true", help="checksum every array section up front")
    store_open.set_defaults(func=_cmd_store_open)

    store_inspect = store_sub.add_parser("inspect", help="print the header and section directory of a store file")
    store_inspect.add_argument("store", help=".rps store file to inspect")
    store_inspect.add_argument("--verify", action="store_true", help="CRC-check every section payload")
    store_inspect.add_argument("--json", action="store_true", help="emit the structural summary as JSON")
    store_inspect.set_defaults(func=_cmd_store_inspect)

    salvage = subparsers.add_parser(
        "salvage", help="tolerantly parse a partially corrupt CSV, N-Triples or store file"
    )
    salvage.add_argument("data", help="path to the (possibly corrupt) input file")
    salvage.add_argument("--format", choices=("auto", "csv", "ntriples", "store"), default="auto",
                         help="input format (auto: .nt is N-Triples, .rps is a binary store, anything else CSV)")
    salvage.add_argument("--output", help="write the salvaged CSV/N-Triples to this file")
    salvage.add_argument("--report", help="write the salvage report as JSON to this file")
    salvage.add_argument("--encoding", default="utf-8", help="expected text encoding (CSV)")
    salvage.add_argument("--delimiter", help="cell delimiter (CSV; default: sniffed)")
    salvage.add_argument("--strict", action="store_true",
                         help="route through the strict reference parser (fails on any defect)")
    salvage.set_defaults(func=_cmd_salvage)

    serve = subparsers.add_parser(
        "serve", help="serve .rps snapshots over HTTP (profile, advise, cube, KPI, LOD queries)"
    )
    serve.add_argument("--store", action="append", default=[],
                       help=".rps dataset store to serve (repeatable; named after the file stem)")
    serve.add_argument("--graph", action="append", default=[],
                       help=".rps graph store to serve (repeatable; named after the file stem)")
    serve.add_argument("--kb", help="knowledge base (.json or .db) enabling the /advise endpoint")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8350,
                       help="TCP port to bind (0: let the OS pick; printed on startup)")
    serve.add_argument("--cache-entries", type=int, default=256,
                       help="maximum responses kept in the fingerprint-keyed LRU result cache")
    serve.add_argument("--verbose", action="store_true", help="log each request to stderr")
    serve.set_defaults(func=_cmd_serve)

    ingest = subparsers.add_parser(
        "ingest", help="append a feed batch to a .rps dataset store (and optionally reload a server)"
    )
    ingest.add_argument("feed", help="feed fixture: a .jsonl file or a directory of .jsonl batches")
    ingest.add_argument("store", help=".rps dataset store to append to (replaced atomically)")
    ingest.add_argument("--since", help="cursor value; only records sorting after it are ingested")
    ingest.add_argument("--cursor-field", default="datum",
                        help="record field holding the feed cursor (default: datum)")
    ingest.add_argument("--limit", type=int, default=2000, help="feed page size")
    ingest.add_argument("--sleep", type=float, default=0.0, help="seconds to wait between feed pages")
    ingest.add_argument("--reload-url",
                        help="base URL of a running `repro serve`; POST /reload there after the append")
    ingest.add_argument("--reload-name", help="snapshot name to reload (default: the store file stem)")
    ingest.set_defaults(func=_cmd_ingest)

    datasets = subparsers.add_parser("datasets", help="generate one of the built-in civic datasets as CSV")
    datasets.add_argument("name", help=f"one of {sorted(CIVIC_GENERATORS)}")
    datasets.add_argument("output", help="CSV path to write")
    datasets.add_argument("--rows", type=int, default=200)
    datasets.add_argument("--seed", type=int, default=0)
    datasets.add_argument("--dirty", action="store_true", help="generate the organically dirty variant")
    datasets.set_defaults(func=_cmd_datasets)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Run the CLI; returns the process exit code (0 success, 2 usage error)."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
