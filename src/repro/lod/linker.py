"""Entity linking across open data sources.

Integrating "different open data sources" (paper, §1) requires discovering
that a resource in one source denotes the same real-world entity as a resource
in another.  The :class:`EntityLinker` compares resources of given types using
declarative :class:`LinkRule` objects and emits ``owl:sameAs`` triples.
"""

from __future__ import annotations

import re
import unicodedata
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.exceptions import LODError
from repro.lod.graph import Graph
from repro.lod.terms import IRI, Literal, Subject, Triple
from repro.lod.vocabulary import OWL


def normalise_string(value: str) -> str:
    """Lower-case, strip accents and collapse whitespace/punctuation."""
    text = unicodedata.normalize("NFKD", str(value))
    text = "".join(ch for ch in text if not unicodedata.combining(ch))
    text = re.sub(r"[^a-z0-9]+", " ", text.lower())
    return " ".join(text.split())


def jaccard_similarity(a: str, b: str) -> float:
    """Token Jaccard similarity between two normalised strings."""
    tokens_a = set(normalise_string(a).split())
    tokens_b = set(normalise_string(b).split())
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance (used for fuzzy key matching)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def string_similarity(a: str, b: str) -> float:
    """Normalised similarity in [0, 1] combining exact, Jaccard and edit distance."""
    na, nb = normalise_string(a), normalise_string(b)
    if not na and not nb:
        return 1.0
    if na == nb:
        return 1.0
    jac = jaccard_similarity(na, nb)
    longest = max(len(na), len(nb))
    edit = 1.0 - levenshtein(na, nb) / longest if longest else 1.0
    return max(jac, edit)


@dataclass
class LinkRule:
    """How two resources should be compared.

    Parameters
    ----------
    left_property / right_property:
        Predicates whose values are compared on each side.
    comparator:
        Function (value_a, value_b) → similarity in [0, 1]; defaults to
        :func:`string_similarity`.
    weight:
        Relative weight of this rule in the aggregated score.
    """

    left_property: IRI
    right_property: IRI
    comparator: Callable[[str, str], float] = field(default=string_similarity)
    weight: float = 1.0


@dataclass(frozen=True)
class Link:
    """A discovered equivalence between two resources with its confidence."""

    left: Subject
    right: Subject
    score: float


class EntityLinker:
    """Discover ``owl:sameAs`` links between two graphs (or within one graph).

    The linker scores every candidate pair of resources of the requested types
    with the weighted average of its rules and keeps pairs above ``threshold``.
    """

    def __init__(self, rules: Sequence[LinkRule], threshold: float = 0.85) -> None:
        if not rules:
            raise LODError("EntityLinker needs at least one LinkRule")
        if not 0.0 < threshold <= 1.0:
            raise LODError("threshold must be in (0, 1]")
        self.rules = list(rules)
        self.threshold = threshold

    def _values(self, graph: Graph, subject: Subject, predicate: IRI) -> list[str]:
        values = []
        for obj in graph.store.objects(subject, predicate):
            if isinstance(obj, Literal):
                values.append(str(obj.python_value()))
            elif isinstance(obj, IRI):
                values.append(obj.local_name())
        return values

    def score_pair(self, left_graph: Graph, left: Subject, right_graph: Graph, right: Subject) -> float:
        """Weighted-average similarity between two resources."""
        total_weight = 0.0
        total_score = 0.0
        for rule in self.rules:
            left_values = self._values(left_graph, left, rule.left_property)
            right_values = self._values(right_graph, right, rule.right_property)
            if not left_values or not right_values:
                continue
            best = max(rule.comparator(a, b) for a in left_values for b in right_values)
            total_score += rule.weight * best
            total_weight += rule.weight
        if total_weight == 0:
            return 0.0
        return total_score / total_weight

    def link(
        self,
        left_graph: Graph,
        left_type: IRI,
        right_graph: Graph,
        right_type: IRI,
    ) -> list[Link]:
        """Return every above-threshold link between instances of the two types."""
        links: list[Link] = []
        left_subjects = left_graph.subjects_of_type(left_type)
        right_subjects = right_graph.subjects_of_type(right_type)
        for left in left_subjects:
            best_right = None
            best_score = 0.0
            for right in right_subjects:
                if left == right:
                    continue
                score = self.score_pair(left_graph, left, right_graph, right)
                if score > best_score:
                    best_score = score
                    best_right = right
            if best_right is not None and best_score >= self.threshold:
                links.append(Link(left, best_right, best_score))
        return links

    def materialise(self, target_graph: Graph, links: Sequence[Link]) -> int:
        """Write ``owl:sameAs`` triples for the links into ``target_graph``."""
        added = 0
        for link in links:
            if target_graph.store.add(Triple(link.left, OWL.sameAs, link.right)):
                added += 1
        return added
