"""Entity linking across open data sources.

Integrating "different open data sources" (paper, §1) requires discovering
that a resource in one source denotes the same real-world entity as a resource
in another.  The :class:`EntityLinker` compares resources of given types using
declarative :class:`LinkRule` objects and emits ``owl:sameAs`` triples.

Linking follows the library-wide two-tier protocol (``docs/encoded-core.md``):

* the **reference tier** scores every candidate pair of resources with a
  Python double loop (:meth:`EntityLinker._link_pairwise`);
* the **blocked tier** (default when every rule uses the default
  :func:`string_similarity` comparator) prunes the pair space first —
  token-id blocking with a vectorized token-set Jaccard over the inverted
  index, plus a character-multiset upper bound on the edit similarity — and
  falls back to the exact pairwise scorer (including :func:`levenshtein`)
  only on the surviving candidates.  Both the pruning bounds are true upper
  bounds on :func:`string_similarity`, so every pair that could reach the
  linker's threshold survives and the emitted link set and scores are
  identical to the reference tier.

Set ``linker._force_pairwise_link = True`` to route through the reference
tier; custom comparators fall back to it automatically.
"""

from __future__ import annotations

import re
import unicodedata
from collections.abc import Callable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import LODError
from repro.lod.graph import Graph
from repro.lod.terms import IRI, Literal, Predicate, Subject, Triple
from repro.lod.vocabulary import OWL
from repro.parallel import ViewHandle, effective_n_jobs, parallel_map

#: When active (inside ``EntityLinker.link``/``score_pair``), memoises
#: ``normalise_string`` per distinct raw string so the costly Unicode
#: normalisation runs once per value instead of once per candidate pair.
_NORMALISE_MEMO: dict[str, str] | None = None


@contextmanager
def _memoised_normalise():
    """Activate the per-string ``normalise_string`` memo for a linking run."""
    global _NORMALISE_MEMO
    previous = _NORMALISE_MEMO
    if previous is None:
        _NORMALISE_MEMO = {}
    try:
        yield
    finally:
        _NORMALISE_MEMO = previous


def normalise_string(value: str) -> str:
    """Lower-case, strip accents and collapse whitespace/punctuation."""
    memo = _NORMALISE_MEMO
    if memo is not None and isinstance(value, str):
        cached = memo.get(value)
        if cached is not None:
            return cached
    text = unicodedata.normalize("NFKD", str(value))
    text = "".join(ch for ch in text if not unicodedata.combining(ch))
    text = re.sub(r"[^a-z0-9]+", " ", text.lower())
    result = " ".join(text.split())
    if memo is not None and isinstance(value, str):
        memo[value] = result
    return result


def jaccard_similarity(a: str, b: str) -> float:
    """Token Jaccard similarity between two normalised strings."""
    tokens_a = set(normalise_string(a).split())
    tokens_b = set(normalise_string(b).split())
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance (used for fuzzy key matching)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def string_similarity(a: str, b: str) -> float:
    """Normalised similarity in [0, 1] combining exact, Jaccard and edit distance."""
    na, nb = normalise_string(a), normalise_string(b)
    if not na and not nb:
        return 1.0
    if na == nb:
        return 1.0
    jac = jaccard_similarity(na, nb)
    longest = max(len(na), len(nb))
    edit = 1.0 - levenshtein(na, nb) / longest if longest else 1.0
    return max(jac, edit)


@dataclass
class LinkRule:
    """How two resources should be compared.

    Parameters
    ----------
    left_property / right_property:
        Predicates whose values are compared on each side.
    comparator:
        Function (value_a, value_b) → similarity in [0, 1]; defaults to
        :func:`string_similarity`.
    weight:
        Relative weight of this rule in the aggregated score.
    """

    left_property: IRI
    right_property: IRI
    comparator: Callable[[str, str], float] = field(default=string_similarity)
    weight: float = 1.0


@dataclass(frozen=True)
class Link:
    """A discovered equivalence between two resources with its confidence."""

    left: Subject
    right: Subject
    score: float


#: Normalised strings only contain a-z, 0-9 and single spaces; the blocked
#: tier's character-multiset bound counts occurrences over this alphabet.
_CHAR_INDEX = {ch: i for i, ch in enumerate("abcdefghijklmnopqrstuvwxyz0123456789 ")}

#: Slack subtracted from the threshold when pruning with float bounds, so a
#: last-bit rounding difference can never prune a pair the exact reference
#: arithmetic would keep (similarities live in [0, 1]; one ulp is ~1e-16).
_PRUNE_SLACK = 1e-9

#: Cell budget per chunk of the character-bound matrix pass; the chunk's row
#: count scales inversely with the right side so the transient
#: ``rows × n_right_values × 37`` int32 intermediate stays ~64 MB no matter
#: how large either side is.
_CHUNK_CELL_BUDGET = 16_000_000

#: Pair budget per expansion chunk of the inverted token index (bounds the
#: transient arrays of the shared-token counting pass).
_TOKEN_PAIR_CHUNK = 2_000_000

#: Below this many (left value × right value) cells the shared-token counts
#: are accumulated into a dense bincount array instead of sorting the
#: expanded keys (≤ 128 MB, flat in the expansion size).
_DENSE_PAIR_CELLS = 16_000_000

#: Total pair-expansion budget per rule.  A token shared by a large fraction
#: of both sides (a stop word in every name) makes token blocking
#: near-quadratic; past this budget the blocked tier stops pretending and
#: routes the whole link through the pairwise reference, which is what the
#: candidate set would have degenerated to anyway.
_MAX_TOKEN_PAIR_EXPANSION = 10_000_000


class _BlockingOverflow(Exception):
    """Raised when a rule's token-pair expansion exceeds the budget."""


def _char_counts(norms: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Per-value character-occurrence matrix and lengths over the normalised alphabet."""
    counts = np.zeros((len(norms), len(_CHAR_INDEX)), dtype=np.int32)
    lengths = np.zeros(len(norms), dtype=np.int32)
    for row, text in enumerate(norms):
        lengths[row] = len(text)
        for ch in text:
            counts[row, _CHAR_INDEX[ch]] += 1
    return counts, lengths


def _token_incidence(
    norms: Sequence[str], token_ids: dict[str, int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(token id, owning value index)`` incidence pairs plus token-set sizes.

    Tokens are interned into ``token_ids`` (shared across both sides of a
    rule) and each value contributes its *distinct* tokens, mirroring the
    token sets :func:`jaccard_similarity` compares.
    """
    tokens: list[int] = []
    owners: list[int] = []
    sizes = np.zeros(len(norms), dtype=np.int64)
    for row, text in enumerate(norms):
        distinct = set(text.split())
        sizes[row] = len(distinct)
        for token in distinct:
            tokens.append(token_ids.setdefault(token, len(token_ids)))
            owners.append(row)
    return np.asarray(tokens, dtype=np.int64), np.asarray(owners, dtype=np.int64), sizes


def _jaccard_candidates(
    ltokens: np.ndarray,
    lowners: np.ndarray,
    lsizes: np.ndarray,
    rtokens: np.ndarray,
    rowners: np.ndarray,
    rsizes: np.ndarray,
    n_right: int,
    floor: float,
) -> np.ndarray:
    """Value-pair keys (``left * n_right + right``) whose exact token Jaccard ≥ floor.

    The shared-token counts come from expanding the inverted token index:
    every token contributes the cross product of the values holding it, and
    the multiplicity of each pair key is exactly ``|A ∩ B|``.  The
    expansion is chunked by token so its transient arrays stay within
    :data:`_TOKEN_PAIR_CHUNK` pairs; a rule whose total expansion exceeds
    :data:`_MAX_TOKEN_PAIR_EXPANSION` (degenerate stop-word blocking)
    raises :class:`_BlockingOverflow` so the caller can fall back to the
    pairwise reference tier.
    """
    if ltokens.size == 0 or rtokens.size == 0:
        return np.empty(0, dtype=np.int64)
    lorder = np.argsort(ltokens, kind="stable")
    ltok_s, lown_s = ltokens[lorder], lowners[lorder]
    rorder = np.argsort(rtokens, kind="stable")
    rtok_s, rown_s = rtokens[rorder], rowners[rorder]
    shared = np.intersect1d(ltok_s, rtok_s)
    if shared.size == 0:
        return np.empty(0, dtype=np.int64)
    llo = np.searchsorted(ltok_s, shared, side="left")
    lhi = np.searchsorted(ltok_s, shared, side="right")
    rlo = np.searchsorted(rtok_s, shared, side="left")
    rhi = np.searchsorted(rtok_s, shared, side="right")
    per_token = (lhi - llo) * (rhi - rlo)
    total = int(per_token.sum())
    if total > _MAX_TOKEN_PAIR_EXPANSION:
        raise _BlockingOverflow
    if not total:
        return np.empty(0, dtype=np.int64)
    # Fill one preallocated key buffer (8 bytes per expanded pair) in chunks
    # of consecutive tokens, so the expansion *intermediates* (token_rep /
    # within / spans) never exceed the chunk budget.  A single token bigger
    # than the chunk budget becomes its own chunk; the total check above
    # bounds even that case.
    all_keys = np.empty(total, dtype=np.int64)
    cuts = [0]
    running = 0
    for position, pairs in enumerate(per_token.tolist()):
        if running + pairs > _TOKEN_PAIR_CHUNK and running:
            cuts.append(position)
            running = 0
        running += pairs
    cuts.append(shared.size)
    filled = 0
    for start, stop in zip(cuts[:-1], cuts[1:]):
        block = slice(start, stop)
        pairs = per_token[block]
        block_total = int(pairs.sum())
        if not block_total:
            continue
        token_rep = np.repeat(np.arange(stop - start), pairs)
        within = np.arange(block_total, dtype=np.int64) - np.repeat(np.cumsum(pairs) - pairs, pairs)
        r_span = (rhi[block] - rlo[block])[token_rep]
        left_values = lown_s[llo[block][token_rep] + within // r_span]
        right_values = rown_s[rlo[block][token_rep] + within % r_span]
        all_keys[filled : filled + block_total] = left_values * n_right + right_values
        filled += block_total
    # One counting pass: dense bincount over the pair space when it is small
    # enough (cheaper and flat in the expansion size), sorting otherwise.
    n_left = int(lsizes.size)
    if n_left * n_right <= _DENSE_PAIR_CELLS:
        dense = np.bincount(all_keys, minlength=n_left * n_right)
        del all_keys  # the buffer and the counting arrays are the memory peak
        keys = np.flatnonzero(dense)  # ascending, like np.unique
        intersections = dense[keys]
        del dense
    else:
        keys, intersections = np.unique(all_keys, return_counts=True)
        del all_keys
    unions = lsizes[keys // n_right] + rsizes[keys % n_right] - intersections
    return keys[intersections / unions >= floor]


def _edit_bound_candidates(
    lnorms: Sequence[str], rnorms: Sequence[str], floor: float
) -> np.ndarray:
    """Value-pair keys whose edit similarity *could* reach ``floor``.

    Uses ``levenshtein(a, b) ≥ max(len) − |char multiset intersection|``, so
    ``common / max(len)`` upper-bounds ``1 − levenshtein / max(len)``; pairs
    of empty normalised strings bound to 1.0 (their exact similarity).
    """
    lcounts, llen = _char_counts(lnorms)
    rcounts, rlen = _char_counts(rnorms)
    n_right = len(rnorms)
    chunk_rows = max(1, _CHUNK_CELL_BUDGET // max(1, n_right * len(_CHAR_INDEX)))
    keys: list[np.ndarray] = []
    for start in range(0, len(lnorms), chunk_rows):
        chunk = lcounts[start : start + chunk_rows]
        common = np.minimum(chunk[:, None, :], rcounts[None, :, :]).sum(axis=2)
        longest = np.maximum(llen[start : start + chunk_rows, None], rlen[None, :])
        bound = np.where(longest > 0, common / np.maximum(longest, 1), 1.0)
        left_values, right_values = np.nonzero(bound >= floor)
        keys.append((left_values + start) * n_right + right_values)
    return np.concatenate(keys) if keys else np.empty(0, dtype=np.int64)


def _score_block(context: dict, block_index: int) -> "Link | None":
    """Score one left subject's candidate block; the unit shared by both tiers.

    Candidates in a block share one left subject; they are scored against
    that subject in ascending right-subject order — exactly the order the
    sequential block loop used — and the block's strict best is returned
    as a :class:`Link` (or ``None`` below threshold).
    """
    linker = context["linker"]
    left_graph = context["left_view"].resolve()
    right_graph = context["right_view"].resolve()
    right_subjects = context["right_subjects"]
    n_right = context["n_right"]
    block = context["blocks"][block_index]
    left = context["left_subjects"][int(block[0]) // n_right]
    best_right = None
    best_score = 0.0
    with linker._cached_lookups():
        for key in block.tolist():  # ascending key = right_subjects order
            right = right_subjects[key % n_right]
            if left == right:
                continue
            score = linker.score_pair(left_graph, left, right_graph, right)
            if score > best_score:
                best_score = score
                best_right = right
    if best_right is not None and best_score >= linker.threshold:
        return Link(left, best_right, best_score)
    return None


class EntityLinker:
    """Discover ``owl:sameAs`` links between two graphs (or within one graph).

    The linker scores every candidate pair of resources of the requested types
    with the weighted average of its rules and keeps pairs above ``threshold``.
    Candidate generation is blocked and vectorized by default (see the module
    docstring); ``_force_pairwise_link`` routes back to the exhaustive
    reference tier.  ``n_jobs`` fans the candidate blocks of the blocked
    tier over a worker pool (see :mod:`repro.parallel`); the link set and
    scores stay identical at any worker count.
    """

    #: Escape hatch: force the exhaustive pairwise reference tier.
    _force_pairwise_link = False

    def __init__(
        self, rules: Sequence[LinkRule], threshold: float = 0.85, n_jobs: int | None = None
    ) -> None:
        """Validate the rules and the threshold."""
        if not rules:
            raise LODError("EntityLinker needs at least one LinkRule")
        if not 0.0 < threshold <= 1.0:
            raise LODError("threshold must be in (0, 1]")
        self.rules = list(rules)
        self.threshold = threshold
        self.n_jobs = n_jobs
        #: (graph, subject, predicate) → value strings, active during a
        #: ``link``/``score_pair`` run (keys hold the graphs by identity).
        self._value_cache: dict[tuple[Graph, Subject, Predicate], list[str]] | None = None

    def __getstate__(self) -> dict:
        """Pickle without the transient value cache (it holds whole graphs).

        The cache is only ever populated inside a linking run; a snapshot
        dispatch pickles the linker mid-run, and shipping the cache would
        drag both graphs through the pipe.  Workers rebuild it lazily.
        """
        state = dict(self.__dict__)
        state["_value_cache"] = None
        return state

    @contextmanager
    def _cached_lookups(self):
        """Activate the per-(graph, subject, predicate) value cache and the
        ``normalise_string`` memo for the duration of one linking run."""
        transient = self._value_cache is None
        if transient:
            self._value_cache = {}
        try:
            with _memoised_normalise():
                yield
        finally:
            if transient:
                self._value_cache = None

    def _values(self, graph: Graph, subject: Subject, predicate: IRI) -> list[str]:
        """Comparable string values of (subject, predicate), cached during a run."""
        cache = self._value_cache
        if cache is not None:
            cached = cache.get((graph, subject, predicate))
            if cached is not None:
                return cached
        values = []
        for obj in graph.store.objects(subject, predicate):
            if isinstance(obj, Literal):
                values.append(str(obj.python_value()))
            elif isinstance(obj, IRI):
                values.append(obj.local_name())
        if cache is not None:
            cache[(graph, subject, predicate)] = values
        return values

    def score_pair(self, left_graph: Graph, left: Subject, right_graph: Graph, right: Subject) -> float:
        """Weighted-average similarity between two resources."""
        with self._cached_lookups():
            total_weight = 0.0
            total_score = 0.0
            for rule in self.rules:
                left_values = self._values(left_graph, left, rule.left_property)
                right_values = self._values(right_graph, right, rule.right_property)
                if not left_values or not right_values:
                    continue
                best = max(rule.comparator(a, b) for a in left_values for b in right_values)
                total_score += rule.weight * best
                total_weight += rule.weight
            if total_weight == 0:
                return 0.0
            return total_score / total_weight

    def link(
        self,
        left_graph: Graph,
        left_type: IRI,
        right_graph: Graph,
        right_type: IRI,
    ) -> list[Link]:
        """Return every above-threshold link between instances of the two types."""
        left_subjects = left_graph.subjects_of_type(left_type)
        right_subjects = right_graph.subjects_of_type(right_type)
        vectorizable = all(rule.comparator is string_similarity for rule in self.rules)
        with self._cached_lookups():
            if self._force_pairwise_link or not vectorizable:
                return self._link_pairwise(left_graph, left_subjects, right_graph, right_subjects)
            return self._link_blocked(left_graph, left_subjects, right_graph, right_subjects)

    def _link_pairwise(
        self,
        left_graph: Graph,
        left_subjects: Sequence[Subject],
        right_graph: Graph,
        right_subjects: Sequence[Subject],
    ) -> list[Link]:
        """Reference tier: score every pair; keep each left's first strict best."""
        links: list[Link] = []
        for left in left_subjects:
            best_right = None
            best_score = 0.0
            for right in right_subjects:
                if left == right:
                    continue
                score = self.score_pair(left_graph, left, right_graph, right)
                if score > best_score:
                    best_score = score
                    best_right = right
            if best_right is not None and best_score >= self.threshold:
                links.append(Link(left, best_right, best_score))
        return links

    def _flatten_norms(
        self, graph: Graph, subjects: Sequence[Subject], predicate: IRI
    ) -> tuple[list[str], np.ndarray]:
        """Normalised property values of all subjects, with value → subject owners."""
        norms: list[str] = []
        owners: list[int] = []
        for index, subject in enumerate(subjects):
            for value in self._values(graph, subject, predicate):
                norms.append(normalise_string(value))
                owners.append(index)
        return norms, np.asarray(owners, dtype=np.int64)

    def _link_blocked(
        self,
        left_graph: Graph,
        left_subjects: Sequence[Subject],
        right_graph: Graph,
        right_subjects: Sequence[Subject],
    ) -> list[Link]:
        """Blocked tier: prune with vectorized bounds, score survivors exactly.

        A subject pair survives when some rule has a value pair whose token
        Jaccard or character-bound edit similarity reaches the threshold.
        Since the weighted-average score is bounded by the best single-rule
        similarity, every pair the reference tier would link survives; the
        survivors are then scored with the *same* :meth:`score_pair` the
        reference uses, so link sets and scores are identical.
        """
        n_right = len(right_subjects)
        if not left_subjects or not n_right:
            return []
        floor = self.threshold - _PRUNE_SLACK
        survivor_keys: list[np.ndarray] = []
        for rule in self.rules:
            lnorms, lowners = self._flatten_norms(left_graph, left_subjects, rule.left_property)
            rnorms, rowners = self._flatten_norms(right_graph, right_subjects, rule.right_property)
            if not lnorms or not rnorms:
                continue
            token_ids: dict[str, int] = {}
            ltokens, ltok_owners, lsizes = _token_incidence(lnorms, token_ids)
            rtokens, rtok_owners, rsizes = _token_incidence(rnorms, token_ids)
            try:
                jaccard_keys = _jaccard_candidates(
                    ltokens, ltok_owners, lsizes, rtokens, rtok_owners, rsizes, len(rnorms), floor
                )
            except _BlockingOverflow:
                # Stop-word-degenerate token distribution: blocking would be
                # near-quadratic anyway, so use the reference tier outright.
                return self._link_pairwise(left_graph, left_subjects, right_graph, right_subjects)
            value_keys = np.union1d(jaccard_keys, _edit_bound_candidates(lnorms, rnorms, floor))
            if value_keys.size:
                subject_keys = lowners[value_keys // len(rnorms)] * n_right + rowners[value_keys % len(rnorms)]
                survivor_keys.append(np.unique(subject_keys))
        if not survivor_keys:
            return []
        keys = np.unique(np.concatenate(survivor_keys))

        splits = np.flatnonzero(np.diff(keys // n_right)) + 1
        blocks = np.split(keys, splits)
        left_view = ViewHandle(left_graph)
        context = {
            "linker": self,
            "left_view": left_view,
            "right_view": left_view if right_graph is left_graph else ViewHandle(right_graph),
            "left_subjects": list(left_subjects),
            "right_subjects": list(right_subjects),
            "n_right": n_right,
            "blocks": blocks,
        }
        n_workers = effective_n_jobs(self.n_jobs)
        results = None
        if n_workers > 1 and len(blocks) > 1:
            results = parallel_map(
                _score_block, len(blocks), context=context, n_jobs=n_workers, error_cls=LODError
            )
        if results is None:
            results = [_score_block(context, i) for i in range(len(blocks))]
        return [link for link in results if link is not None]

    def materialise(self, target_graph: Graph, links: Sequence[Link]) -> int:
        """Write ``owl:sameAs`` triples for the links into ``target_graph``."""
        added = 0
        for link in links:
            if target_graph.store.add(Triple(link.left, OWL.sameAs, link.right)):
                added += 1
        return added
