"""Linked Open Data substrate.

The paper's OpenBI scenario starts from open data that has been integrated and
semantically annotated into Linked Open Data (LOD).  This subpackage provides
everything the rest of the library needs to work with LOD without external
dependencies:

* RDF terms (:class:`~repro.lod.terms.IRI`, :class:`~repro.lod.terms.Literal`,
  :class:`~repro.lod.terms.BNode`) and triples;
* an indexed in-memory :class:`~repro.lod.triples.TripleStore` and the
  higher-level :class:`~repro.lod.graph.Graph`;
* a small SPARQL-like basic-graph-pattern query engine
  (:mod:`repro.lod.query`);
* N-Triples / Turtle serialisation and parsing (:mod:`repro.lod.serialization`);
* entity linking across sources (:mod:`repro.lod.linker`);
* pivoting a LOD graph into a high-dimensional tabular dataset ready for
  mining (:mod:`repro.lod.tabulate`);
* publishing results (patterns, data quality annotations) back as LOD
  (:mod:`repro.lod.publish`).
"""

from repro.lod.terms import IRI, Literal, BNode, Triple
from repro.lod.vocabulary import Namespace, RDF, RDFS, XSD, OWL, DCTERMS, FOAF, QB, DQV, OPENBI
from repro.lod.triples import ColumnarTriples, TripleStore
from repro.lod.graph import Graph
from repro.lod.query import Variable, TriplePattern, ask, count, select
from repro.lod.serialization import to_ntriples, to_turtle, parse_ntriples
from repro.lod.linker import EntityLinker, Link, LinkRule
from repro.lod.tabulate import tabulate_entities
from repro.lod.publish import publish_dataset, publish_quality_profile, publish_patterns

__all__ = [
    "IRI",
    "Literal",
    "BNode",
    "Triple",
    "Namespace",
    "RDF",
    "RDFS",
    "XSD",
    "OWL",
    "DCTERMS",
    "FOAF",
    "QB",
    "DQV",
    "OPENBI",
    "TripleStore",
    "ColumnarTriples",
    "Graph",
    "Variable",
    "TriplePattern",
    "select",
    "ask",
    "count",
    "to_ntriples",
    "to_turtle",
    "parse_ntriples",
    "EntityLinker",
    "Link",
    "LinkRule",
    "tabulate_entities",
    "publish_dataset",
    "publish_quality_profile",
    "publish_patterns",
]
