"""A small SPARQL-like query engine over :class:`~repro.lod.graph.Graph`.

Only the features the library needs are implemented: basic graph patterns
(conjunctions of triple patterns with shared variables), optional value
filters, ``DISTINCT``, ``LIMIT`` and ``ORDER BY``.  This is enough to express
the selection queries used when pivoting LOD into datasets and when reading
published results back.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any, Union

from repro.exceptions import LODError
from repro.lod.graph import Graph
from repro.lod.terms import IRI, BNode, Literal


@dataclass(frozen=True, slots=True)
class Variable:
    """A query variable, written ``Variable("x")`` (think SPARQL ``?x``)."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


Term = Union[Variable, IRI, BNode, Literal]
Binding = dict[str, Any]


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """A triple pattern whose positions may be variables or concrete terms."""

    subject: Term
    predicate: Term
    object: Term

    def variables(self) -> list[str]:
        return [t.name for t in (self.subject, self.predicate, self.object) if isinstance(t, Variable)]


def _resolve(term: Term, binding: Binding):
    """Replace a variable by its bound value (or ``None`` when still free)."""
    if isinstance(term, Variable):
        return binding.get(term.name)
    return term


def _match_pattern(graph: Graph, pattern: TriplePattern, binding: Binding) -> Iterable[Binding]:
    """Yield extensions of ``binding`` that satisfy ``pattern`` in ``graph``."""
    s = _resolve(pattern.subject, binding)
    p = _resolve(pattern.predicate, binding)
    o = _resolve(pattern.object, binding)
    for triple in graph.triples(s, p, o):
        extended = dict(binding)
        consistent = True
        for term, value in ((pattern.subject, triple.subject), (pattern.predicate, triple.predicate), (pattern.object, triple.object)):
            if isinstance(term, Variable):
                existing = extended.get(term.name)
                if existing is None:
                    extended[term.name] = value
                elif existing != value:
                    consistent = False
                    break
        if consistent:
            yield extended


def _pattern_selectivity(pattern: TriplePattern, bound: set[str]) -> int:
    """Heuristic: more bound positions first (cheaper join order)."""
    score = 0
    for term in (pattern.subject, pattern.predicate, pattern.object):
        if not isinstance(term, Variable) or term.name in bound:
            score += 1
    return -score


def select(
    graph: Graph,
    patterns: Sequence[TriplePattern],
    variables: Sequence[str] | None = None,
    where: Callable[[Binding], bool] | None = None,
    distinct: bool = False,
    order_by: str | None = None,
    descending: bool = False,
    limit: int | None = None,
) -> list[Binding]:
    """Evaluate a basic graph pattern and return variable bindings.

    Parameters
    ----------
    graph:
        The graph to query.
    patterns:
        Triple patterns; variables shared across patterns express joins.
    variables:
        Names of the variables to keep in the result rows (default: all).
    where:
        Optional predicate applied to each full binding (a SPARQL FILTER).
    distinct, order_by, descending, limit:
        Result modifiers analogous to their SPARQL counterparts.
    """
    if not patterns:
        raise LODError("select needs at least one triple pattern")

    bindings: list[Binding] = [{}]
    remaining = list(patterns)
    bound: set[str] = set()
    while remaining:
        remaining.sort(key=lambda pat: _pattern_selectivity(pat, bound))
        pattern = remaining.pop(0)
        next_bindings: list[Binding] = []
        for binding in bindings:
            next_bindings.extend(_match_pattern(graph, pattern, binding))
        bindings = next_bindings
        bound.update(pattern.variables())
        if not bindings:
            break

    if where is not None:
        bindings = [b for b in bindings if where(b)]

    if variables is not None:
        missing = [v for v in variables if v not in bound]
        if missing:
            raise LODError(f"projected variables never bound by the patterns: {missing}")
        bindings = [{v: b.get(v) for v in variables} for b in bindings]

    if distinct:
        seen: set[tuple] = set()
        unique: list[Binding] = []
        for binding in bindings:
            key = tuple(sorted((k, _sort_key(v)) for k, v in binding.items()))
            if key not in seen:
                seen.add(key)
                unique.append(binding)
        bindings = unique

    if order_by is not None:
        bindings.sort(key=lambda b: _sort_key(b.get(order_by)), reverse=descending)

    if limit is not None:
        bindings = bindings[:limit]
    return bindings


def _sort_key(value: Any) -> tuple:
    """Total order over heterogeneous RDF terms for ORDER BY / DISTINCT."""
    if isinstance(value, Literal):
        inner = value.python_value()
        if isinstance(inner, (int, float)) and not isinstance(inner, bool):
            return (0, float(inner), "")
        return (1, 0.0, str(inner))
    if isinstance(value, IRI):
        return (2, 0.0, value.value)
    if isinstance(value, BNode):
        return (3, 0.0, value.identifier)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (0, float(value), "")
    return (1, 0.0, str(value))


def ask(graph: Graph, patterns: Sequence[TriplePattern]) -> bool:
    """Return ``True`` when the basic graph pattern has at least one solution."""
    return bool(select(graph, patterns, limit=1))


def count(graph: Graph, patterns: Sequence[TriplePattern], distinct_variable: str | None = None) -> int:
    """Count solutions (or distinct values of one variable) of a pattern."""
    results = select(graph, patterns)
    if distinct_variable is None:
        return len(results)
    return len({_sort_key(r.get(distinct_variable)) for r in results})
