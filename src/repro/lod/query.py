"""A small SPARQL-like query engine over :class:`~repro.lod.graph.Graph`.

Only the features the library needs are implemented: basic graph patterns
(conjunctions of triple patterns with shared variables), optional value
filters, ``DISTINCT``, ``LIMIT`` and ``ORDER BY``.  This is enough to express
the selection queries used when pivoting LOD into datasets and when reading
published results back.

Following the library-wide two-tier protocol (see ``docs/encoded-core.md``),
pattern evaluation has two implementations that are bit-identical — same
bindings, same binding-dict key order, same row order:

* the **reference tier**: the binding-at-a-time nested-loop matcher over the
  store's dict indexes (:func:`_join_reference`);
* the **vectorized tier** (default): a selectivity-ordered join over the
  store's interned id columns (:class:`~repro.lod.triples.ColumnarTriples`),
  resolving per-binding candidate ranges with ``searchsorted`` block lookups
  and equality constraints with array masks (:func:`_join_encoded`).

``select``/``ask``/``count`` accept ``force_row=True``, and a graph can set
``graph._force_row_select = True``, to route every query through the
reference tier.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any, Union

import numpy as np

from repro.exceptions import LODError
from repro.lod.graph import Graph
from repro.lod.terms import IRI, BNode, Literal
from repro.lod.triples import ColumnarTriples


@dataclass(frozen=True, slots=True)
class Variable:
    """A query variable, written ``Variable("x")`` (think SPARQL ``?x``)."""

    name: str

    def __str__(self) -> str:
        """SPARQL-style ``?name`` form."""
        return f"?{self.name}"


Term = Union[Variable, IRI, BNode, Literal]
Binding = dict[str, Any]


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """A triple pattern whose positions may be variables or concrete terms."""

    subject: Term
    predicate: Term
    object: Term

    def variables(self) -> list[str]:
        """Names of the variables used in this pattern."""
        return [t.name for t in (self.subject, self.predicate, self.object) if isinstance(t, Variable)]


def _resolve(term: Term, binding: Binding):
    """Replace a variable by its bound value (or ``None`` when still free)."""
    if isinstance(term, Variable):
        return binding.get(term.name)
    return term


def _match_pattern(graph: Graph, pattern: TriplePattern, binding: Binding) -> Iterable[Binding]:
    """Yield extensions of ``binding`` that satisfy ``pattern`` in ``graph``."""
    s = _resolve(pattern.subject, binding)
    p = _resolve(pattern.predicate, binding)
    o = _resolve(pattern.object, binding)
    for triple in graph.triples(s, p, o):
        extended = dict(binding)
        consistent = True
        for term, value in ((pattern.subject, triple.subject), (pattern.predicate, triple.predicate), (pattern.object, triple.object)):
            if isinstance(term, Variable):
                existing = extended.get(term.name)
                if existing is None:
                    extended[term.name] = value
                elif existing != value:
                    consistent = False
                    break
        if consistent:
            yield extended


def _pattern_selectivity(pattern: TriplePattern, bound: set[str]) -> int:
    """Heuristic: more bound positions first (cheaper join order)."""
    score = 0
    for term in (pattern.subject, pattern.predicate, pattern.object):
        if not isinstance(term, Variable) or term.name in bound:
            score += 1
    return -score


def _join_reference(graph: Graph, patterns: Sequence[TriplePattern]) -> tuple[list[Binding], set[str]]:
    """Binding-at-a-time reference join; returns ``(bindings, bound variables)``."""
    bindings: list[Binding] = [{}]
    remaining = list(patterns)
    bound: set[str] = set()
    while remaining:
        remaining.sort(key=lambda pat: _pattern_selectivity(pat, bound))
        pattern = remaining.pop(0)
        next_bindings: list[Binding] = []
        for binding in bindings:
            next_bindings.extend(_match_pattern(graph, pattern, binding))
        bindings = next_bindings
        bound.update(pattern.variables())
        if not bindings:
            break
    return bindings, bound


def _extend_encoded(
    columnar: ColumnarTriples,
    pattern: TriplePattern,
    binding_cols: dict[str, np.ndarray],
    n_bindings: int,
) -> tuple[dict[str, np.ndarray], int]:
    """One vectorized join step: extend the binding table with ``pattern``.

    ``binding_cols`` maps variable name → per-binding term-id array, with the
    dict's insertion order equal to the order the reference matcher assigns
    keys into its binding dicts.  The output preserves the reference's row
    order: bindings expand in order, and each binding's matches appear in the
    iteration order of the dict index the reference would have consulted
    (replayed here through the matching :class:`ColumnarTriples` ordering).
    """
    positions = (pattern.subject, pattern.predicate, pattern.object)
    consts: list[tuple[int, int]] = []          # (position, interned id; -1 = not in store)
    bound_vars: list[tuple[int, str]] = []      # (position, variable name)
    free: dict[str, int] = {}                   # variable name -> first position
    free_dups: list[tuple[int, int]] = []       # (position, first position of same variable)
    known = [False, False, False]
    for i, term in enumerate(positions):
        if isinstance(term, Variable):
            if term.name in binding_cols:
                bound_vars.append((i, term.name))
                known[i] = True
            elif term.name in free:
                free_dups.append((i, free[term.name]))
            else:
                free[term.name] = i
        else:
            consts.append((i, columnar.term_id(term)))
            known[i] = True

    # The reference dispatches on the first known position: SPO when the
    # subject is resolved, else POS on the predicate, else OSP on the object,
    # else a full scan (which iterates in SPO order).
    primary = 0 if known[0] else 1 if known[1] else 2 if known[2] else None
    index = {0: "spo", 1: "pos", 2: "osp", None: "spo"}[primary]
    arrays = columnar.order(index)

    if primary is None:
        lo = np.zeros(n_bindings, dtype=np.int64)
        hi = np.full(n_bindings, columnar.n_triples, dtype=np.int64)
    else:
        const_primary = next((tid for i, tid in consts if i == primary), None)
        if const_primary is not None:
            key_ids = np.full(n_bindings, const_primary, dtype=np.int64)
        else:
            name = next(name for i, name in bound_vars if i == primary)
            key_ids = binding_cols[name]
        lo, hi = columnar.block_ranges(index, key_ids)

    counts = hi - lo
    total = int(counts.sum())
    rep = np.repeat(np.arange(n_bindings, dtype=np.intp), counts)
    if total:
        cand = lo[rep] + np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
    else:
        cand = np.empty(0, dtype=np.int64)

    mask: np.ndarray | None = None
    for i, term_id in consts:
        if i == primary:
            continue  # equality already enforced by the block range
        step = arrays[i][cand] == term_id
        mask = step if mask is None else mask & step
    for i, name in bound_vars:
        if i == primary:
            continue
        step = arrays[i][cand] == binding_cols[name][rep]
        mask = step if mask is None else mask & step
    for i, first in free_dups:
        step = arrays[i][cand] == arrays[first][cand]
        mask = step if mask is None else mask & step
    if mask is not None:
        rep = rep[mask]
        cand = cand[mask]

    out_cols = {name: col[rep] for name, col in binding_cols.items()}
    for name, i in free.items():  # insertion order = subject, predicate, object
        out_cols[name] = arrays[i][cand]
    return out_cols, int(rep.shape[0])


def _join_encoded(graph: Graph, patterns: Sequence[TriplePattern]) -> tuple[list[Binding], set[str]]:
    """Vectorized join over the interned id columns; bit-identical to the reference."""
    columnar = graph.store.columnar()
    binding_cols: dict[str, np.ndarray] = {}
    n_bindings = 1  # the single empty binding the reference starts from
    remaining = list(patterns)
    bound: set[str] = set()
    while remaining:
        remaining.sort(key=lambda pat: _pattern_selectivity(pat, bound))
        pattern = remaining.pop(0)
        binding_cols, n_bindings = _extend_encoded(columnar, pattern, binding_cols, n_bindings)
        bound.update(pattern.variables())
        if not n_bindings:
            break
    terms = columnar.terms
    names = list(binding_cols)
    if not names:
        return [{} for _ in range(n_bindings)], bound
    columns = [binding_cols[name].tolist() for name in names]
    bindings: list[Binding] = [
        {name: terms[column[row]] for name, column in zip(names, columns)}
        for row in range(n_bindings)
    ]
    return bindings, bound


def select(
    graph: Graph,
    patterns: Sequence[TriplePattern],
    variables: Sequence[str] | None = None,
    where: Callable[[Binding], bool] | None = None,
    distinct: bool = False,
    order_by: str | None = None,
    descending: bool = False,
    limit: int | None = None,
    force_row: bool = False,
) -> list[Binding]:
    """Evaluate a basic graph pattern and return variable bindings.

    Parameters
    ----------
    graph:
        The graph to query.
    patterns:
        Triple patterns; variables shared across patterns express joins.
    variables:
        Names of the variables to keep in the result rows (default: all).
    where:
        Optional predicate applied to each full binding (a SPARQL FILTER).
    distinct, order_by, descending, limit:
        Result modifiers analogous to their SPARQL counterparts.
    force_row:
        Route the join through the binding-at-a-time reference tier instead
        of the vectorized id-column join (``graph._force_row_select = True``
        has the same effect for every query on that graph).
    """
    if not patterns:
        raise LODError("select needs at least one triple pattern")

    if force_row or getattr(graph, "_force_row_select", False):
        bindings, bound = _join_reference(graph, patterns)
    else:
        bindings, bound = _join_encoded(graph, patterns)

    if where is not None:
        bindings = [b for b in bindings if where(b)]

    if variables is not None:
        missing = [v for v in variables if v not in bound]
        if missing:
            raise LODError(f"projected variables never bound by the patterns: {missing}")
        bindings = [{v: b.get(v) for v in variables} for b in bindings]

    if distinct:
        seen: set[tuple] = set()
        unique: list[Binding] = []
        for binding in bindings:
            key = tuple(sorted((k, _sort_key(v)) for k, v in binding.items()))
            if key not in seen:
                seen.add(key)
                unique.append(binding)
        bindings = unique

    if order_by is not None:
        bindings.sort(key=lambda b: _sort_key(b.get(order_by)), reverse=descending)

    if limit is not None:
        bindings = bindings[:limit]
    return bindings


def _sort_key(value: Any) -> tuple:
    """Total order over heterogeneous RDF terms for ORDER BY / DISTINCT."""
    if isinstance(value, Literal):
        inner = value.python_value()
        if isinstance(inner, (int, float)) and not isinstance(inner, bool):
            return (0, float(inner), "")
        return (1, 0.0, str(inner))
    if isinstance(value, IRI):
        return (2, 0.0, value.value)
    if isinstance(value, BNode):
        return (3, 0.0, value.identifier)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (0, float(value), "")
    return (1, 0.0, str(value))


def ask(graph: Graph, patterns: Sequence[TriplePattern], force_row: bool = False) -> bool:
    """Return ``True`` when the basic graph pattern has at least one solution."""
    return bool(select(graph, patterns, limit=1, force_row=force_row))


def count(
    graph: Graph,
    patterns: Sequence[TriplePattern],
    distinct_variable: str | None = None,
    force_row: bool = False,
) -> int:
    """Count solutions (or distinct values of one variable) of a pattern."""
    results = select(graph, patterns, force_row=force_row)
    if distinct_variable is None:
        return len(results)
    return len({_sort_key(r.get(distinct_variable)) for r in results})
