"""Publish datasets, data quality measurements and mined patterns as LOD.

The second half of the OpenBI loop (paper, §1) is *sharing*: "share the new
acquired information as LOD to be reused by anyone".  These helpers convert
the library's native objects into RDF graphs using the Data Cube (``qb``) and
Data Quality Vocabulary (``dqv``) style modelling, plus the reproduction's own
``openbi`` namespace.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from repro.lod.graph import Graph
from repro.lod.terms import IRI, Literal
from repro.lod.vocabulary import DCTERMS, DQV, OPENBI, QB, RDF, RDFS
from repro.tabular.dataset import Dataset, is_missing_value


def _slug(text: str) -> str:
    """Turn free text into an IRI-safe slug."""
    out = "".join(ch if ch.isalnum() else "-" for ch in str(text).lower())
    while "--" in out:
        out = out.replace("--", "-")
    return out.strip("-") or "x"


def publish_dataset(
    dataset: Dataset,
    base_iri: str = "http://openbi.example.org/data/",
    graph: Graph | None = None,
    title: str | None = None,
) -> Graph:
    """Publish a tabular dataset as a ``qb``-style data cube.

    Each row becomes a ``qb:Observation``; each column becomes a component
    property under ``base_iri``.  The dataset resource carries ``dcterms``
    metadata so it can be discovered and reused.
    """
    graph = graph or Graph(f"{base_iri}graph/{_slug(dataset.name)}")
    dataset_iri = IRI(f"{base_iri}dataset/{_slug(dataset.name)}")
    graph.add_resource(
        dataset_iri,
        rdf_type=QB.DataSet,
        label=title or dataset.name,
        properties={DCTERMS.title: Literal(title or dataset.name), DCTERMS.identifier: Literal(dataset.name)},
    )
    component_iris = {}
    for column in dataset.columns:
        component = IRI(f"{base_iri}property/{_slug(column.name)}")
        component_iris[column.name] = component
        graph.add_resource(
            component,
            rdf_type=QB.ComponentProperty,
            label=column.name,
            properties={OPENBI.columnType: Literal(column.ctype), OPENBI.columnRole: Literal(column.role)},
        )
    for index, row in enumerate(dataset.iter_rows()):
        observation = IRI(f"{base_iri}observation/{_slug(dataset.name)}/{index}")
        graph.add(observation, RDF.type, QB.Observation)
        graph.add(observation, QB.dataSet, dataset_iri)
        for name, value in row.items():
            if is_missing_value(value):
                continue
            graph.add(observation, component_iris[name], Literal(value))
    return graph


def publish_quality_profile(
    profile: Any,
    dataset_name: str,
    base_iri: str = "http://openbi.example.org/data/",
    graph: Graph | None = None,
) -> Graph:
    """Publish measured data quality criteria as ``dqv:QualityMeasurement`` resources.

    ``profile`` may be a :class:`repro.quality.profile.DataQualityProfile` (or
    anything exposing ``as_dict()``), or a plain mapping criterion → value.
    """
    measures: Mapping[str, float]
    as_dict = getattr(profile, "as_dict", None)
    measures = as_dict() if callable(as_dict) else dict(profile)
    graph = graph or Graph(f"{base_iri}graph/quality-{_slug(dataset_name)}")
    dataset_iri = IRI(f"{base_iri}dataset/{_slug(dataset_name)}")
    for criterion, value in measures.items():
        metric_iri = IRI(f"{base_iri}metric/{_slug(criterion)}")
        measurement_iri = IRI(f"{base_iri}measurement/{_slug(dataset_name)}/{_slug(criterion)}")
        graph.add_resource(metric_iri, rdf_type=DQV.Metric, label=str(criterion))
        graph.add(measurement_iri, RDF.type, DQV.QualityMeasurement)
        graph.add(measurement_iri, DQV.computedOn, dataset_iri)
        graph.add(measurement_iri, DQV.isMeasurementOf, metric_iri)
        graph.add(measurement_iri, DQV.value, Literal(float(value)))
    return graph


def publish_patterns(
    patterns: Sequence[Mapping[str, Any]],
    dataset_name: str,
    algorithm: str,
    base_iri: str = "http://openbi.example.org/data/",
    graph: Graph | None = None,
) -> Graph:
    """Publish mined knowledge patterns (rules, clusters, model summaries) as LOD.

    Each pattern is a mapping of descriptive fields (e.g. ``antecedent``,
    ``consequent``, ``support``, ``confidence`` for association rules) and is
    published as an ``openbi:Pattern`` resource linked to the source dataset
    and the algorithm that produced it.
    """
    graph = graph or Graph(f"{base_iri}graph/patterns-{_slug(dataset_name)}")
    dataset_iri = IRI(f"{base_iri}dataset/{_slug(dataset_name)}")
    algorithm_iri = IRI(f"{base_iri}algorithm/{_slug(algorithm)}")
    graph.add_resource(algorithm_iri, rdf_type=OPENBI.Algorithm, label=algorithm)
    for index, pattern in enumerate(patterns):
        pattern_iri = IRI(f"{base_iri}pattern/{_slug(dataset_name)}/{index}")
        graph.add(pattern_iri, RDF.type, OPENBI.Pattern)
        graph.add(pattern_iri, OPENBI.minedFrom, dataset_iri)
        graph.add(pattern_iri, OPENBI.producedBy, algorithm_iri)
        for key, value in pattern.items():
            if value is None:
                continue
            graph.add(pattern_iri, OPENBI[f"pattern_{_slug(key).replace('-', '_')}"], Literal(value))
    return graph


def publish_recommendation(
    dataset_name: str,
    algorithm: str,
    score: float,
    rationale: str,
    base_iri: str = "http://openbi.example.org/data/",
    graph: Graph | None = None,
) -> Graph:
    """Publish an advisor recommendation ("the best option is ALGORITHM X") as LOD."""
    graph = graph or Graph(f"{base_iri}graph/advice-{_slug(dataset_name)}")
    dataset_iri = IRI(f"{base_iri}dataset/{_slug(dataset_name)}")
    recommendation_iri = IRI(f"{base_iri}recommendation/{_slug(dataset_name)}/{_slug(algorithm)}")
    algorithm_iri = IRI(f"{base_iri}algorithm/{_slug(algorithm)}")
    graph.add_resource(algorithm_iri, rdf_type=OPENBI.Algorithm, label=algorithm)
    graph.add(recommendation_iri, RDF.type, OPENBI.Recommendation)
    graph.add(recommendation_iri, OPENBI.recommendsAlgorithm, algorithm_iri)
    graph.add(recommendation_iri, OPENBI.forDataset, dataset_iri)
    graph.add(recommendation_iri, OPENBI.expectedScore, Literal(float(score)))
    graph.add(recommendation_iri, RDFS.comment, Literal(rationale))
    return graph
