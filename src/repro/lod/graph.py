"""A named LOD graph: a triple store plus namespace bindings and helpers."""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

from repro.lod.terms import IRI, BNode, Literal, Object, Subject, Triple, coerce_object
from repro.lod.triples import TripleStore
from repro.lod.vocabulary import DEFAULT_PREFIXES, Namespace, RDF, RDFS

#: Hoisted structural IRIs: every ``RDF.type`` / ``RDFS.label`` attribute
#: access constructs and validates a fresh IRI, which adds up on per-subject
#: helpers like :meth:`Graph.label`.
_RDF_TYPE = RDF.type
_RDFS_LABEL = RDFS.label


class Graph:
    """A Linked Open Data graph.

    Wraps a :class:`~repro.lod.triples.TripleStore` with:

    * a graph identifier (IRI string) so provenance can be tracked when
      multiple open data sources are integrated;
    * namespace prefix bindings used during Turtle serialisation;
    * convenience methods to describe resources (`add_resource`) and read
      back property values.

    Setting ``graph._force_row_select = True`` routes every
    :mod:`repro.lod.query` evaluation on this graph through the
    binding-at-a-time reference tier instead of the vectorized id-column
    join (the LOD counterpart of ``Cube._force_row_olap``).
    """

    #: Escape hatch: force the reference tier for queries on this graph.
    _force_row_select = False

    def __init__(self, identifier: str = "http://openbi.example.org/graph/default") -> None:
        """Create an empty graph named by ``identifier``."""
        self.identifier = identifier
        self.store = TripleStore()
        self._prefixes: dict[str, Namespace] = dict(DEFAULT_PREFIXES)
        self._bnode_counter = 0

    # -- namespaces ------------------------------------------------------------

    def bind(self, prefix: str, namespace: Namespace | str) -> None:
        """Bind a prefix to a namespace for serialisation."""
        if isinstance(namespace, str):
            namespace = Namespace(namespace)
        self._prefixes[prefix] = namespace

    @property
    def prefixes(self) -> dict[str, Namespace]:
        """A copy of the prefix → namespace bindings."""
        return dict(self._prefixes)

    # -- mutation ----------------------------------------------------------------

    def add(self, subject: Subject, predicate: IRI, obj: Any) -> Triple:
        """Add one triple; ``obj`` is coerced to an RDF term."""
        triple = Triple(subject, predicate, coerce_object(obj))
        self.store.add(triple)
        return triple

    def add_triple(self, triple: Triple) -> None:
        """Add an already-constructed triple."""
        self.store.add(triple)

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; return how many were new."""
        return self.store.update(triples)

    def remove(self, triple: Triple) -> bool:
        """Remove a triple if present; return whether something was removed."""
        return self.store.discard(triple)

    def new_bnode(self) -> BNode:
        """Return a fresh blank node unique within this graph."""
        self._bnode_counter += 1
        return BNode(f"b{self._bnode_counter}")

    def add_resource(
        self,
        subject: Subject,
        rdf_type: IRI | None = None,
        properties: Mapping[IRI, Any] | None = None,
        label: str | None = None,
    ) -> Subject:
        """Describe a resource: type, label and a set of property values.

        Property values may be single values or lists of values; each value is
        coerced to an RDF term.
        """
        if rdf_type is not None:
            self.add(subject, _RDF_TYPE, rdf_type)
        if label is not None:
            self.add(subject, _RDFS_LABEL, Literal(label))
        for predicate, value in (properties or {}).items():
            values = value if isinstance(value, (list, tuple, set)) else [value]
            for item in values:
                if item is None:
                    continue
                self.add(subject, predicate, item)
        return subject

    def merge(self, other: "Graph") -> int:
        """Merge another graph's triples (and prefixes) into this one."""
        for prefix, namespace in other.prefixes.items():
            self._prefixes.setdefault(prefix, namespace)
        return self.store.update(iter(other.store))

    # -- read access -----------------------------------------------------------------

    def __len__(self) -> int:
        """Number of triples in the graph."""
        return len(self.store)

    def __iter__(self):
        """Iterate over all triples."""
        return iter(self.store)

    def __contains__(self, triple: Triple) -> bool:
        """Whether the graph holds ``triple``."""
        return triple in self.store

    def triples(self, subject=None, predicate=None, obj=None):
        """Yield matching triples (``None`` positions are wildcards)."""
        return self.store.match(subject, predicate, obj)

    def subjects_of_type(self, rdf_type: IRI) -> list[Subject]:
        """All subjects declared with ``rdf:type rdf_type``."""
        return self.store.subjects(_RDF_TYPE, rdf_type)

    def properties_of(self, subject: Subject) -> dict[IRI, list[Object]]:
        """All (predicate → objects) pairs describing ``subject``."""
        result: dict[IRI, list[Object]] = {}
        for triple in self.store.match(subject, None, None):
            result.setdefault(triple.predicate, []).append(triple.object)
        return result

    def value(self, subject: Subject, predicate: IRI, default=None):
        """One object value for (subject, predicate), unwrapping literals."""
        obj = self.store.value(subject, predicate)
        if obj is None:
            return default
        return obj.python_value() if isinstance(obj, Literal) else obj

    def label(self, subject: Subject) -> str | None:
        """The ``rdfs:label`` of a subject, if any."""
        value = self.value(subject, _RDFS_LABEL)
        return str(value) if value is not None else None

    def types(self) -> dict[IRI, int]:
        """Histogram of rdf:type → number of instances in the graph."""
        counts: dict[IRI, int] = {}
        for triple in self.store.match(None, _RDF_TYPE, None):
            if isinstance(triple.object, IRI):
                counts[triple.object] = counts.get(triple.object, 0) + 1
        return counts

    def predicates_histogram(self) -> dict[IRI, int]:
        """Histogram of predicate → usage count (a proxy for dimensionality)."""
        counts: dict[IRI, int] = {}
        for triple in self.store:
            counts[triple.predicate] = counts.get(triple.predicate, 0) + 1
        return counts

    def copy(self, identifier: str | None = None) -> "Graph":
        """Return an independent copy (optionally under a new identifier)."""
        clone = Graph(identifier or self.identifier)
        clone._prefixes = dict(self._prefixes)
        clone.store = self.store.copy()
        clone._bnode_counter = self._bnode_counter
        return clone

    # -- persistence -----------------------------------------------------------------

    def save(self, path):
        """Write this graph and its columnar snapshot to a binary store file.

        The file (format: ``docs/store-format.md``) captures the interned
        term table, all three index orderings and their block tables, so
        :meth:`open` can memory-map the snapshot back without re-interning.
        Returns the path written.
        """
        from repro.store import save_graph

        return save_graph(self, path)

    @classmethod
    def open(cls, path, force_memory: bool = False, verify: bool = False) -> "Graph":
        """Open a graph store file as zero-copy memory-mapped views.

        The returned graph carries a pre-wired
        :class:`~repro.lod.triples.ColumnarTriples` snapshot, so vectorized
        queries run without any per-triple Python; the reference-tier dict
        indexes replay lazily from the saved arrays in their exact original
        iteration order, keeping every result bit-identical to the graph
        that was saved.  ``force_memory=True`` materialises all arrays into
        memory; ``verify=True`` checksums every array section up front.
        """
        from repro.store import open_graph

        return open_graph(path, force_memory=force_memory, verify=verify)

    def close(self) -> None:
        """Release the memory-mapped store file backing this graph, if any.

        Graphs returned by :meth:`open` keep the store's memory map (and
        its file descriptor) alive; ``close()`` releases both so the
        ``.rps`` file can be replaced and the descriptor returned to the
        OS.  Afterwards the graph — and every zero-copy view sliced from
        its columnar snapshot — must no longer be used.  For in-memory
        graphs this is a no-op.
        """
        store_file = self.__dict__.pop("_store_file", None)
        if store_file is not None:
            store_file.close()
