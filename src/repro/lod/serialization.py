"""N-Triples and Turtle serialisation, plus an N-Triples parser.

Sharing acquired information back "as LOD to be reused by anyone" (paper, §1)
requires a concrete wire format; we implement the two simplest standard ones.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.exceptions import LODError
from repro.lod.graph import Graph
from repro.lod.terms import IRI, BNode, Literal, Object, Subject, Triple
from repro.lod.vocabulary import XSD


# ---------------------------------------------------------------------------
# Writers
# ---------------------------------------------------------------------------

def _typed_literal(literal: Literal) -> Literal:
    """Attach an XSD datatype to plain numeric/boolean literals for round-tripping."""
    if literal.datatype is not None or literal.language is not None:
        return literal
    value = literal.value
    if isinstance(value, bool):
        return Literal(value, datatype=XSD.boolean)
    if isinstance(value, int):
        return Literal(value, datatype=XSD.integer)
    if isinstance(value, float):
        return Literal(value, datatype=XSD.double)
    return literal


def _term_n3(term: Object) -> str:
    """N-Triples form of a term, typing plain literals on the way out."""
    if isinstance(term, Literal):
        return _typed_literal(term).n3()
    return term.n3()


def to_ntriples(graph: Graph, path: str | Path | None = None) -> str:
    """Serialise a graph to N-Triples (one triple per line, sorted for stability)."""
    lines = sorted(
        f"{triple.subject.n3()} {triple.predicate.n3()} {_term_n3(triple.object)} ."
        for triple in graph
    )
    text = "\n".join(lines) + ("\n" if lines else "")
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def _qname(iri: IRI, prefixes) -> str | None:
    """The ``prefix:local`` form of an IRI under the bound prefixes, if any."""
    for prefix, namespace in prefixes.items():
        if iri in namespace:
            local = iri.value[len(namespace.prefix):]
            if local and re.match(r"^[A-Za-z_][\w.-]*$", local):
                return f"{prefix}:{local}"
    return None


def to_turtle(graph: Graph, path: str | Path | None = None) -> str:
    """Serialise a graph to Turtle, grouping triples by subject."""
    prefixes = graph.prefixes
    used_prefixes: set[str] = set()

    def render(term: Object) -> str:
        """Render a term as Turtle, preferring qnames and typed literals."""
        if isinstance(term, IRI):
            qname = _qname(term, prefixes)
            if qname is not None:
                used_prefixes.add(qname.split(":", 1)[0])
                return qname
            return term.n3()
        if isinstance(term, Literal):
            typed = _typed_literal(term)
            if typed.datatype is not None:
                qname = _qname(typed.datatype, prefixes)
                if qname is not None:
                    used_prefixes.add(qname.split(":", 1)[0])
                    escaped = typed.n3().rsplit("^^", 1)[0]
                    return f"{escaped}^^{qname}"
            return typed.n3()
        return term.n3()

    by_subject: dict[Subject, list[Triple]] = {}
    for triple in graph:
        by_subject.setdefault(triple.subject, []).append(triple)

    blocks: list[str] = []
    for subject in sorted(by_subject, key=lambda s: (isinstance(s, BNode), str(s))):
        triples = sorted(by_subject[subject], key=lambda t: (str(t.predicate), str(t.object)))
        subject_text = render(subject) if isinstance(subject, IRI) else subject.n3()
        lines = [f"{subject_text}"]
        for i, triple in enumerate(triples):
            sep = " ;" if i < len(triples) - 1 else " ."
            lines.append(f"    {render(triple.predicate)} {render(triple.object)}{sep}")
        blocks.append("\n".join(lines))

    header_lines = [
        f"@prefix {prefix}: <{prefixes[prefix].prefix}> ."
        for prefix in sorted(used_prefixes)
        if prefix in prefixes
    ]
    text = "\n".join(header_lines) + ("\n\n" if header_lines else "") + "\n\n".join(blocks)
    if blocks:
        text += "\n"
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


# ---------------------------------------------------------------------------
# N-Triples parser
# ---------------------------------------------------------------------------

_NT_IRI = r"<([^>]*)>"
_NT_BNODE = r"_:([A-Za-z0-9_]+)"
_NT_LITERAL = r'"((?:[^"\\]|\\.)*)"(?:@([A-Za-z-]+)|\^\^<([^>]*)>)?'
_NT_LINE = re.compile(
    rf"^\s*(?:{_NT_IRI}|{_NT_BNODE})\s+{_NT_IRI}\s+(?:{_NT_IRI}|{_NT_BNODE}|{_NT_LITERAL})\s*\.\s*$"
)


_NT_ESCAPES = {"t": "\t", "b": "\b", "n": "\n", "r": "\r", "f": "\f", '"': '"', "'": "'", "\\": "\\"}

_NT_ESCAPE_RE = re.compile(r"\\(u[0-9A-Fa-f]{4}|U[0-9A-Fa-f]{8}|.)")


def _decode_escape(match: "re.Match[str]") -> str:
    """Decode one ECHAR (``\\n`` …) or UCHAR (``\\uXXXX``/``\\UXXXXXXXX``) escape."""
    body = match.group(1)
    if body[0] in "uU" and len(body) > 1:
        code_point = int(body[1:], 16)
        if code_point > 0x10FFFF:
            raise LODError(f"code point out of range in escape {match.group(0)!r}")
        return chr(code_point)
    return _NT_ESCAPES.get(body, "\\" + body)  # unknown escapes pass through verbatim


def _unescape(text: str) -> str:
    """Undo N-Triples string escaping.

    Decoded in one left-to-right pass: sequential ``str.replace`` calls
    corrupt strings whose *decoded* form contains a backslash followed by an
    escape letter (e.g. the two characters ``\\n`` round-trip through the
    writer as ``\\\\n``, which a naive ``replace("\\\\n", newline)`` then
    turns into a real newline).  ``\\uXXXX``/``\\UXXXXXXXX`` escapes — the
    default non-ASCII encoding of mainstream serializers — decode to their
    code points.
    """
    return _NT_ESCAPE_RE.sub(_decode_escape, text)


def _parse_literal(lexical: str, language: str | None, datatype: str | None) -> Literal:
    """Build a literal from its lexical form, decoding known XSD datatypes."""
    text = _unescape(lexical)
    if language:
        return Literal(text, language=language)
    if datatype:
        dt = IRI(datatype)
        if dt == XSD.integer or dt == XSD.int or dt == XSD.long:
            return Literal(int(text), datatype=dt)
        if dt == XSD.double or dt == XSD.float or dt == XSD.decimal:
            return Literal(float(text), datatype=dt)
        if dt == XSD.boolean:
            return Literal(text.strip().lower() == "true", datatype=dt)
        return Literal(text, datatype=dt)
    return Literal(text)


def parse_ntriples_line(line: str) -> Triple | None:
    """Parse one N-Triples line; return ``None`` for blank and comment lines.

    This is the shared per-line machinery of the strict :func:`parse_ntriples`
    and the tolerant :func:`repro.recovery.salvage_ntriples` tier.  Raises
    :class:`~repro.exceptions.LODError` on malformed syntax or un-decodable
    terms; messages carry no positional context — the callers attach the line
    number and the offending text.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    match = _NT_LINE.match(stripped)
    if not match:
        raise LODError("line does not match the N-Triples grammar")
    (s_iri, s_bnode, p_iri, o_iri, o_bnode, o_lex, o_lang, o_dt) = match.groups()
    try:
        subject: Subject = IRI(s_iri) if s_iri else BNode(s_bnode)
        predicate = IRI(p_iri)
        if o_iri:
            obj: Object = IRI(o_iri)
        elif o_bnode:
            obj = BNode(o_bnode)
        else:
            obj = _parse_literal(o_lex or "", o_lang, o_dt)
    except (ValueError, OverflowError) as exc:
        # int()/float() on a literal whose lexical form disagrees with its
        # declared XSD datatype, e.g. "abc"^^xsd:integer.
        raise LODError(f"literal does not match its datatype: {exc}") from None
    return Triple(subject, predicate, obj)


def parse_ntriples(source: str | Path, identifier: str | None = None) -> Graph:
    """Parse N-Triples content (string or path) into a :class:`Graph`.

    Parsing is strict: the first malformed line raises an
    :class:`~repro.exceptions.LODError` naming the line number and quoting the
    offending line, so failures on multi-thousand-line dumps are actionable.
    Use :func:`repro.recovery.salvage_ntriples` to recover the parseable lines
    of a partially corrupt file instead.
    """
    if isinstance(source, Path) or (isinstance(source, str) and "\n" not in source and source.endswith(".nt")):
        text = Path(source).read_text(encoding="utf-8")
    else:
        text = str(source)
    graph = Graph(identifier or "http://openbi.example.org/graph/parsed")
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        try:
            triple = parse_ntriples_line(raw_line)
        except LODError as exc:
            raise LODError(
                f"invalid N-Triples at line {line_number}: {exc} — offending line: {raw_line!r}"
            ) from None
        if triple is not None:
            graph.add_triple(triple)
    return graph
