"""RDF terms: IRIs, literals, blank nodes and triples.

The terms are immutable value objects so they can be used as dictionary keys
in the triple store indexes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Union

from repro.exceptions import LODError

_IRI_RE = re.compile(r"^[A-Za-z][A-Za-z0-9+.-]*:")


@dataclass(frozen=True, slots=True)
class IRI:
    """An absolute IRI (e.g. ``http://example.org/resource/1``)."""

    value: str

    def __post_init__(self) -> None:
        """Reject relative or empty IRIs."""
        if not self.value or not _IRI_RE.match(self.value):
            raise LODError(f"not an absolute IRI: {self.value!r}")

    def __str__(self) -> str:
        """The raw IRI string."""
        return self.value

    def n3(self) -> str:
        """N-Triples / Turtle representation."""
        return f"<{self.value}>"

    def local_name(self) -> str:
        """The fragment or last path segment, used for readable column names."""
        for sep in ("#", "/", ":"):
            if sep in self.value:
                tail = self.value.rsplit(sep, 1)[1]
                if tail:
                    return tail
        return self.value


@dataclass(frozen=True, slots=True)
class BNode:
    """A blank node with a local identifier."""

    identifier: str

    def __post_init__(self) -> None:
        """Reject empty or non-alphanumeric blank node identifiers."""
        if not self.identifier or not re.match(r"^[A-Za-z0-9_]+$", self.identifier):
            raise LODError(f"invalid blank node identifier: {self.identifier!r}")

    def __str__(self) -> str:
        """The ``_:identifier`` form."""
        return f"_:{self.identifier}"

    def n3(self) -> str:
        """N-Triples / Turtle representation (same as ``str``)."""
        return f"_:{self.identifier}"


@dataclass(frozen=True, slots=True)
class Literal:
    """An RDF literal with an optional datatype IRI or language tag.

    ``value`` is kept as the native Python value (str, int, float, bool); the
    lexical form and datatype are derived from it when not given explicitly.
    """

    value: Any
    datatype: IRI | None = None
    language: str | None = None

    def __post_init__(self) -> None:
        """Reject literals carrying both a language tag and a datatype."""
        if self.language is not None and self.datatype is not None:
            raise LODError("a literal cannot have both a language tag and a datatype")

    @property
    def lexical(self) -> str:
        """The lexical (string) form of the literal."""
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, float) and self.value.is_integer():
            return str(self.value)
        return str(self.value)

    def python_value(self) -> Any:
        """Return the native Python value."""
        return self.value

    def n3(self) -> str:
        """N-Triples / Turtle representation with escaping and tags."""
        escaped = (
            self.lexical.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n").replace("\r", "\\r")
        )
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype:
            return f'"{escaped}"^^{self.datatype.n3()}'
        return f'"{escaped}"'

    def __str__(self) -> str:
        """The lexical form."""
        return self.lexical


#: A subject may be an IRI or blank node; an object may additionally be a literal.
Subject = Union[IRI, BNode]
Predicate = IRI
Object = Union[IRI, BNode, Literal]


@dataclass(frozen=True, slots=True)
class Triple:
    """An RDF triple (subject, predicate, object)."""

    subject: Subject
    predicate: Predicate
    object: Object

    def __post_init__(self) -> None:
        """Validate the term types of the three positions."""
        if not isinstance(self.subject, (IRI, BNode)):
            raise LODError(f"triple subject must be an IRI or BNode, got {type(self.subject).__name__}")
        if not isinstance(self.predicate, IRI):
            raise LODError(f"triple predicate must be an IRI, got {type(self.predicate).__name__}")
        if not isinstance(self.object, (IRI, BNode, Literal)):
            raise LODError(f"triple object must be an IRI, BNode or Literal, got {type(self.object).__name__}")

    def n3(self) -> str:
        """The triple as one N-Triples line."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def as_tuple(self) -> tuple[Subject, Predicate, Object]:
        """The triple as a plain ``(subject, predicate, object)`` tuple."""
        return (self.subject, self.predicate, self.object)


def coerce_object(value: Any) -> Object:
    """Convert a Python value to an RDF object term.

    IRIs/BNodes/Literals pass through; strings that look like absolute IRIs
    become :class:`IRI`; everything else becomes a plain :class:`Literal`.
    """
    if isinstance(value, (IRI, BNode, Literal)):
        return value
    if isinstance(value, str) and _IRI_RE.match(value) and " " not in value:
        return IRI(value)
    return Literal(value)
