"""Indexed in-memory triple store with a lazily interned columnar tier.

The store maintains three hash indexes (SPO, POS, OSP) so that any triple
pattern with at least one bound position is answered without a full scan.
This is the storage layer underneath :class:`repro.lod.graph.Graph`.

On top of the dict indexes — which remain the reference tier — the store can
materialise a :class:`ColumnarTriples` snapshot: every distinct RDF term is
interned into an ``int64`` id and the triples become three parallel id
arrays, laid out in the exact iteration order of each dict index.  The
vectorized query join (:mod:`repro.lod.query`) and the direct-to-encoded
tabulation (:mod:`repro.lod.tabulate`) run over these arrays.  The snapshot
is built lazily on first use and invalidated whenever a mutation actually
changes the store, so reads between mutations share one build.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.exceptions import LODError
from repro.lod.terms import Object, Predicate, Subject, Triple


class ColumnarTriples:
    """An interned, columnar snapshot of one :class:`TripleStore` state.

    ``terms`` lists every distinct term in first-interned order and
    ``term_ids`` inverts it; a term's id is its position in ``terms``.  For
    each dict index of the store (``"spo"``, ``"pos"``, ``"osp"``) the
    snapshot holds three parallel ``int64`` arrays ``(s_ids, p_ids, o_ids)``
    whose row order is **exactly** the iteration order of that index's nested
    dicts.  This is what lets the vectorized query join reproduce
    the row order of the reference binding-at-a-time matcher bit for bit:
    filtering the arrays of the index the reference would have consulted
    yields matches in the same sequence the reference yields them.

    Within each ordering the rows sharing the primary key (subject for SPO,
    predicate for POS, object for OSP) are contiguous, so per-key candidate
    ranges are resolved with one :func:`numpy.searchsorted` over the block
    table instead of per-binding dict lookups.

    The SPO ordering (which also interns the terms) is built eagerly; the
    POS and OSP orderings are materialised on first use, so consumers that
    only scan in SPO order (tabulation, full scans) never pay for them.
    The owning store drops its cached snapshot on every mutation, so code
    that re-fetches ``store.columnar()`` per operation (as the query engine
    and tabulation do) always sees fresh data; a snapshot *held across* a
    mutation is stale, and materialising one of its remaining orderings
    then raises :class:`~repro.exceptions.LODError` rather than silently
    mixing the frozen term table with the mutated dict indexes.  Callers
    must not modify the returned arrays.
    """

    __slots__ = ("terms", "term_ids", "_store", "_orders", "_blocks")

    #: Which of the three id columns is the contiguous primary key per ordering.
    _PRIMARY = {"spo": 0, "pos": 1, "osp": 2}

    def __init__(self, store: "TripleStore") -> None:
        """Intern every term of ``store`` and lay its triples out columnar."""
        term_ids: dict[Object, int] = {}
        s_col: list[int] = []
        p_col: list[int] = []
        o_col: list[int] = []
        for s, by_predicate in store._spo.items():
            s_code = term_ids.setdefault(s, len(term_ids))
            for p, objects in by_predicate.items():
                p_code = term_ids.setdefault(p, len(term_ids))
                o_codes = [term_ids.setdefault(o, len(term_ids)) for o in objects]
                s_col += [s_code] * len(o_codes)
                p_col += [p_code] * len(o_codes)
                o_col += o_codes
        spo = tuple(np.asarray(col, dtype=np.int64) for col in (s_col, p_col, o_col))

        self.terms = list(term_ids)
        self.term_ids = term_ids
        self._store = store
        self._orders: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = {"spo": spo}
        self._blocks: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    @property
    def n_triples(self) -> int:
        """Number of triples in the snapshot."""
        return int(self._orders["spo"][0].shape[0])

    def order(self, index: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(s_ids, p_ids, o_ids)`` in the iteration order of dict index ``index``."""
        cached = self._orders.get(index)
        if cached is None:
            cached = self._build_order(index)
            self._orders[index] = cached
        return cached

    def _build_order(self, index: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Materialise the POS or OSP ordering from the store's dict indexes."""
        if self._store._columnar is not self:
            raise LODError(
                "stale ColumnarTriples snapshot: the store was mutated after this "
                "snapshot was taken; call store.columnar() again for a fresh one"
            )
        term_ids = self.term_ids
        s_col: list[int] = []
        p_col: list[int] = []
        o_col: list[int] = []
        if index == "pos":
            for p, by_object in self._store._pos.items():
                p_code = term_ids[p]
                for o, subjects in by_object.items():
                    s_codes = [term_ids[s] for s in subjects]
                    s_col += s_codes
                    p_col += [p_code] * len(s_codes)
                    o_col += [term_ids[o]] * len(s_codes)
        elif index == "osp":
            for o, by_subject in self._store._osp.items():
                o_code = term_ids[o]
                for s, predicates in by_subject.items():
                    p_codes = [term_ids[p] for p in predicates]
                    s_col += [term_ids[s]] * len(p_codes)
                    p_col += p_codes
                    o_col += [o_code] * len(p_codes)
        else:
            raise KeyError(index)
        return tuple(np.asarray(col, dtype=np.int64) for col in (s_col, p_col, o_col))

    def term_id(self, term) -> int:
        """The interned id of ``term``, or ``-1`` when it is not in the store."""
        return self.term_ids.get(term, -1)

    def _extend(self, new_subjects: Iterable[Subject]) -> None:
        """Append freshly-added subjects' SPO rows to this snapshot in place.

        Called by :meth:`TripleStore.append` after it has inserted triples
        whose subjects were all new to the store: the fresh columnar build
        would walk the old subjects first (producing exactly the rows this
        snapshot already holds) and then the new subjects in first-add order,
        so extending the term table and the SPO arrays by just the new
        subjects' blocks is bit-identical to rebuilding — in O(new rows).
        The SPO block table gains the new subjects' runs and is re-sorted;
        the POS and OSP orderings cannot be extended (their buckets grow in
        the middle of the array), so they are dropped and lazily rebuilt
        from the mutated dict indexes on next use.
        """
        term_ids = self.term_ids
        terms = self.terms

        def intern(term) -> int:
            code = term_ids.get(term)
            if code is None:
                code = len(term_ids)
                term_ids[term] = code
                terms.append(term)
            return code

        s_col: list[int] = []
        p_col: list[int] = []
        o_col: list[int] = []
        for s in new_subjects:
            by_predicate = self._store._spo.get(s)
            if not by_predicate:
                continue
            s_code = intern(s)
            for p, objects in by_predicate.items():
                p_code = intern(p)
                o_codes = [intern(o) for o in objects]
                s_col += [s_code] * len(o_codes)
                p_col += [p_code] * len(o_codes)
                o_col += o_codes
        spo_blocks = self._blocks.get("spo")
        self._orders.pop("pos", None)
        self._orders.pop("osp", None)
        self._blocks = {}
        if not s_col:
            return
        old_s, old_p, old_o = self._orders["spo"]
        base_len = int(old_s.shape[0])
        added = tuple(np.asarray(col, dtype=np.int64) for col in (s_col, p_col, o_col))
        self._orders["spo"] = tuple(
            np.concatenate([old, new]) for old, new in zip((old_s, old_p, old_o), added)
        )
        if spo_blocks is not None:
            keys, starts, ends = spo_blocks
            primary = added[0]
            boundaries = np.flatnonzero(primary[1:] != primary[:-1]) + 1
            new_starts = np.concatenate(([0], boundaries)) + base_len
            new_ends = np.concatenate((boundaries, [primary.size])) + base_len
            new_keys = primary[new_starts - base_len]
            keys = np.concatenate([keys, new_keys])
            starts = np.concatenate([starts, new_starts])
            ends = np.concatenate([ends, new_ends])
            by_key = np.argsort(keys)  # primary runs are unique per key
            self._blocks["spo"] = (keys[by_key], starts[by_key], ends[by_key])

    def _block_table(self, index: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(keys, starts, ends)`` of the primary-key runs, sorted by key id."""
        cached = self._blocks.get(index)
        if cached is None:
            primary = self._orders[index][self._PRIMARY[index]]
            if primary.size == 0:
                empty = np.empty(0, dtype=np.int64)
                cached = (empty, empty, empty)
            else:
                boundaries = np.flatnonzero(primary[1:] != primary[:-1]) + 1
                starts = np.concatenate(([0], boundaries))
                ends = np.concatenate((boundaries, [primary.size]))
                keys = primary[starts]
                by_key = np.argsort(keys)  # primary runs are unique per key
                cached = (keys[by_key], starts[by_key], ends[by_key])
            self._blocks[index] = cached
        return cached

    def block_ranges(self, index: str, key_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-key ``(lo, hi)`` candidate ranges in the ``index`` ordering.

        Keys absent from the primary column (including ``-1`` for terms not in
        the store) resolve to the empty range ``(0, 0)``.
        """
        keys, starts, ends = self._block_table(index)
        key_ids = np.asarray(key_ids, dtype=np.int64)
        if keys.size == 0:
            zeros = np.zeros(key_ids.shape, dtype=np.int64)
            return zeros, zeros.copy()
        found_at = np.minimum(np.searchsorted(keys, key_ids), keys.size - 1)
        found = keys[found_at] == key_ids
        return np.where(found, starts[found_at], 0), np.where(found, ends[found_at], 0)


class TripleStore:
    """A set of triples with SPO / POS / OSP indexes.

    The store behaves like a set: adding the same triple twice keeps one copy.
    Every level of the three indexes is an insertion-ordered dict (the leaves
    are ``dict[X, None]``), so iteration order — and therefore the row order
    of every reference-tier scan and of the columnar snapshot built from it —
    is a deterministic function of the store's mutation history.  That
    determinism is what lets the on-disk store (:mod:`repro.store`) replay a
    saved snapshot's arrays back into identical dict indexes on reopen.
    """

    def __init__(self, triples: Iterable[Triple] | None = None) -> None:
        """Create a store, optionally filled from an iterable of triples."""
        self._spo: dict[Subject, dict[Predicate, dict[Object, None]]] = {}
        self._pos: dict[Predicate, dict[Object, dict[Subject, None]]] = {}
        self._osp: dict[Object, dict[Subject, dict[Predicate, None]]] = {}
        self._size = 0
        self._columnar: ColumnarTriples | None = None
        if triples:
            for triple in triples:
                self.add(triple)

    # -- mutation ------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Add a triple; return ``True`` if it was not present before."""
        if not isinstance(triple, Triple):
            raise LODError("TripleStore.add expects a Triple")
        s, p, o = triple.as_tuple()
        bucket = self._spo.setdefault(s, {}).setdefault(p, {})
        if o in bucket:
            return False
        bucket[o] = None
        self._pos.setdefault(p, {}).setdefault(o, {})[s] = None
        self._osp.setdefault(o, {}).setdefault(s, {})[p] = None
        self._size += 1
        self._columnar = None
        return True

    def discard(self, triple: Triple) -> bool:
        """Remove a triple if present; return ``True`` when something was removed."""
        s, p, o = triple.as_tuple()
        bucket = self._spo.get(s, {}).get(p)
        if not bucket or o not in bucket:
            return False
        del bucket[o]
        if not bucket:
            del self._spo[s][p]
            if not self._spo[s]:
                del self._spo[s]
        del self._pos[p][o][s]
        if not self._pos[p][o]:
            del self._pos[p][o]
            if not self._pos[p]:
                del self._pos[p]
        del self._osp[o][s][p]
        if not self._osp[o][s]:
            del self._osp[o][s]
            if not self._osp[o]:
                del self._osp[o]
        self._size -= 1
        self._columnar = None
        return True

    def update(self, triples: Iterable[Triple]) -> int:
        """Add many triples; return how many were new."""
        return sum(1 for t in triples if self.add(t))

    def append(self, triples: Iterable[Triple], _force_rebuild: bool = False) -> int:
        """Add many triples, extending the columnar snapshot when possible.

        Behaves exactly like :meth:`update` (same dict-index mutations, same
        return value), but when a columnar snapshot is already materialised
        and every incoming triple's subject is new to the store, the snapshot
        is *extended* in place — new terms interned at the end of the term
        table, the new subjects' rows appended to the SPO arrays, the SPO
        block table repaired — instead of being dropped and rebuilt from
        scratch on next use.  The extended snapshot is bit-identical to a
        fresh :class:`ColumnarTriples` build of the mutated store.

        When any subject already exists (its SPO rows would have to grow in
        the middle of the array), when no snapshot is materialised, or when
        ``_force_rebuild`` pins the reference behaviour, the call falls back
        to :meth:`update` and the snapshot is rebuilt lazily as usual.
        """
        triples = list(triples)
        for triple in triples:
            if not isinstance(triple, Triple):
                raise LODError("TripleStore.append expects Triples")
        snapshot = self._columnar
        if (
            _force_rebuild
            or snapshot is None
            or any(t.subject in self._spo for t in triples)
        ):
            return self.update(triples)
        new_subjects = list(dict.fromkeys(t.subject for t in triples))
        added = sum(1 for t in triples if self.add(t))  # clears self._columnar
        snapshot._extend(new_subjects)
        self._columnar = snapshot
        return added

    # -- inspection ------------------------------------------------------------

    def __len__(self) -> int:
        """Number of stored triples."""
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        """Whether the store holds ``triple``."""
        s, p, o = triple.as_tuple()
        return o in self._spo.get(s, {}).get(p, ())

    def __iter__(self) -> Iterator[Triple]:
        """Iterate over all triples in SPO index order."""
        for s, by_predicate in self._spo.items():
            for p, objects in by_predicate.items():
                for o in objects:
                    yield Triple(s, p, o)

    def match(
        self,
        subject: Subject | None = None,
        predicate: Predicate | None = None,
        object: Object | None = None,
    ) -> Iterator[Triple]:
        """Yield every triple matching the pattern; ``None`` is a wildcard.

        The most selective index available for the bound positions is used.
        """
        s, p, o = subject, predicate, object
        if s is not None:
            by_predicate = self._spo.get(s, {})
            predicates = [p] if p is not None else list(by_predicate)
            for pred in predicates:
                for obj in by_predicate.get(pred, ()):
                    if o is None or obj == o:
                        yield Triple(s, pred, obj)
            return
        if p is not None:
            by_object = self._pos.get(p, {})
            objects = [o] if o is not None else list(by_object)
            for obj in objects:
                for subj in by_object.get(obj, ()):
                    yield Triple(subj, p, obj)
            return
        if o is not None:
            by_subject = self._osp.get(o, {})
            for subj, predicates in by_subject.items():
                for pred in predicates:
                    yield Triple(subj, pred, o)
            return
        yield from iter(self)

    def subjects(self, predicate: Predicate | None = None, object: Object | None = None) -> list[Subject]:
        """Distinct subjects of triples matching the (predicate, object) pattern."""
        if predicate is not None and object is not None:
            # Fast path: the POS bucket lists exactly these subjects, in the
            # same insertion order the match() scan would visit them.
            return list(self._pos.get(predicate, {}).get(object, ()))
        seen: dict[Subject, None] = {}
        for triple in self.match(None, predicate, object):
            seen.setdefault(triple.subject, None)
        return list(seen)

    def predicates(self, subject: Subject | None = None) -> list[Predicate]:
        """Distinct predicates used (optionally restricted to one subject)."""
        if subject is not None:
            # Fast path: the SPO bucket's keys are the distinct predicates in
            # match() order, without materialising a Triple per cell.
            return list(self._spo.get(subject, ()))
        seen: dict[Predicate, None] = {}
        for triple in self.match(subject, None, None):
            seen.setdefault(triple.predicate, None)
        return list(seen)

    def objects(self, subject: Subject | None = None, predicate: Predicate | None = None) -> list[Object]:
        """Distinct objects of triples matching the (subject, predicate) pattern."""
        if subject is not None and predicate is not None:
            # Fast path: the SPO bucket holds exactly these objects, in the
            # same insertion order the match() scan would yield them.
            return list(self._spo.get(subject, {}).get(predicate, ()))
        seen: dict[Object, None] = {}
        for triple in self.match(subject, predicate, None):
            seen.setdefault(triple.object, None)
        return list(seen)

    def value(self, subject: Subject, predicate: Predicate, default=None):
        """Return one object for (subject, predicate), or ``default`` when absent."""
        for obj in self._spo.get(subject, {}).get(predicate, ()):
            return obj
        return default

    def predicate_in_use(self, predicate: Predicate) -> bool:
        """Whether any triple uses ``predicate`` (one dict probe, no scan)."""
        return predicate in self._pos

    def columnar(self) -> ColumnarTriples:
        """The interned columnar snapshot of the current store state.

        Built lazily on first use and cached until the next mutation; see
        :class:`ColumnarTriples` for the layout guarantees.
        """
        if self._columnar is None:
            self._columnar = ColumnarTriples(self)
        return self._columnar

    def copy(self) -> "TripleStore":
        """Return an independent store holding the same triples."""
        return TripleStore(iter(self))
