"""Indexed in-memory triple store.

The store maintains three hash indexes (SPO, POS, OSP) so that any triple
pattern with at least one bound position is answered without a full scan.
This is the storage layer underneath :class:`repro.lod.graph.Graph`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.exceptions import LODError
from repro.lod.terms import Object, Predicate, Subject, Triple


class TripleStore:
    """A set of triples with SPO / POS / OSP indexes.

    The store behaves like a set: adding the same triple twice keeps one copy.
    """

    def __init__(self, triples: Iterable[Triple] | None = None) -> None:
        self._spo: dict[Subject, dict[Predicate, set[Object]]] = {}
        self._pos: dict[Predicate, dict[Object, set[Subject]]] = {}
        self._osp: dict[Object, dict[Subject, set[Predicate]]] = {}
        self._size = 0
        if triples:
            for triple in triples:
                self.add(triple)

    # -- mutation ------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Add a triple; return ``True`` if it was not present before."""
        if not isinstance(triple, Triple):
            raise LODError("TripleStore.add expects a Triple")
        s, p, o = triple.as_tuple()
        bucket = self._spo.setdefault(s, {}).setdefault(p, set())
        if o in bucket:
            return False
        bucket.add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self._size += 1
        return True

    def discard(self, triple: Triple) -> bool:
        """Remove a triple if present; return ``True`` when something was removed."""
        s, p, o = triple.as_tuple()
        bucket = self._spo.get(s, {}).get(p)
        if not bucket or o not in bucket:
            return False
        bucket.discard(o)
        if not bucket:
            del self._spo[s][p]
            if not self._spo[s]:
                del self._spo[s]
        self._pos[p][o].discard(s)
        if not self._pos[p][o]:
            del self._pos[p][o]
            if not self._pos[p]:
                del self._pos[p]
        self._osp[o][s].discard(p)
        if not self._osp[o][s]:
            del self._osp[o][s]
            if not self._osp[o]:
                del self._osp[o]
        self._size -= 1
        return True

    def update(self, triples: Iterable[Triple]) -> int:
        """Add many triples; return how many were new."""
        return sum(1 for t in triples if self.add(t))

    # -- inspection ------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        s, p, o = triple.as_tuple()
        return o in self._spo.get(s, {}).get(p, set())

    def __iter__(self) -> Iterator[Triple]:
        for s, by_predicate in self._spo.items():
            for p, objects in by_predicate.items():
                for o in objects:
                    yield Triple(s, p, o)

    def match(
        self,
        subject: Subject | None = None,
        predicate: Predicate | None = None,
        object: Object | None = None,
    ) -> Iterator[Triple]:
        """Yield every triple matching the pattern; ``None`` is a wildcard.

        The most selective index available for the bound positions is used.
        """
        s, p, o = subject, predicate, object
        if s is not None:
            by_predicate = self._spo.get(s, {})
            predicates = [p] if p is not None else list(by_predicate)
            for pred in predicates:
                for obj in by_predicate.get(pred, set()):
                    if o is None or obj == o:
                        yield Triple(s, pred, obj)
            return
        if p is not None:
            by_object = self._pos.get(p, {})
            objects = [o] if o is not None else list(by_object)
            for obj in objects:
                for subj in by_object.get(obj, set()):
                    yield Triple(subj, p, obj)
            return
        if o is not None:
            by_subject = self._osp.get(o, {})
            for subj, predicates in by_subject.items():
                for pred in predicates:
                    yield Triple(subj, pred, o)
            return
        yield from iter(self)

    def subjects(self, predicate: Predicate | None = None, object: Object | None = None) -> list[Subject]:
        """Distinct subjects of triples matching the (predicate, object) pattern."""
        seen: dict[Subject, None] = {}
        for triple in self.match(None, predicate, object):
            seen.setdefault(triple.subject, None)
        return list(seen)

    def predicates(self, subject: Subject | None = None) -> list[Predicate]:
        """Distinct predicates used (optionally restricted to one subject)."""
        seen: dict[Predicate, None] = {}
        for triple in self.match(subject, None, None):
            seen.setdefault(triple.predicate, None)
        return list(seen)

    def objects(self, subject: Subject | None = None, predicate: Predicate | None = None) -> list[Object]:
        """Distinct objects of triples matching the (subject, predicate) pattern."""
        seen: dict[Object, None] = {}
        for triple in self.match(subject, predicate, None):
            seen.setdefault(triple.object, None)
        return list(seen)

    def value(self, subject: Subject, predicate: Predicate, default=None):
        """Return one object for (subject, predicate), or ``default`` when absent."""
        for triple in self.match(subject, predicate, None):
            return triple.object
        return default

    def copy(self) -> "TripleStore":
        return TripleStore(iter(self))
