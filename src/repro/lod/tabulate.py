"""Pivot a LOD graph into a tabular dataset ready for mining.

This is the bridge between the LOD substrate and the KDD pipeline: every
instance of a chosen class becomes a row, every predicate used on those
instances becomes a column.  Because LOD describes entities with many loosely
structured properties, the resulting dataset is naturally *high-dimensional*
and *sparse* — exactly the situation the paper identifies as the hard case for
non-expert data miners (§1).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import LODError
from repro.lod.graph import Graph
from repro.lod.terms import IRI, BNode, Literal, Object
from repro.lod.vocabulary import OWL, RDF, RDFS
from repro.tabular.dataset import ColumnRole, Dataset


def _object_to_cell(obj: Object):
    """Convert an RDF object term to a tabular cell value."""
    if isinstance(obj, Literal):
        return obj.python_value()
    if isinstance(obj, IRI):
        return obj.local_name()
    if isinstance(obj, BNode):
        return str(obj)
    return None


def _column_name(predicate: IRI, graph: Graph) -> str:
    label = graph.label(predicate)
    if label:
        return label.strip().replace(" ", "_").lower()
    return predicate.local_name()


def tabulate_entities(
    graph: Graph,
    rdf_type: IRI,
    properties: Sequence[IRI] | None = None,
    include_subject: bool = True,
    multivalued: str = "first",
    follow_same_as: bool = True,
    min_property_coverage: float = 0.0,
) -> Dataset:
    """Build a :class:`~repro.tabular.dataset.Dataset` from the instances of a class.

    Parameters
    ----------
    graph:
        The LOD graph to pivot.
    rdf_type:
        Class whose instances become rows.
    properties:
        Predicates to use as columns; default is every predicate observed on
        the instances (excluding ``rdf:type`` and ``rdfs:label``).
    include_subject:
        When ``True`` (default), a ``subject`` identifier column is included
        with the :class:`~repro.tabular.dataset.ColumnRole.IDENTIFIER` role.
    multivalued:
        ``"first"`` keeps one value per (row, column); ``"count"`` stores the
        number of values instead.
    follow_same_as:
        When ``True``, properties of ``owl:sameAs``-linked resources are merged
        into the row of the canonical resource (data integration step).
    min_property_coverage:
        Drop auto-discovered property columns present on fewer than this
        fraction of rows (mitigates extreme sparsity); explicit ``properties``
        are never dropped.
    """
    if multivalued not in ("first", "count"):
        raise LODError(f"unknown multivalued policy {multivalued!r}")
    subjects = graph.subjects_of_type(rdf_type)
    if not subjects:
        raise LODError(f"no instances of {rdf_type} in the graph")

    # Merge owl:sameAs equivalents into their canonical (first-listed) subject.
    merged_from: dict = {s: [s] for s in subjects}
    if follow_same_as:
        canonical = set(subjects)
        for subject in subjects:
            for obj in graph.store.objects(subject, OWL.sameAs):
                if isinstance(obj, (IRI, BNode)) and obj not in canonical:
                    merged_from[subject].append(obj)

    explicit = properties is not None
    if properties is None:
        discovered: dict[IRI, int] = {}
        for subject in subjects:
            for source in merged_from[subject]:
                for predicate in graph.store.predicates(source):
                    if predicate in (RDF.type, RDFS.label, OWL.sameAs):
                        continue
                    discovered[predicate] = discovered.get(predicate, 0) + 1
        properties = [
            p
            for p, covered in sorted(discovered.items(), key=lambda kv: (-kv[1], str(kv[0])))
            if explicit or covered / len(subjects) >= min_property_coverage
        ]
    if not properties:
        raise LODError("no properties found to tabulate")

    names: dict[IRI, str] = {}
    for predicate in properties:
        base = _column_name(predicate, graph)
        name = base
        suffix = 2
        while name in names.values():
            name = f"{base}_{suffix}"
            suffix += 1
        names[predicate] = name

    rows = []
    for subject in subjects:
        row: dict = {}
        if include_subject:
            row["subject"] = str(subject)
        label = graph.label(subject)
        if label is not None:
            row["label"] = label
        for predicate in properties:
            values: list = []
            for source in merged_from[subject]:
                values.extend(graph.store.objects(source, predicate))
            if not values:
                row[names[predicate]] = None
            elif multivalued == "count":
                row[names[predicate]] = float(len(values))
            else:
                row[names[predicate]] = _object_to_cell(values[0])
        rows.append(row)

    roles = {"subject": ColumnRole.IDENTIFIER} if include_subject else {}
    dataset = Dataset.from_rows(rows, name=rdf_type.local_name(), roles=roles)
    return dataset


def dimensionality_report(graph: Graph, rdf_type: IRI) -> dict[str, float]:
    """Summarise how high-dimensional and sparse the tabulation of a class would be."""
    subjects = graph.subjects_of_type(rdf_type)
    if not subjects:
        raise LODError(f"no instances of {rdf_type} in the graph")
    predicates: dict[IRI, int] = {}
    total_cells = 0
    for subject in subjects:
        used = {t.predicate for t in graph.triples(subject, None, None)} - {RDF.type, RDFS.label, OWL.sameAs}
        total_cells += len(used)
        for predicate in used:
            predicates[predicate] = predicates.get(predicate, 0) + 1
    n_rows = len(subjects)
    n_cols = len(predicates)
    density = total_cells / (n_rows * n_cols) if n_rows and n_cols else 0.0
    return {
        "n_entities": float(n_rows),
        "n_properties": float(n_cols),
        "density": float(density),
        "sparsity": float(1.0 - density),
    }
