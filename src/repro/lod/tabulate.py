"""Pivot a LOD graph into a tabular dataset ready for mining.

This is the bridge between the LOD substrate and the KDD pipeline: every
instance of a chosen class becomes a row, every predicate used on those
instances becomes a column.  Because LOD describes entities with many loosely
structured properties, the resulting dataset is naturally *high-dimensional*
and *sparse* — exactly the situation the paper identifies as the hard case for
non-expert data miners (§1).

Assembly follows the two-tier protocol (``docs/encoded-core.md``):

* the **reference tier** builds row dictionaries cell by cell through the
  store's dict indexes and hands them to ``Dataset.from_rows``
  (:func:`_tabulate_rows_reference`);
* the **columnar tier** (default) cuts each property column directly out of
  the interned id arrays of :class:`~repro.lod.triples.ColumnarTriples`,
  converts each *distinct* object term to a cell once, and — because the
  assembly already knows every cell's category id — pre-seeds the resulting
  dataset's cached :class:`~repro.tabular.encoded.EncodedDataset` so the
  downstream pipeline (quality profile → advisor → mining → cube) never
  re-encodes what the tabulation already encoded.

Both tiers produce bit-identical datasets (cells, column order, ctypes,
roles); ``tabulate_entities(..., force_row=True)`` routes through the
reference tier.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import LODError
from repro.lod.graph import Graph
from repro.lod.terms import IRI, BNode, Literal, Object
from repro.lod.vocabulary import OWL, RDF, RDFS
from repro.tabular.dataset import Column, ColumnRole, Dataset, is_missing_value
from repro.tabular.encoded import encode_dataset


#: Predicates that never become property columns (hoisted: every Namespace
#: attribute access constructs and validates a fresh IRI).
_STRUCTURAL_PREDICATES = (RDF.type, RDFS.label, OWL.sameAs)


def _object_to_cell(obj: Object):
    """Convert an RDF object term to a tabular cell value."""
    if isinstance(obj, Literal):
        return obj.python_value()
    if isinstance(obj, IRI):
        return obj.local_name()
    if isinstance(obj, BNode):
        return str(obj)
    return None


def _column_name(predicate: IRI, graph: Graph) -> str:
    """Column name for a predicate: its label when present, else its local name."""
    label = graph.label(predicate)
    if label:
        return label.strip().replace(" ", "_").lower()
    return predicate.local_name()


def tabulate_entities(
    graph: Graph,
    rdf_type: IRI,
    properties: Sequence[IRI] | None = None,
    include_subject: bool = True,
    multivalued: str = "first",
    follow_same_as: bool = True,
    min_property_coverage: float = 0.0,
    force_row: bool = False,
) -> Dataset:
    """Build a :class:`~repro.tabular.dataset.Dataset` from the instances of a class.

    Parameters
    ----------
    graph:
        The LOD graph to pivot.
    rdf_type:
        Class whose instances become rows.
    properties:
        Predicates to use as columns; default is every predicate observed on
        the instances (excluding ``rdf:type`` and ``rdfs:label``).
    include_subject:
        When ``True`` (default), a ``subject`` identifier column is included
        with the :class:`~repro.tabular.dataset.ColumnRole.IDENTIFIER` role.
    multivalued:
        ``"first"`` keeps one value per (row, column); ``"count"`` stores the
        number of values instead.
    follow_same_as:
        When ``True``, properties of ``owl:sameAs``-linked resources are merged
        into the row of the canonical resource (data integration step).
    min_property_coverage:
        Drop auto-discovered property columns present on fewer than this
        fraction of rows (mitigates extreme sparsity); explicit ``properties``
        are never dropped.
    force_row:
        Assemble through the row-at-a-time reference tier instead of the
        columnar tier (the result is bit-identical either way).
    """
    if multivalued not in ("first", "count"):
        raise LODError(f"unknown multivalued policy {multivalued!r}")
    subjects = graph.subjects_of_type(rdf_type)
    if not subjects:
        raise LODError(f"no instances of {rdf_type} in the graph")

    # Merge owl:sameAs equivalents into their canonical (first-listed) subject.
    merged_from: dict = {s: [s] for s in subjects}
    same_as = _STRUCTURAL_PREDICATES[2]
    if follow_same_as and graph.store.predicate_in_use(same_as):
        canonical = set(subjects)
        for subject in subjects:
            for obj in graph.store.objects(subject, same_as):
                if isinstance(obj, (IRI, BNode)) and obj not in canonical:
                    merged_from[subject].append(obj)

    if properties is None:
        if force_row:
            properties = _discover_properties_rows(graph, subjects, merged_from, min_property_coverage)
        else:
            properties = _discover_properties_columnar(graph, subjects, merged_from, min_property_coverage)
    if not properties:
        raise LODError("no properties found to tabulate")

    names: dict[IRI, str] = {}
    for predicate in properties:
        base = _column_name(predicate, graph)
        name = base
        suffix = 2
        while name in names.values():
            name = f"{base}_{suffix}"
            suffix += 1
        names[predicate] = name

    # The reference tier lets a property column literally named "subject" or
    # "label" collide with the built-in row keys; keep that (odd) semantics
    # by routing such tabulations through the reference.
    collision = any(name in ("subject", "label") for name in names.values())
    if force_row or collision:
        return _tabulate_rows_reference(
            graph, subjects, merged_from, properties, names, include_subject, multivalued, rdf_type
        )
    return _tabulate_encoded(
        graph, subjects, merged_from, properties, names, include_subject, multivalued, rdf_type
    )


def _coverage_filter(
    discovered: dict[IRI, int], n_subjects: int, min_property_coverage: float
) -> list[IRI]:
    """Order discovered predicates by (-coverage, IRI) and apply the floor."""
    return [
        p
        for p, covered in sorted(discovered.items(), key=lambda kv: (-kv[1], str(kv[0])))
        if covered / n_subjects >= min_property_coverage
    ]


def _discover_properties_rows(
    graph: Graph, subjects: Sequence, merged_from: dict, min_property_coverage: float
) -> list[IRI]:
    """Reference discovery: count predicate coverage source by source."""
    discovered: dict[IRI, int] = {}
    for subject in subjects:
        for source in merged_from[subject]:
            for predicate in graph.store.predicates(source):
                if predicate in _STRUCTURAL_PREDICATES:
                    continue
                discovered[predicate] = discovered.get(predicate, 0) + 1
    return _coverage_filter(discovered, len(subjects), min_property_coverage)


def _discover_properties_columnar(
    graph: Graph, subjects: Sequence, merged_from: dict, min_property_coverage: float
) -> list[IRI]:
    """Columnar discovery: coverage counts from the interned (subject, predicate) pairs.

    Produces exactly the list of :func:`_discover_properties_rows` — the
    count of a predicate is the number of (row, source) occurrences whose
    source uses it, and the final ``sorted`` by ``(-count, str)`` is a total
    order, so the two tiers cannot disagree on order.
    """
    columnar = graph.store.columnar()
    n_terms = len(columnar.terms)
    s_arr, p_arr, _ = columnar.order("spo")
    if s_arr.size == 0:
        return []
    source_occurrences = np.zeros(n_terms, dtype=np.int64)
    for subject in subjects:
        for source in merged_from[subject]:
            source_occurrences[columnar.term_id(source)] += 1
    pairs = np.unique(s_arr * np.int64(n_terms) + p_arr)
    pair_subjects = pairs // n_terms
    pair_predicates = pairs % n_terms
    counts = np.bincount(
        pair_predicates, weights=source_occurrences[pair_subjects], minlength=n_terms
    ).astype(np.int64)
    structural = {columnar.term_id(p) for p in _STRUCTURAL_PREDICATES}
    discovered = {
        columnar.terms[pid]: int(counts[pid])
        for pid in np.flatnonzero(counts).tolist()
        if pid not in structural
    }
    return _coverage_filter(discovered, len(subjects), min_property_coverage)


def _tabulate_rows_reference(
    graph: Graph,
    subjects: Sequence,
    merged_from: dict,
    properties: Sequence[IRI],
    names: dict[IRI, str],
    include_subject: bool,
    multivalued: str,
    rdf_type: IRI,
) -> Dataset:
    """Reference tier: build row dictionaries cell by cell via the dict indexes."""
    rows = []
    for subject in subjects:
        row: dict = {}
        if include_subject:
            row["subject"] = str(subject)
        label = graph.label(subject)
        if label is not None:
            row["label"] = label
        for predicate in properties:
            values: list = []
            for source in merged_from[subject]:
                values.extend(graph.store.objects(source, predicate))
            if not values:
                row[names[predicate]] = None
            elif multivalued == "count":
                row[names[predicate]] = float(len(values))
            else:
                row[names[predicate]] = _object_to_cell(values[0])
        rows.append(row)

    roles = {"subject": ColumnRole.IDENTIFIER} if include_subject else {}
    return Dataset.from_rows(rows, name=rdf_type.local_name(), roles=roles)


def _tabulate_encoded(
    graph: Graph,
    subjects: Sequence,
    merged_from: dict,
    properties: Sequence[IRI],
    names: dict[IRI, str],
    include_subject: bool,
    multivalued: str,
    rdf_type: IRI,
) -> Dataset:
    """Columnar tier: cut property columns out of the interned id arrays.

    For each property the SPO-ordered id columns yield, per subject, the
    first object and the object count in exactly the order the reference
    tier's ``objects()`` calls observe; ``owl:sameAs`` sources are resolved
    through one flattened (row, source) table.  Distinct object terms are
    converted to cells — and coerced by :meth:`Column.from_distinct` — once
    per distinct value, and the per-cell distinct indices seed the dataset's
    cached encoding (:func:`_seed_encoding`).
    """
    columnar = graph.store.columnar()
    terms = columnar.terms
    n_rows = len(subjects)
    n_terms = len(terms)
    s_arr, p_arr, o_arr = columnar.order("spo")

    # Flatten the merged sources into (source id, owning row) arrays; rows
    # keep their sources in merged_from order so "first value wins" matches.
    flat_src: list[int] = []
    flat_row: list[int] = []
    for row, subject in enumerate(subjects):
        for source in merged_from[subject]:
            flat_src.append(columnar.term_id(source))
            flat_row.append(row)
    src_ids = np.asarray(flat_src, dtype=np.int64)
    src_row = np.asarray(flat_row, dtype=np.intp)

    labels = [graph.label(subject) for subject in subjects]
    has_any_label = any(label is not None for label in labels)

    # Replicate Dataset.from_rows' first-seen column order: "label" sits
    # right after "subject" when the first row carries one, and only appears
    # after the property columns otherwise.  Each column is either a plain
    # cell list or a ("distinct", cells, inverse) spec for Column.from_distinct.
    column_specs: dict[str, tuple] = {}
    if include_subject:
        column_specs["subject"] = ("values", [str(subject) for subject in subjects])
    if labels[0] is not None:
        column_specs["label"] = ("values", labels)

    seeds: dict[str, np.ndarray] = {}
    for predicate in properties:
        name = names[predicate]
        pid = columnar.term_id(predicate)
        if pid < 0:  # predicate never used in the graph: an all-missing column
            column_specs[name] = ("distinct", [None], np.zeros(n_rows, dtype=np.intp))
            seeds[name] = np.zeros(n_rows, dtype=np.intp)
            continue
        selector = p_arr == pid
        sub_s = s_arr[selector]
        sub_o = o_arr[selector]
        # Rows for one (subject, predicate) are contiguous in SPO order, so
        # first occurrence/count per subject mirror objects(source, predicate).
        present, first_at, n_objects = np.unique(sub_s, return_index=True, return_counts=True)
        count_of = np.zeros(n_terms, dtype=np.int64)
        count_of[present] = n_objects
        first_of = np.zeros(n_terms, dtype=np.int64)
        first_of[present] = first_at
        src_counts = count_of[src_ids]
        if multivalued == "count":
            totals = np.bincount(src_row, weights=src_counts, minlength=n_rows).astype(np.int64)
            distinct_totals, inverse = np.unique(totals, return_inverse=True)
            cells = [None if total == 0 else float(total) for total in distinct_totals.tolist()]
            column_specs[name] = ("distinct", cells, inverse.reshape(-1))
            continue
        # First source (in merged order) holding any value wins; assigning in
        # reverse makes the earliest flattened position the survivor.
        holders = np.flatnonzero(src_counts > 0)
        first_holder = np.full(n_rows, -1, dtype=np.int64)
        first_holder[src_row[holders[::-1]]] = holders[::-1]
        value_ids = np.full(n_rows, -1, dtype=np.int64)
        filled = np.flatnonzero(first_holder >= 0)
        if filled.size:
            value_ids[filled] = sub_o[first_of[src_ids[first_holder[filled]]]]
        distinct_ids, inverse = np.unique(value_ids, return_inverse=True)
        inverse = inverse.reshape(-1)
        cells = [
            None if oid < 0 else _object_to_cell(terms[oid]) for oid in distinct_ids.tolist()
        ]
        column_specs[name] = ("distinct", cells, inverse)
        seeds[name] = inverse

    if has_any_label and labels[0] is None:
        column_specs["label"] = ("values", labels)

    roles = {"subject": ColumnRole.IDENTIFIER} if include_subject else {}
    columns = []
    for name, spec in column_specs.items():
        role = roles.get(name, ColumnRole.FEATURE)
        if spec[0] == "distinct":
            columns.append(Column.from_distinct(name, spec[1], spec[2], role=role))
        else:
            columns.append(Column(name, spec[1], role=role))
    dataset = Dataset(columns, name=rdf_type.local_name())
    _seed_encoding(dataset, seeds)
    return dataset


def _seed_encoding(dataset: Dataset, seeds: dict[str, np.ndarray]) -> None:
    """Pre-seed the dataset's cached encoding from the per-cell distinct indices.

    Distinct values are visited in first-occurrence row order and merged by
    ``str(coerced cell)`` — exactly the level assignment
    ``EncodedDataset._encode_categorical`` performs cell by cell — so the
    seeded views are bit-identical to what a cold encoding would compute.
    Numeric columns are skipped: their float views are already array slices.
    """
    encoded = encode_dataset(dataset)
    for name, inverse in seeds.items():
        column = dataset[name]
        if column.is_numeric():
            continue
        _, first_at = np.unique(inverse, return_index=True)
        index: dict[str, int] = {}
        code_of = np.empty(first_at.size, dtype=np.int64)
        for position in np.argsort(first_at, kind="stable").tolist():
            coerced = column[int(first_at[position])]
            if is_missing_value(coerced):
                code_of[position] = -1
            else:
                code_of[position] = index.setdefault(str(coerced), len(index))
        encoded.seed_categorical(name, code_of[inverse], list(index))


def dimensionality_report(graph: Graph, rdf_type: IRI) -> dict[str, float]:
    """Summarise how high-dimensional and sparse the tabulation of a class would be."""
    subjects = graph.subjects_of_type(rdf_type)
    if not subjects:
        raise LODError(f"no instances of {rdf_type} in the graph")
    predicates: dict[IRI, int] = {}
    total_cells = 0
    structural = set(_STRUCTURAL_PREDICATES)
    for subject in subjects:
        used = set(graph.store.predicates(subject)) - structural
        total_cells += len(used)
        for predicate in used:
            predicates[predicate] = predicates.get(predicate, 0) + 1
    n_rows = len(subjects)
    n_cols = len(predicates)
    density = total_cells / (n_rows * n_cols) if n_rows and n_cols else 0.0
    return {
        "n_entities": float(n_rows),
        "n_properties": float(n_cols),
        "density": float(density),
        "sparsity": float(1.0 - density),
    }
