"""Namespaces and the vocabularies used across the library.

Besides the standard RDF/RDFS/OWL/XSD/DCTERMS/FOAF namespaces, two
vocabularies matter to the reproduction:

* ``QB`` — a minimal subset of the W3C RDF Data Cube vocabulary, used when
  mining results and OLAP observations are shared back as LOD;
* ``DQV`` — a minimal subset of the W3C Data Quality Vocabulary, used to
  publish measured data quality criteria as annotations on a dataset;
* ``OPENBI`` — the reproduction's own vocabulary for experiment records,
  knowledge-base entries and algorithm recommendations.
"""

from __future__ import annotations

from repro.lod.terms import IRI


class Namespace:
    """A convenience factory for IRIs sharing a common prefix.

    ``Namespace("http://ex.org/")["name"]`` and ``Namespace(...).name`` both
    return ``IRI("http://ex.org/name")``.
    """

    def __init__(self, prefix: str) -> None:
        """Wrap a namespace IRI ``prefix`` shared by the generated terms."""
        self._prefix = prefix

    @property
    def prefix(self) -> str:
        """The namespace IRI every generated term starts with."""
        return self._prefix

    def term(self, name: str) -> IRI:
        """Return the IRI for ``name`` inside this namespace."""
        return IRI(self._prefix + name)

    def __getitem__(self, name: str) -> IRI:
        """Index access: ``ns["name"]`` == ``ns.term("name")``."""
        return self.term(name)

    def __getattr__(self, name: str) -> IRI:
        """Attribute access: ``ns.name`` == ``ns.term("name")``."""
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    def __contains__(self, iri: IRI) -> bool:
        """Whether ``iri`` lives inside this namespace."""
        return isinstance(iri, IRI) and iri.value.startswith(self._prefix)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Debug representation."""
        return f"Namespace({self._prefix!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
DCTERMS = Namespace("http://purl.org/dc/terms/")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
QB = Namespace("http://purl.org/linked-data/cube#")
DQV = Namespace("http://www.w3.org/ns/dqv#")
OPENBI = Namespace("http://openbi.example.org/ns#")

#: Prefixes used by the Turtle serialiser, in a stable order.
DEFAULT_PREFIXES: dict[str, Namespace] = {
    "rdf": RDF,
    "rdfs": RDFS,
    "owl": OWL,
    "xsd": XSD,
    "dcterms": DCTERMS,
    "foaf": FOAF,
    "qb": QB,
    "dqv": DQV,
    "openbi": OPENBI,
}
