"""Parallel execution tier over the shared encoded views.

The library's natural fan-out axes — cross-validation folds, ensemble
member fits, quality criteria, entity-linker candidate blocks and group-by
segment reductions — are embarrassingly parallel over *read-only* encoded
views (:mod:`repro.tabular.encoded`), and the ``.rps`` persistence tier
(:mod:`repro.store`) makes sharing those views across processes free.
This package adds the worker-pool layer that exploits that, under the same
two-tier contract as every other optimisation in the library
(``docs/encoded-core.md`` §6):

* parallel results are **bit-identical** to the sequential tier at every
  ``n_jobs`` — each unit reduces exactly as the sequential code does and
  results merge only at unit boundaries, in deterministic unit order;
* ``n_jobs=1`` (the default), ``REPRO_N_JOBS`` in the environment, and the
  :func:`force_sequential` hatch all route back to the existing
  sequential code paths;
* a worker crash surfaces the owning subsystem's structured error
  (``MiningError``, ``DataQualityError``, …) instead of a hang.

Call sites pass ``n_jobs`` straight through to :func:`effective_n_jobs`
and, when more than one worker is warranted, dispatch unit indices through
:func:`parallel_map`; datasets and graphs reach the workers through
:class:`ViewHandle` — by fork inheritance where available, by reopening a
``.rps`` snapshot everywhere else — never by pickling the views.
"""

from repro.parallel.pool import (
    N_JOBS_ENV,
    ViewHandle,
    effective_n_jobs,
    force_sequential,
    parallel_map,
    thread_sequential,
)

__all__ = [
    "N_JOBS_ENV",
    "ViewHandle",
    "effective_n_jobs",
    "force_sequential",
    "parallel_map",
    "thread_sequential",
]
