"""Worker-pool dispatch over shared encoded views.

This module is the machinery behind every ``n_jobs`` parameter in the
library (CV folds, ensemble member fits, quality criteria, linker blocks,
group-by segments).  It deliberately exposes exactly one dispatch entry
point, :func:`parallel_map`, and one sharing abstraction,
:class:`ViewHandle`, so the rule for *how data reaches a worker* lives in
one place:

* **task payloads are bare unit indices** — the work descriptors (fold
  index arrays, sampling plans, candidate-block keys) live in a *context*
  object that never travels through the task queue;
* the context reaches workers either by **fork inheritance** (the default
  wherever ``fork`` is available: the encoded views are shared
  copy-on-write, nothing is pickled) or by a **store snapshot** (datasets
  and graphs wrapped in :class:`ViewHandle` are saved once to a ``.rps``
  file — or reuse the file they are already memory-mapped from — and each
  worker reopens the O(metadata) memory map; see
  :func:`repro.store.open_dataset`);
* results come back pickled, which is safe because every call site merges
  small plain values (label lists, fitted members, criterion measures,
  float reductions) in deterministic unit order.

:class:`~repro.tabular.encoded.EncodedDataset` refuses to be pickled at
all (see its ``__reduce__``), so a call site that accidentally routed a
view through the task queue fails loudly instead of silently copying a
multi-gigabyte memory map into every worker.

A worker that *raises* propagates its exception to the caller; a worker
that *dies* (killed, segfault) surfaces as the call site's structured
error class (``MiningError``, ``DataQualityError``, …) instead of a hang —
:class:`concurrent.futures.process.BrokenProcessPool` is translated, the
pool is torn down, and temporary snapshot files are removed.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import pickle
import shutil
import tempfile
import threading
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any

from repro.exceptions import ParallelError, ReproError

#: Environment variable read when a call site's ``n_jobs`` is ``None``.
N_JOBS_ENV = "REPRO_N_JOBS"

#: Library-wide escape hatch: when ``True`` every ``n_jobs`` resolves to 1
#: and all call sites take their existing sequential tier.  Set it through
#: :func:`repro.parallel.force_sequential` (or directly, in tests).
_FORCE_SEQUENTIAL = False

#: Test/diagnostic override for the sharing mode chosen by
#: :func:`_dispatch_mode`: ``None`` (auto), ``"fork"`` or ``"snapshot"``.
_FORCE_MODE: str | None = None

#: Set inside worker processes so nested parallel calls (an ensemble fit
#: inside a parallel CV fold) resolve to the sequential tier instead of
#: forking grandchildren.
_IN_WORKER = False

#: Per-thread state carrying the :func:`thread_sequential` flag.  Unlike
#: :data:`_FORCE_SEQUENTIAL` (process-wide) this pins only the *current
#: thread* to the sequential tier, which is what a multi-threaded server
#: needs: request-handler threads must never fork (POSIX ``fork`` from a
#: thread other than the main one clones a process whose other threads —
#: and any locks they hold — vanish mid-operation, so the child can
#: deadlock inside ``ProcessPoolExecutor``'s own machinery), while the
#: main thread of the same process keeps its full ``n_jobs`` semantics.
_THREAD_STATE = threading.local()

#: ``(worker, context)`` for the units in flight, reachable by forked
#: workers through inheritance (set just before the pool is created).
_CONTEXT: tuple[Callable[..., Any], Any] | None = None

#: Per-process memo of reopened snapshot payloads: ``{(kind, path): payload}``.
#: Workers are short-lived (one pool per dispatch), so entries never go stale.
_OPEN_MEMO: dict[tuple[str, str], Any] = {}


def effective_n_jobs(n_jobs: int | None = None) -> int:
    """Resolve a call site's ``n_jobs`` to a concrete worker count.

    ``None`` reads the :data:`N_JOBS_ENV` environment variable (defaulting
    to 1, the sequential tier); ``0`` or a negative value means "all
    cores".  Inside a worker process, inside a :func:`thread_sequential`
    block (server request-handler threads), and while the
    :data:`_FORCE_SEQUENTIAL` hatch is set, the answer is always 1.
    """
    if _FORCE_SEQUENTIAL or _IN_WORKER or getattr(_THREAD_STATE, "sequential", False):
        return 1
    if n_jobs is None:
        raw = os.environ.get(N_JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ParallelError(
                f"{N_JOBS_ENV}={raw!r} is not an integer worker count"
            ) from None
    n_jobs = int(n_jobs)
    if n_jobs <= 0:
        n_jobs = os.cpu_count() or 1
    return max(1, n_jobs)


def force_sequential(enabled: bool = True) -> None:
    """Set (or clear) the library-wide sequential escape hatch."""
    global _FORCE_SEQUENTIAL
    _FORCE_SEQUENTIAL = bool(enabled)


@contextlib.contextmanager
def thread_sequential():
    """Pin the *current thread* to the sequential tier for the block's duration.

    Inside the block every ``n_jobs`` resolution on this thread —
    including ``n_jobs=None`` call sites reading :data:`N_JOBS_ENV` and
    explicit ``n_jobs>1`` requests — answers 1, so no call made from the
    block ever dispatches a worker pool.  Other threads of the same
    process are unaffected.

    This is the contract the serving tier builds on: forking from a
    request-handler thread is unsafe (the forked child inherits only the
    calling thread, so any lock another thread held at fork time — the
    import lock, an executor's queue lock, the HTTP server's own state —
    stays locked forever in the child), and the parallel tier's results
    are bit-identical to the sequential tier by construction, so pinning
    handler threads to sequential execution changes nothing about the
    bytes a server returns.  Re-entrant: nested blocks keep the flag set
    until the outermost one exits.
    """
    previous = getattr(_THREAD_STATE, "sequential", False)
    _THREAD_STATE.sequential = True
    try:
        yield
    finally:
        _THREAD_STATE.sequential = previous


class ViewHandle:
    """Reaches a :class:`Dataset` or :class:`Graph` into workers without pickling it.

    In fork mode the handle is never serialized: :meth:`resolve` simply
    returns the wrapped payload, whose encoded views the forked child
    shares copy-on-write.  In snapshot mode the *handle* is what crosses
    the process boundary: it pickles as a store path (either the ``.rps``
    file the payload is already memory-mapped from, or a temporary
    snapshot written by :meth:`ensure_stored`) plus a payload kind, and
    unpickles worker-side by reopening the store — memoized per process —
    so the payload's arrays are shared through the page cache instead of
    being copied through a pipe.
    """

    def __init__(self, payload: Any) -> None:
        """Wrap ``payload`` (a dataset or graph) for worker access."""
        self.payload = payload
        self._path: str | None = None

    def resolve(self) -> Any:
        """The wrapped (or worker-side reopened) payload."""
        return self.payload

    def ensure_stored(self, tmpdir: str) -> None:
        """Make the payload reachable by path before a snapshot dispatch.

        Reuses the open store file of an already memory-mapped payload;
        otherwise saves a snapshot into ``tmpdir`` (removed by the
        dispatcher after the run).
        """
        if self._path is not None:
            return
        store_file = getattr(self.payload, "_store_file", None)
        if store_file is not None and getattr(store_file, "_mm", None) is not None:
            self._path = str(store_file.path)
            return
        path = Path(tmpdir) / f"snapshot-{id(self):x}.rps"
        self.payload.save(path)
        self._path = str(path)

    def _kind(self) -> str:
        """``"graph"`` or ``"dataset"`` — which ``open`` reverses the snapshot."""
        from repro.lod.graph import Graph

        return "graph" if isinstance(self.payload, Graph) else "dataset"

    def __getstate__(self) -> dict[str, str]:
        """Serialize as ``(kind, path)`` — never the payload itself."""
        if self._path is None:
            raise ParallelError(
                "ViewHandle crossed a process boundary before ensure_stored(); "
                "this is a repro.parallel dispatch bug"
            )
        return {"kind": self._kind(), "path": self._path}

    def __setstate__(self, state: dict[str, str]) -> None:
        """Worker side: reopen the store (memoized per process)."""
        self._path = state["path"]
        key = (state["kind"], state["path"])
        payload = _OPEN_MEMO.get(key)
        if payload is None:
            if state["kind"] == "graph":
                from repro.lod.graph import Graph

                payload = Graph.open(state["path"])
            else:
                from repro.tabular.dataset import Dataset

                payload = Dataset.open(state["path"])
            _OPEN_MEMO[key] = payload
        self.payload = payload


def _iter_handles(context: Any) -> Iterable[ViewHandle]:
    """Every :class:`ViewHandle` reachable one level deep inside ``context``."""
    values = context.values() if isinstance(context, dict) else [context]
    for value in values:
        if isinstance(value, ViewHandle):
            yield value
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, ViewHandle):
                    yield item


def _dispatch_mode() -> str:
    """``"fork"`` where available (views shared by inheritance), else ``"snapshot"``."""
    if _FORCE_MODE is not None:
        return _FORCE_MODE
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "snapshot"


def _init_worker(payload: bytes | None) -> None:
    """Worker initializer: mark the process and install the snapshot context."""
    global _IN_WORKER, _CONTEXT
    _IN_WORKER = True
    if payload is not None:
        _CONTEXT = pickle.loads(payload)


class _UnpicklableResult:
    """Worker-side sentinel: the unit ran but its result cannot travel back.

    Returned instead of letting the executor's result pipe blow up with an
    opaque ``PicklingError``; the dispatcher sees it and tells the call
    site to rerun its sequential tier (where results never need to move).
    """

    def __init__(self, reason: str) -> None:
        """Record why the result could not be pickled."""
        self.reason = reason


def _run_unit(index: int):
    """Execute one unit in a worker: look up the shared context, run it."""
    global _IN_WORKER
    _IN_WORKER = True  # fork-mode workers skip _init_worker's payload branch
    worker, context = _CONTEXT
    result = worker(context, index)
    try:
        pickle.dumps(result)
    except Exception as exc:  # unpicklable result (e.g. a monkeypatched model)
        return _UnpicklableResult(f"{type(exc).__name__}: {exc}")
    return result


def parallel_map(
    worker: Callable[[Any, int], Any],
    n_units: int,
    *,
    context: Any,
    n_jobs: int,
    error_cls: type[ReproError] = ParallelError,
) -> list[Any] | None:
    """Run ``worker(context, index)`` for every unit index over a worker pool.

    Results come back **in unit order** regardless of which worker finished
    first, so call sites can merge them exactly as their sequential loop
    would.  ``worker`` must be a module-level function (it is located by
    qualified name in snapshot mode) and must not mutate shared state —
    each call returns its unit's result.

    Returns ``None`` when the dispatch cannot run or cannot return its
    results — snapshot mode finding an unpicklable context (e.g. a lambda
    classifier factory on a platform without ``fork``), or a unit
    producing an unpicklable result — in which case the call site falls
    back to its sequential tier.  A worker that raises a
    :class:`~repro.exceptions.ReproError` propagates it unchanged; any
    other worker exception, and a worker process dying outright, raise
    ``error_cls`` naming the failure.
    """
    global _CONTEXT
    mode = _dispatch_mode()
    n_workers = max(1, min(int(n_jobs), n_units))
    start_method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    mp_context = multiprocessing.get_context(start_method)
    tempdir: str | None = None
    initializer_payload: bytes | None = None
    try:
        if mode == "snapshot":
            tempdir = tempfile.mkdtemp(prefix="repro-parallel-")
            for handle in _iter_handles(context):
                handle.ensure_stored(tempdir)
            try:
                initializer_payload = pickle.dumps((worker, context))
            except Exception:
                # Unpicklable context (lambdas, open resources): the caller
                # runs its sequential tier instead.
                return None
        else:
            _CONTEXT = (worker, context)
        chunksize = max(1, n_units // (n_workers * 4))
        try:
            with ProcessPoolExecutor(
                max_workers=n_workers,
                mp_context=mp_context,
                initializer=_init_worker,
                initargs=(initializer_payload,),
            ) as executor:
                results = list(executor.map(_run_unit, range(n_units), chunksize=chunksize))
            if any(isinstance(result, _UnpicklableResult) for result in results):
                # Some unit's result cannot cross the process boundary (e.g.
                # a fitted model holding a lambda): the caller's sequential
                # tier handles it without moving results at all.
                return None
            return results
        except BrokenProcessPool as exc:
            raise error_cls(
                f"a parallel worker process died mid-run "
                f"({n_units} units over {n_workers} workers); "
                "rerun with n_jobs=1 (or REPRO_N_JOBS=1) to use the sequential tier"
            ) from exc
        except ReproError:
            raise
        except Exception as exc:
            raise error_cls(f"parallel worker failed: {exc}") from exc
    finally:
        _CONTEXT = None
        if tempdir is not None:
            shutil.rmtree(tempdir, ignore_errors=True)
