"""Exception hierarchy shared by every subpackage.

All exceptions raised on purpose by the library derive from
:class:`ReproError`, so callers can catch one base class when they only care
about "the library rejected my input" versus genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A dataset, schema or metamodel element was malformed or inconsistent."""


class DataQualityError(ReproError):
    """A data quality criterion could not be measured on the given data."""


class MiningError(ReproError):
    """A mining algorithm was misused (e.g. predict before fit, bad shapes)."""


class ExperimentError(ReproError):
    """An experiment plan or run was invalid (unknown injector, bad severity…)."""


class KnowledgeBaseError(ReproError):
    """The DQ4DM knowledge base rejected an operation (empty KB, bad query…)."""


class LODError(ReproError):
    """A Linked Open Data operation failed (bad term, parse error, bad query)."""


class OLAPError(ReproError):
    """An OLAP cube operation was invalid (unknown dimension, measure…)."""


class ParallelError(ReproError):
    """The parallel execution tier was misconfigured or a dispatch failed.

    Worker failures inside a specific subsystem surface as that
    subsystem's own error class (:class:`MiningError`,
    :class:`DataQualityError`, …); this class covers the dispatch layer
    itself (bad ``REPRO_N_JOBS`` values, sharing-protocol violations).
    """


class ServeError(ReproError):
    """The serving tier rejected a request or was misconfigured.

    Raised for malformed endpoint queries (unknown columns, bad pattern
    syntax, missing required parameters), references to snapshots the
    registry does not hold, and invalid server configuration (bad port,
    no snapshots).  The HTTP front end maps it to a structured 4xx JSON
    response; callers using :class:`repro.serve.ReproApp` directly catch
    it like any other :class:`ReproError`.
    """


class StoreError(ReproError):
    """A binary encoded-store file could not be written or opened."""


class StoreCorruptionError(StoreError):
    """A store file failed checksum or bounds validation.

    The error pinpoints the offending section so callers can decide whether
    the file is worth salvaging: ``section`` names the section (or the
    pseudo-sections ``"header"`` / ``"directory"``), ``reason`` describes the
    failed check, and ``salvageable`` is ``True`` when the damage is limited
    to sections the tolerant tier (:func:`repro.recovery.salvage_store`) can
    drop or rebuild from the surviving primaries.
    """

    def __init__(self, path, section: str, reason: str, salvageable: bool = False) -> None:
        self.path = str(path)
        self.section = section
        self.reason = reason
        self.salvageable = salvageable
        hint = "; repro.recovery.salvage_store may recover it" if salvageable else ""
        super().__init__(f"store {self.path}: section {section!r}: {reason}{hint}")


class FeedError(ReproError):
    """A feed connector operation failed (missing fixture, exhausted retries…)."""


class FeedTransientError(FeedError):
    """A transient feed failure that the connector may retry.

    Feed backends raise this subclass for recoverable conditions (a flaky
    page fetch, a momentarily unavailable batch file); the connector's
    retry loop catches exactly this class, sleeps, and tries again up to
    its ``max_retries`` budget before giving up with a plain
    :class:`FeedError`.
    """
