"""Builders: derive a common-representation model from datasets or LOD graphs.

These correspond to the "data source module" and "LOD integration module" of
the paper's Eclipse plugin design (§3.3): metadata is obtained from the source
and the corresponding model is produced.
"""

from __future__ import annotations

from repro.lod.graph import Graph
from repro.lod.terms import IRI, Literal
from repro.lod.vocabulary import OWL, RDF, RDFS
from repro.metamodel.elements import Catalog, Key, ModelColumn, Schema, Table
from repro.tabular.dataset import ColumnRole, Dataset


def model_from_dataset(
    dataset: Dataset,
    catalog_name: str = "openbi",
    schema_name: str = "sources",
) -> Catalog:
    """Build a catalog containing one table mirroring the dataset's columns.

    Column statistics that matter for later annotation (row count, missing
    cells, distinct counts) are recorded as annotations at build time.
    """
    catalog = Catalog(catalog_name)
    schema = catalog.add_schema(Schema(schema_name))
    table = schema.add_table(Table(dataset.name))
    table.annotate("n_rows", dataset.n_rows)
    identifier_columns = []
    for column in dataset.columns:
        model_column = ModelColumn(
            column.name,
            datatype=column.ctype,
            role=column.role,
            nullable=column.n_missing() > 0,
        )
        model_column.annotate("n_missing", column.n_missing())
        model_column.annotate("n_distinct", len(column.distinct()))
        table.add_column(model_column)
        if column.role == ColumnRole.IDENTIFIER:
            identifier_columns.append(column.name)
    if identifier_columns:
        table.add_key(Key(f"{dataset.name}_pk", identifier_columns, primary=True))
    return catalog


def model_from_lod(
    graph: Graph,
    catalog_name: str = "openbi",
    schema_name: str = "lod",
    classes: list[IRI] | None = None,
) -> Catalog:
    """Build a catalog with one table per RDF class found in the graph.

    Each predicate used on a class's instances becomes a column; the column's
    data type is inferred from the observed literal values (``numeric`` when
    every observed literal is a number, ``resource`` for object properties).
    Coverage (share of instances carrying the predicate) is annotated because
    it drives the dimensionality/sparsity discussion of the paper.
    """
    catalog = Catalog(catalog_name)
    schema = catalog.add_schema(Schema(schema_name))
    class_histogram = graph.types()
    selected = classes if classes is not None else sorted(class_histogram, key=lambda c: str(c))
    for rdf_class in selected:
        instances = graph.subjects_of_type(rdf_class)
        if not instances:
            continue
        table = schema.add_table(Table(rdf_class.local_name()))
        table.annotate("class_iri", str(rdf_class))
        table.annotate("n_rows", len(instances))
        predicate_stats: dict[IRI, dict[str, float]] = {}
        for subject in instances:
            for predicate, objects in graph.properties_of(subject).items():
                if predicate in (RDF.type, OWL.sameAs):
                    continue
                stats = predicate_stats.setdefault(predicate, {"count": 0, "numeric": 0, "literal": 0})
                stats["count"] += 1
                for obj in objects:
                    if isinstance(obj, Literal):
                        stats["literal"] += 1
                        if isinstance(obj.python_value(), (int, float)) and not isinstance(obj.python_value(), bool):
                            stats["numeric"] += 1
        for predicate, stats in sorted(predicate_stats.items(), key=lambda kv: str(kv[0])):
            if stats["literal"] == 0:
                datatype = "resource"
            elif stats["numeric"] == stats["literal"]:
                datatype = "numeric"
            else:
                datatype = "categorical"
            name = predicate.local_name() if predicate != RDFS.label else "label"
            if table.has_column(name):
                name = f"{name}_{abs(hash(str(predicate))) % 1000}"
            column = ModelColumn(name, datatype=datatype, nullable=stats["count"] < len(instances))
            column.annotate("predicate_iri", str(predicate))
            column.annotate("coverage", stats["count"] / len(instances))
            table.add_column(column)
    if not schema.tables:
        raise ValueError("the LOD graph contains no typed instances to model")
    return catalog
