"""CWM-like common representation of data sources.

The paper (§3.2.1) proposes using the OMG Common Warehouse Metamodel as the
"common representation of LOD" onto which measured data quality criteria are
annotated.  This subpackage provides the subset of CWM that role requires —
``Catalog → Schema → Table → Column`` with data types and keys — implemented
as plain Python model elements, plus:

* builders that derive a model from a :class:`~repro.tabular.dataset.Dataset`
  or from a LOD :class:`~repro.lod.graph.Graph` (the paper's "LOD integration
  module");
* a quality-annotation layer (the paper's "data quality module");
* JSON and XMI-style serialisation;
* a structural diff between two models.
"""

from repro.metamodel.elements import Catalog, Schema, Table, ModelColumn, DataType, Key, ModelElement
from repro.metamodel.builders import model_from_dataset, model_from_lod
from repro.metamodel.annotations import annotate_quality, read_quality_annotations, QUALITY_ANNOTATION_PREFIX
from repro.metamodel.serialization import model_to_dict, model_from_dict, model_to_xmi
from repro.metamodel.diff import diff_models, ModelDiff

__all__ = [
    "Catalog",
    "Schema",
    "Table",
    "ModelColumn",
    "DataType",
    "Key",
    "ModelElement",
    "model_from_dataset",
    "model_from_lod",
    "annotate_quality",
    "read_quality_annotations",
    "QUALITY_ANNOTATION_PREFIX",
    "model_to_dict",
    "model_from_dict",
    "model_to_xmi",
    "diff_models",
    "ModelDiff",
]
