"""Quality annotations on model elements (the paper's "data quality module")."""

from __future__ import annotations

from repro.exceptions import SchemaError
from repro.metamodel.elements import Catalog, Table
from repro.quality.profile import DataQualityProfile

#: Every quality annotation key starts with this prefix.
QUALITY_ANNOTATION_PREFIX = "dq:"


def annotate_quality(table: Table, profile: DataQualityProfile, per_column: bool = True) -> Table:
    """Attach a measured :class:`DataQualityProfile` to a table (and its columns).

    Table-level annotations: one ``dq:<criterion>`` per measured criterion plus
    ``dq:overall``.  Column-level annotations: per-column completeness and
    accuracy where the criterion recorded a per-column breakdown.
    """
    for criterion, score in profile.as_dict().items():
        table.annotate(f"{QUALITY_ANNOTATION_PREFIX}{criterion}", float(score))
    table.annotate(f"{QUALITY_ANNOTATION_PREFIX}overall", float(profile.overall()))
    table.annotate(f"{QUALITY_ANNOTATION_PREFIX}profile", profile.to_json_dict())
    if per_column:
        for criterion in ("completeness", "accuracy"):
            if criterion not in profile.criteria():
                continue
            per_column_scores = profile.details(criterion).get("per_column", {})
            for column_name, score in per_column_scores.items():
                if table.has_column(column_name):
                    table.column(column_name).annotate(
                        f"{QUALITY_ANNOTATION_PREFIX}{criterion}", float(score)
                    )
    return table


def read_quality_annotations(table: Table) -> dict[str, float]:
    """Read the table-level ``dq:`` scores back (criterion → score)."""
    result = {}
    for key, value in table.annotations_with_prefix(QUALITY_ANNOTATION_PREFIX).items():
        if isinstance(value, (int, float)):
            result[key[len(QUALITY_ANNOTATION_PREFIX):]] = float(value)
    if not result:
        raise SchemaError(f"table {table.name!r} carries no quality annotations")
    return result


def read_quality_profile(table: Table) -> DataQualityProfile:
    """Reconstruct the full :class:`DataQualityProfile` stored on a table."""
    payload = table.annotation(f"{QUALITY_ANNOTATION_PREFIX}profile")
    if payload is None:
        raise SchemaError(f"table {table.name!r} carries no stored quality profile")
    return DataQualityProfile.from_json_dict(payload)


def annotate_catalog(catalog: Catalog, profiles: dict[str, DataQualityProfile]) -> Catalog:
    """Annotate every table of a catalog for which a profile is provided."""
    for table in catalog.all_tables():
        profile = profiles.get(table.name)
        if profile is not None:
            annotate_quality(table, profile)
    return catalog
