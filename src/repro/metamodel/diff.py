"""Structural diff between two common-representation models.

Open data sources evolve between publications; diffing the model of a fresh
download against the previously annotated model tells the OpenBI user whether
past quality annotations and knowledge-base advice still apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metamodel.elements import Catalog, Table


@dataclass
class ModelDiff:
    """Differences between an ``old`` and a ``new`` catalog."""

    added_tables: list[str] = field(default_factory=list)
    removed_tables: list[str] = field(default_factory=list)
    added_columns: dict[str, list[str]] = field(default_factory=dict)
    removed_columns: dict[str, list[str]] = field(default_factory=dict)
    retyped_columns: dict[str, list[tuple[str, str, str]]] = field(default_factory=dict)

    def is_empty(self) -> bool:
        """True when the two models are structurally identical."""
        return not (
            self.added_tables
            or self.removed_tables
            or self.added_columns
            or self.removed_columns
            or self.retyped_columns
        )

    def summary(self) -> str:
        """One-paragraph human readable summary."""
        if self.is_empty():
            return "models are structurally identical"
        parts = []
        if self.added_tables:
            parts.append(f"tables added: {', '.join(self.added_tables)}")
        if self.removed_tables:
            parts.append(f"tables removed: {', '.join(self.removed_tables)}")
        for table, columns in self.added_columns.items():
            parts.append(f"{table}: columns added {', '.join(columns)}")
        for table, columns in self.removed_columns.items():
            parts.append(f"{table}: columns removed {', '.join(columns)}")
        for table, changes in self.retyped_columns.items():
            rendered = ", ".join(f"{name} ({old} -> {new})" for name, old, new in changes)
            parts.append(f"{table}: columns retyped {rendered}")
        return "; ".join(parts)


def _table_index(catalog: Catalog) -> dict[str, Table]:
    return {table.name: table for table in catalog.all_tables()}


def diff_models(old: Catalog, new: Catalog) -> ModelDiff:
    """Compute which tables/columns were added, removed or retyped."""
    diff = ModelDiff()
    old_tables = _table_index(old)
    new_tables = _table_index(new)
    diff.added_tables = sorted(set(new_tables) - set(old_tables))
    diff.removed_tables = sorted(set(old_tables) - set(new_tables))
    for name in sorted(set(old_tables) & set(new_tables)):
        old_table, new_table = old_tables[name], new_tables[name]
        old_columns = {c.name: c for c in old_table.columns}
        new_columns = {c.name: c for c in new_table.columns}
        added = sorted(set(new_columns) - set(old_columns))
        removed = sorted(set(old_columns) - set(new_columns))
        if added:
            diff.added_columns[name] = added
        if removed:
            diff.removed_columns[name] = removed
        retyped = []
        for column_name in sorted(set(old_columns) & set(new_columns)):
            old_type = old_columns[column_name].datatype.name
            new_type = new_columns[column_name].datatype.name
            if old_type != new_type:
                retyped.append((column_name, old_type, new_type))
        if retyped:
            diff.retyped_columns[name] = retyped
    return diff
