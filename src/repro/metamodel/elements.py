"""Model elements of the CWM-like common representation."""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from repro.exceptions import SchemaError


class ModelElement:
    """Base class: every element has a name and a free-form annotation map.

    Annotations are the extension point the paper relies on: measured data
    quality criteria are attached to tables and columns as annotations.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise SchemaError("model elements need a non-empty name")
        self.name = name
        self.annotations: dict[str, Any] = {}

    def annotate(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one annotation."""
        self.annotations[key] = value

    def annotation(self, key: str, default: Any = None) -> Any:
        """Read one annotation."""
        return self.annotations.get(key, default)

    def annotations_with_prefix(self, prefix: str) -> dict[str, Any]:
        """All annotations whose key starts with ``prefix``."""
        return {k: v for k, v in self.annotations.items() if k.startswith(prefix)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class DataType(ModelElement):
    """A named data type (mirrors the library's logical column types)."""

    def __init__(self, name: str) -> None:
        super().__init__(name)


class ModelColumn(ModelElement):
    """A column of a :class:`Table` with its data type and optional role."""

    def __init__(self, name: str, datatype: DataType | str, role: str = "feature", nullable: bool = True) -> None:
        super().__init__(name)
        self.datatype = datatype if isinstance(datatype, DataType) else DataType(str(datatype))
        self.role = role
        self.nullable = nullable


class Key(ModelElement):
    """A (primary or unique) key over a set of column names."""

    def __init__(self, name: str, column_names: Iterable[str], primary: bool = True) -> None:
        super().__init__(name)
        self.column_names = list(column_names)
        if not self.column_names:
            raise SchemaError("a key needs at least one column")
        self.primary = primary


class Table(ModelElement):
    """A table (class of records) with ordered columns and optional keys."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._columns: dict[str, ModelColumn] = {}
        self.keys: list[Key] = []

    # -- columns ---------------------------------------------------------------

    def add_column(self, column: ModelColumn) -> ModelColumn:
        if column.name in self._columns:
            raise SchemaError(f"table {self.name!r} already has a column {column.name!r}")
        self._columns[column.name] = column
        return column

    def column(self, name: str) -> ModelColumn:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._columns

    @property
    def columns(self) -> list[ModelColumn]:
        return list(self._columns.values())

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    # -- keys --------------------------------------------------------------------

    def add_key(self, key: Key) -> Key:
        for column_name in key.column_names:
            if column_name not in self._columns:
                raise SchemaError(f"key {key.name!r} references unknown column {column_name!r}")
        self.keys.append(key)
        return key

    def primary_key(self) -> Key | None:
        for key in self.keys:
            if key.primary:
                return key
        return None


class Schema(ModelElement):
    """A named collection of tables."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._tables: dict[str, Table] = {}

    def add_table(self, table: Table) -> Table:
        if table.name in self._tables:
            raise SchemaError(f"schema {self.name!r} already has a table {table.name!r}")
        self._tables[table.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"schema {self.name!r} has no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def tables(self) -> list[Table]:
        return list(self._tables.values())


class Catalog(ModelElement):
    """The root of a model: a named collection of schemas.

    One catalog typically represents one integrated OpenBI workspace; each
    open data source becomes a schema (or a table inside a shared schema).
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._schemas: dict[str, Schema] = {}

    def add_schema(self, schema: Schema) -> Schema:
        if schema.name in self._schemas:
            raise SchemaError(f"catalog {self.name!r} already has a schema {schema.name!r}")
        self._schemas[schema.name] = schema
        return schema

    def schema(self, name: str) -> Schema:
        try:
            return self._schemas[name]
        except KeyError:
            raise SchemaError(f"catalog {self.name!r} has no schema {name!r}") from None

    @property
    def schemas(self) -> list[Schema]:
        return list(self._schemas.values())

    def all_tables(self) -> list[Table]:
        """Every table across every schema of the catalog."""
        tables: list[Table] = []
        for schema in self._schemas.values():
            tables.extend(schema.tables)
        return tables

    def find_table(self, name: str) -> Table | None:
        """Look a table up by name across all schemas."""
        for schema in self._schemas.values():
            if schema.has_table(name):
                return schema.table(name)
        return None
