"""Serialisation of common-representation models (JSON dict and XMI-style XML)."""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any

from repro.exceptions import SchemaError
from repro.metamodel.elements import Catalog, DataType, Key, ModelColumn, Schema, Table


def model_to_dict(catalog: Catalog) -> dict[str, Any]:
    """Serialise a catalog (including annotations) to a JSON-compatible dict."""
    return {
        "name": catalog.name,
        "annotations": dict(catalog.annotations),
        "schemas": [
            {
                "name": schema.name,
                "annotations": dict(schema.annotations),
                "tables": [
                    {
                        "name": table.name,
                        "annotations": dict(table.annotations),
                        "columns": [
                            {
                                "name": column.name,
                                "datatype": column.datatype.name,
                                "role": column.role,
                                "nullable": column.nullable,
                                "annotations": dict(column.annotations),
                            }
                            for column in table.columns
                        ],
                        "keys": [
                            {"name": key.name, "columns": list(key.column_names), "primary": key.primary}
                            for key in table.keys
                        ],
                    }
                    for table in schema.tables
                ],
            }
            for schema in catalog.schemas
        ],
    }


def model_from_dict(payload: dict[str, Any]) -> Catalog:
    """Rebuild a catalog from :func:`model_to_dict` output."""
    if "name" not in payload:
        raise SchemaError("model payload has no catalog name")
    catalog = Catalog(payload["name"])
    catalog.annotations.update(payload.get("annotations", {}))
    for schema_payload in payload.get("schemas", []):
        schema = catalog.add_schema(Schema(schema_payload["name"]))
        schema.annotations.update(schema_payload.get("annotations", {}))
        for table_payload in schema_payload.get("tables", []):
            table = schema.add_table(Table(table_payload["name"]))
            table.annotations.update(table_payload.get("annotations", {}))
            for column_payload in table_payload.get("columns", []):
                column = ModelColumn(
                    column_payload["name"],
                    datatype=DataType(column_payload.get("datatype", "string")),
                    role=column_payload.get("role", "feature"),
                    nullable=bool(column_payload.get("nullable", True)),
                )
                column.annotations.update(column_payload.get("annotations", {}))
                table.add_column(column)
            for key_payload in table_payload.get("keys", []):
                table.add_key(
                    Key(key_payload["name"], key_payload.get("columns", []), primary=bool(key_payload.get("primary", True)))
                )
    return catalog


def model_to_xmi(catalog: Catalog) -> str:
    """Serialise a catalog to an XMI-flavoured XML document (CWM style).

    Annotations are emitted as ``taggedValue`` children, mirroring how CWM
    tools attach measured metadata to model elements.
    """
    root = ET.Element("XMI", attrib={"xmi.version": "1.1"})
    content = ET.SubElement(root, "XMI.content")
    catalog_element = ET.SubElement(content, "CWM.Catalog", attrib={"name": catalog.name})
    _append_annotations(catalog_element, catalog.annotations)
    for schema in catalog.schemas:
        schema_element = ET.SubElement(catalog_element, "CWM.Schema", attrib={"name": schema.name})
        _append_annotations(schema_element, schema.annotations)
        for table in schema.tables:
            table_element = ET.SubElement(schema_element, "CWM.Table", attrib={"name": table.name})
            _append_annotations(table_element, table.annotations)
            for column in table.columns:
                column_element = ET.SubElement(
                    table_element,
                    "CWM.Column",
                    attrib={
                        "name": column.name,
                        "type": column.datatype.name,
                        "role": column.role,
                        "nullable": str(column.nullable).lower(),
                    },
                )
                _append_annotations(column_element, column.annotations)
            for key in table.keys:
                ET.SubElement(
                    table_element,
                    "CWM.UniqueKey" if not key.primary else "CWM.PrimaryKey",
                    attrib={"name": key.name, "columns": ",".join(key.column_names)},
                )
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def _append_annotations(element: ET.Element, annotations: dict[str, Any]) -> None:
    for key, value in annotations.items():
        if isinstance(value, (str, int, float, bool)):
            ET.SubElement(element, "CWM.taggedValue", attrib={"tag": key, "value": str(value)})
