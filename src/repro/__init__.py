"""OpenBI: data-quality-aware, user-friendly data mining over Linked Open Data.

This package reproduces the framework described in the position paper
*"Open Business Intelligence: on the importance of data quality awareness in
user-friendly data mining"* (Mazón, Zubcoff, Garrigós, Espinosa, Rodríguez;
LWDM workshop @ EDBT 2012).

The library is organised in layers, bottom-up:

``repro.tabular``
    A typed, column-oriented dataset substrate (CSV/XML/HTML/JSON ingestion,
    relational transforms, descriptive statistics) built on numpy only.
``repro.lod``
    A Linked Open Data substrate: RDF terms, an indexed triple store, a small
    SPARQL-like query engine, Turtle/N-Triples serialisation, entity linking
    and a "tabulate" step that pivots a LOD graph into a high-dimensional
    dataset ready for mining.
``repro.metamodel``
    A CWM-like common representation of data sources (Catalog → Schema →
    Table → Column) that can be annotated with measured data quality criteria.
``repro.quality``
    Data quality criteria measurement: completeness, accuracy/noise,
    consistency, duplicates, correlation, class balance, dimensionality and
    outliers, aggregated into a :class:`~repro.quality.profile.DataQualityProfile`.
``repro.mining``
    From-scratch data mining algorithms (decision tree, naive Bayes, k-NN,
    logistic regression, rule induction, Apriori, k-means, agglomerative
    clustering, PCA, regression tree) with metrics and validation utilities.
``repro.core``
    The paper's primary contribution: controlled data-quality problem
    injection, the two-phase experiment campaign, the DQ4DM knowledge base and
    the advisor that recommends the most appropriate mining algorithm for a
    source given its measured data quality.
``repro.bi``
    The OpenBI front end: OLAP cubes, reports, dashboards, KPIs and sharing of
    results back as Linked Open Data.
``repro.datasets``
    Deterministic synthetic open-data generators (municipal budget, air
    quality, census, service requests) used as stand-ins for real LOD sources.
"""

from repro._version import __version__
from repro.exceptions import (
    ReproError,
    SchemaError,
    DataQualityError,
    MiningError,
    ExperimentError,
    KnowledgeBaseError,
)

__all__ = [
    "__version__",
    "ReproError",
    "SchemaError",
    "DataQualityError",
    "MiningError",
    "ExperimentError",
    "KnowledgeBaseError",
]
