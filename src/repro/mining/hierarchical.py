"""Agglomerative hierarchical clustering (single / complete / average linkage)."""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import MiningError
from repro.mining.base import Clusterer
from repro.mining.preprocessing import DatasetEncoder
from repro.tabular.dataset import Dataset


class AgglomerativeClusterer(Clusterer):
    """Bottom-up hierarchical clustering cut at ``n_clusters``.

    Parameters
    ----------
    n_clusters:
        Number of clusters to keep after merging.
    linkage:
        ``"single"``, ``"complete"`` or ``"average"``.
    """

    name = "agglomerative"

    def __init__(self, n_clusters: int = 3, linkage: str = "average") -> None:
        super().__init__()
        if n_clusters < 1:
            raise MiningError("n_clusters must be at least 1")
        if linkage not in ("single", "complete", "average"):
            raise MiningError(f"unknown linkage {linkage!r}")
        self.n_clusters = n_clusters
        self.linkage = linkage
        self.merge_history_: list[tuple[int, int, float]] = []

    def fit(self, dataset: Dataset) -> "AgglomerativeClusterer":
        encoder = DatasetEncoder(scale=True)
        X = encoder.fit_transform(dataset)
        n = X.shape[0]
        if n < self.n_clusters:
            raise MiningError(f"cannot form {self.n_clusters} clusters from {n} rows")

        distances = np.sqrt(((X[:, None, :] - X[None, :, :]) ** 2).sum(axis=2))
        clusters: dict[int, list[int]] = {i: [i] for i in range(n)}
        self.merge_history_ = []

        def cluster_distance(a: list[int], b: list[int]) -> float:
            block = distances[np.ix_(a, b)]
            if self.linkage == "single":
                return float(block.min())
            if self.linkage == "complete":
                return float(block.max())
            return float(block.mean())

        next_id = n
        while len(clusters) > self.n_clusters:
            best_pair = None
            best_distance = math.inf
            ids = sorted(clusters)
            for i in range(len(ids)):
                for j in range(i + 1, len(ids)):
                    d = cluster_distance(clusters[ids[i]], clusters[ids[j]])
                    if d < best_distance:
                        best_distance = d
                        best_pair = (ids[i], ids[j])
            if best_pair is None:
                break
            a, b = best_pair
            clusters[next_id] = clusters.pop(a) + clusters.pop(b)
            self.merge_history_.append((a, b, best_distance))
            next_id += 1

        labels = np.zeros(n, dtype=int)
        for label, (_, members) in enumerate(sorted(clusters.items())):
            for index in members:
                labels[index] = label
        self.labels_ = labels.tolist()
        self._fitted = True
        return self
