"""Naive Bayes classifier for mixed numeric/categorical features.

Numeric features use a per-class Gaussian likelihood; categorical, boolean and
datetime features use per-class frequency estimates with Laplace smoothing.
Missing feature values are simply skipped at prediction time, which makes the
algorithm comparatively robust to low completeness — one of the behaviours the
knowledge base is expected to learn (paper, §3.1).

Fitting and scoring run on the encoded-matrix views from
:mod:`repro.tabular.encoded`: per-class Gaussian parameters come from masked
array reductions, category tables from ``bincount`` over integer codes, and
log-likelihoods are accumulated feature-by-feature over whole columns in the
same order as the per-row loop (kept as :meth:`_log_likelihood` for fallback),
so batch predictions replicate the row path exactly.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any

import numpy as np

from repro.exceptions import MiningError
from repro.mining.base import Classifier, check_fitted
from repro.tabular.dataset import Column, Dataset, is_missing_value
from repro.tabular.encoded import EncodedDataset, encode_dataset

_MIN_VARIANCE = 1e-9


class NaiveBayesClassifier(Classifier):
    """Gaussian / multinomial naive Bayes with Laplace smoothing.

    Parameters
    ----------
    laplace:
        Additive smoothing constant for categorical likelihoods.
    """

    name = "naive_bayes"

    def __init__(self, laplace: float = 1.0) -> None:
        super().__init__()
        if laplace <= 0:
            raise MiningError("laplace smoothing constant must be positive")
        self.laplace = laplace
        self._priors: dict[str, float] = {}
        self._gaussians: dict[str, dict[str, tuple[float, float]]] = {}
        self._categorical: dict[str, dict[str, dict[str, float]]] = {}
        self._category_levels: dict[str, set[str]] = {}
        self._numeric_features: list[str] = []
        self._categorical_features: list[str] = []

    def _fit(self, dataset: Dataset, features: list[Column], target: Column) -> None:
        labels = [None if is_missing_value(v) else str(v) for v in target.tolist()]
        class_counts = Counter(label for label in labels if label is not None)
        total = sum(class_counts.values())
        self._priors = {cls: count / total for cls, count in class_counts.items()}

        self._numeric_features = [c.name for c in features if c.is_numeric()]
        self._categorical_features = [c.name for c in features if not c.is_numeric()]

        encoded = encode_dataset(dataset)
        class_order = list(class_counts)
        class_position = {cls: i for i, cls in enumerate(class_order)}
        label_codes = np.asarray(
            [-1 if label is None else class_position[label] for label in labels], dtype=np.int64
        )
        class_masks = [label_codes == i for i in range(len(class_order))]

        # Gaussian parameters per (class, numeric feature).
        self._gaussians = {cls: {} for cls in class_counts}
        for column in features:
            if not column.is_numeric():
                continue
            values, missing = encoded.numeric_view(column.name)
            present = ~missing
            for cls in class_counts:
                member = class_masks[class_position[cls]] & present
                if member.any():
                    selected = values[member]
                    mean = float(np.mean(selected))
                    var = float(np.var(selected)) + _MIN_VARIANCE
                else:
                    mean, var = 0.0, 1.0
                self._gaussians[cls][column.name] = (mean, var)

        # Frequency tables per (class, categorical feature).
        self._categorical = {cls: {} for cls in class_counts}
        self._category_levels = {}
        for column in features:
            if column.is_numeric():
                continue
            codes, vocabulary, _ = encoded.codes_view(column.name)
            levels = set(vocabulary)
            self._category_levels[column.name] = levels
            n_levels = max(len(levels), 1)
            for cls in class_counts:
                member = class_masks[class_position[cls]] & (codes >= 0)
                counts = np.bincount(codes[member], minlength=len(vocabulary))
                denom = int(counts.sum()) + self.laplace * n_levels
                self._categorical[cls][column.name] = {
                    level: (int(counts[j]) + self.laplace) / denom
                    for j, level in enumerate(vocabulary)
                }

    # -- row-at-a-time path (reference implementation / fallback) -------------

    def _log_likelihood(self, row: dict[str, Any], cls: str) -> float:
        score = math.log(self._priors.get(cls, 1e-12))
        for name in self._numeric_features:
            value = row.get(name)
            if is_missing_value(value):
                continue
            mean, var = self._gaussians[cls].get(name, (0.0, 1.0))
            try:
                x = float(value)
            except (TypeError, ValueError):
                continue
            score += -0.5 * math.log(2 * math.pi * var) - ((x - mean) ** 2) / (2 * var)
        for name in self._categorical_features:
            value = row.get(name)
            if is_missing_value(value):
                continue
            table = self._categorical[cls].get(name, {})
            levels = self._category_levels.get(name, set())
            default = self.laplace / (self.laplace * max(len(levels), 1) + 1.0)
            score += math.log(table.get(str(value), default))
        return score

    def _predict_row(self, row: dict[str, Any]) -> str:
        if not self._priors:
            raise MiningError("model has not been fitted")
        scores = {cls: self._log_likelihood(row, cls) for cls in self._priors}
        return max(sorted(scores), key=scores.get)

    # -- vectorized path -------------------------------------------------------

    def _batch_supported(self) -> bool:
        return self._uses_base_impl(NaiveBayesClassifier, "_log_likelihood", "_predict_row")

    def _log_likelihood_matrix(self, encoded: EncodedDataset, classes: list[str]) -> np.ndarray:
        """Column ``i`` holds the log-likelihood of ``classes[i]`` for every row.

        Per-feature terms are added to the score sequentially in the same
        feature order as :meth:`_log_likelihood`, with per-level log values
        precomputed via ``math.log``, so each cell equals the row path's float.
        """
        n = encoded.n_rows
        scores = np.empty((n, len(classes)))
        for ci, cls in enumerate(classes):
            score = np.full(n, math.log(self._priors.get(cls, 1e-12)))
            for name in self._numeric_features:
                values, missing = encoded.numeric_view(name)
                mean, var = self._gaussians[cls].get(name, (0.0, 1.0))
                present = ~missing
                if present.any():
                    term = (
                        -0.5 * math.log(2 * math.pi * var)
                        - ((values[present] - mean) ** 2) / (2 * var)
                    )
                    score[present] += term
            for name in self._categorical_features:
                codes, vocabulary, _ = encoded.codes_view(name)
                table = self._categorical[cls].get(name, {})
                levels = self._category_levels.get(name, set())
                default = self.laplace / (self.laplace * max(len(levels), 1) + 1.0)
                log_lookup = np.asarray(
                    [math.log(table.get(level, default)) for level in vocabulary], dtype=float
                )
                present = codes >= 0
                if present.any():
                    score[present] += log_lookup[codes[present]]
            scores[:, ci] = score
        return scores

    def _predict_batch(self, encoded: EncodedDataset) -> list[str] | None:
        if not self._batch_supported() or not self._priors:
            return None
        classes = sorted(self._priors)
        scores = self._log_likelihood_matrix(encoded, classes)
        # argmax picks the first maximum; classes are sorted, matching the
        # max(sorted(scores), key=scores.get) tie-break of the row path.
        return [classes[i] for i in scores.argmax(axis=1).tolist()]

    def _predict_proba_batch(self, encoded: EncodedDataset) -> list[dict[str, float]] | None:
        if not self._batch_supported() or not self._priors:
            return None
        class_order = list(self._priors)
        scores = self._log_likelihood_matrix(encoded, class_order)
        results = []
        for i in range(encoded.n_rows):
            log_scores = {cls: float(scores[i, ci]) for ci, cls in enumerate(class_order)}
            peak = max(log_scores.values())
            exp_scores = {cls: math.exp(score - peak) for cls, score in log_scores.items()}
            norm = sum(exp_scores.values()) or 1.0
            results.append({cls: exp_scores.get(cls, 0.0) / norm for cls in self.classes_})
        return results

    def predict_proba(self, dataset: Dataset) -> list[dict[str, float]]:
        check_fitted(self)
        batch = self._predict_proba_batch(encode_dataset(dataset))
        if batch is not None:
            return batch
        results = []
        for row in dataset.iter_rows():
            features_only = {name: row.get(name) for name in self.feature_names_}
            log_scores = {cls: self._log_likelihood(features_only, cls) for cls in self._priors}
            peak = max(log_scores.values())
            exp_scores = {cls: math.exp(score - peak) for cls, score in log_scores.items()}
            norm = sum(exp_scores.values()) or 1.0
            probs = {cls: exp_scores.get(cls, 0.0) / norm for cls in self.classes_}
            results.append(probs)
        return results
