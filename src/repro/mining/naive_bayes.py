"""Naive Bayes classifier for mixed numeric/categorical features.

Numeric features use a per-class Gaussian likelihood; categorical, boolean and
datetime features use per-class frequency estimates with Laplace smoothing.
Missing feature values are simply skipped at prediction time, which makes the
algorithm comparatively robust to low completeness — one of the behaviours the
knowledge base is expected to learn (paper, §3.1).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Any

import numpy as np

from repro.exceptions import MiningError
from repro.mining.base import Classifier
from repro.tabular.dataset import Column, Dataset, is_missing_value

_MIN_VARIANCE = 1e-9


class NaiveBayesClassifier(Classifier):
    """Gaussian / multinomial naive Bayes with Laplace smoothing.

    Parameters
    ----------
    laplace:
        Additive smoothing constant for categorical likelihoods.
    """

    name = "naive_bayes"

    def __init__(self, laplace: float = 1.0) -> None:
        super().__init__()
        if laplace <= 0:
            raise MiningError("laplace smoothing constant must be positive")
        self.laplace = laplace
        self._priors: dict[str, float] = {}
        self._gaussians: dict[str, dict[str, tuple[float, float]]] = {}
        self._categorical: dict[str, dict[str, dict[str, float]]] = {}
        self._category_levels: dict[str, set[str]] = {}
        self._numeric_features: list[str] = []
        self._categorical_features: list[str] = []

    def _fit(self, dataset: Dataset, features: list[Column], target: Column) -> None:
        labels = [None if is_missing_value(v) else str(v) for v in target.tolist()]
        class_counts = Counter(l for l in labels if l is not None)
        total = sum(class_counts.values())
        self._priors = {cls: count / total for cls, count in class_counts.items()}

        self._numeric_features = [c.name for c in features if c.is_numeric()]
        self._categorical_features = [c.name for c in features if not c.is_numeric()]

        # Gaussian parameters per (class, numeric feature).
        self._gaussians = {cls: {} for cls in class_counts}
        for column in features:
            if not column.is_numeric():
                continue
            per_class: dict[str, list[float]] = defaultdict(list)
            for value, label in zip(column.tolist(), labels):
                if label is None or is_missing_value(value):
                    continue
                per_class[label].append(float(value))
            for cls in class_counts:
                values = per_class.get(cls, [])
                if values:
                    mean = float(np.mean(values))
                    var = float(np.var(values)) + _MIN_VARIANCE
                else:
                    mean, var = 0.0, 1.0
                self._gaussians[cls][column.name] = (mean, var)

        # Frequency tables per (class, categorical feature).
        self._categorical = {cls: {} for cls in class_counts}
        self._category_levels = {}
        for column in features:
            if column.is_numeric():
                continue
            levels = {str(v) for v in column.distinct()}
            self._category_levels[column.name] = levels
            per_class: dict[str, Counter] = {cls: Counter() for cls in class_counts}
            for value, label in zip(column.tolist(), labels):
                if label is None or is_missing_value(value):
                    continue
                per_class[label][str(value)] += 1
            for cls in class_counts:
                counts = per_class[cls]
                denom = sum(counts.values()) + self.laplace * max(len(levels), 1)
                self._categorical[cls][column.name] = {
                    level: (counts.get(level, 0) + self.laplace) / denom for level in levels
                }

    def _log_likelihood(self, row: dict[str, Any], cls: str) -> float:
        score = math.log(self._priors.get(cls, 1e-12))
        for name in self._numeric_features:
            value = row.get(name)
            if is_missing_value(value):
                continue
            mean, var = self._gaussians[cls].get(name, (0.0, 1.0))
            try:
                x = float(value)
            except (TypeError, ValueError):
                continue
            score += -0.5 * math.log(2 * math.pi * var) - ((x - mean) ** 2) / (2 * var)
        for name in self._categorical_features:
            value = row.get(name)
            if is_missing_value(value):
                continue
            table = self._categorical[cls].get(name, {})
            levels = self._category_levels.get(name, set())
            default = self.laplace / (self.laplace * max(len(levels), 1) + 1.0)
            score += math.log(table.get(str(value), default))
        return score

    def _predict_row(self, row: dict[str, Any]) -> str:
        if not self._priors:
            raise MiningError("model has not been fitted")
        scores = {cls: self._log_likelihood(row, cls) for cls in self._priors}
        return max(sorted(scores), key=scores.get)

    def predict_proba(self, dataset: Dataset) -> list[dict[str, float]]:
        from repro.mining.base import check_fitted

        check_fitted(self)
        results = []
        for row in dataset.iter_rows():
            features_only = {name: row.get(name) for name in self.feature_names_}
            log_scores = {cls: self._log_likelihood(features_only, cls) for cls in self._priors}
            peak = max(log_scores.values())
            exp_scores = {cls: math.exp(score - peak) for cls, score in log_scores.items()}
            norm = sum(exp_scores.values()) or 1.0
            probs = {cls: exp_scores.get(cls, 0.0) / norm for cls in self.classes_}
            results.append(probs)
        return results
