"""Apriori frequent-itemset mining and association rule generation.

Association rules are the pattern family whose quality measurement the paper
cites from Berti-Équille; :func:`Apriori.rules` attaches support, confidence,
lift, leverage and conviction to every rule so the experiment harness can
study how data quality problems change the rule set.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from itertools import combinations
from typing import Any

from repro.exceptions import MiningError
from repro.mining.metrics import rule_interestingness
from repro.tabular.dataset import ColumnRole, Dataset, is_missing_value


Item = str
Itemset = frozenset


def dataset_to_transactions(dataset: Dataset, columns: Sequence[str] | None = None, bins: int = 3) -> list[set[str]]:
    """Convert a dataset into attribute=value transactions.

    Numeric columns are discretised into ``bins`` equal-width bins; missing
    cells contribute no item.  Identifier/metadata columns are skipped.
    """
    from repro.tabular.transforms import discretize

    working = dataset
    if columns is None:
        columns = [
            c.name
            for c in dataset.columns
            if c.role not in (ColumnRole.IDENTIFIER, ColumnRole.METADATA)
        ]
    for name in columns:
        if working[name].is_numeric():
            try:
                working = discretize(working, name, bins=bins, labels=["low", "mid", "high", "very_high"][:bins] if bins <= 4 else None)
            except Exception:
                continue
    transactions: list[set[str]] = []
    for row in working.iter_rows():
        items = {
            f"{name}={row[name]}"
            for name in columns
            if name in working and not is_missing_value(row[name])
        }
        transactions.append(items)
    return transactions


@dataclass(frozen=True)
class AssociationRule:
    """An association rule ``antecedent → consequent`` with its quality measures."""

    antecedent: frozenset
    consequent: frozenset
    support: float
    confidence: float
    lift: float
    leverage: float
    conviction: float

    def as_text(self) -> str:
        lhs = ", ".join(sorted(self.antecedent))
        rhs = ", ".join(sorted(self.consequent))
        return f"{{{lhs}}} => {{{rhs}}} (supp={self.support:.3f}, conf={self.confidence:.3f}, lift={self.lift:.2f})"

    def as_dict(self) -> dict[str, Any]:
        return {
            "antecedent": " & ".join(sorted(self.antecedent)),
            "consequent": " & ".join(sorted(self.consequent)),
            "support": self.support,
            "confidence": self.confidence,
            "lift": self.lift,
            "leverage": self.leverage,
            "conviction": self.conviction if self.conviction != float("inf") else 1e9,
        }


class Apriori:
    """Classic Apriori with support-based candidate pruning.

    Parameters
    ----------
    min_support:
        Minimum relative support of frequent itemsets.
    min_confidence:
        Minimum confidence of generated rules.
    max_itemset_size:
        Upper bound on itemset cardinality (keeps the lattice tractable on
        high-dimensional LOD tabulations).
    """

    def __init__(self, min_support: float = 0.1, min_confidence: float = 0.6, max_itemset_size: int = 4) -> None:
        if not 0 < min_support <= 1:
            raise MiningError("min_support must be in (0, 1]")
        if not 0 < min_confidence <= 1:
            raise MiningError("min_confidence must be in (0, 1]")
        self.min_support = min_support
        self.min_confidence = min_confidence
        self.max_itemset_size = max_itemset_size
        self.itemsets_: dict[frozenset, float] = {}
        self._n_transactions = 0

    # -- frequent itemsets -------------------------------------------------------

    def fit(self, transactions: Sequence[Iterable[str]]) -> "Apriori":
        """Mine frequent itemsets from the transactions."""
        transactions = [frozenset(t) for t in transactions]
        self._n_transactions = len(transactions)
        if self._n_transactions == 0:
            raise MiningError("no transactions to mine")
        self.itemsets_ = {}

        # 1-itemsets
        counts: dict[frozenset, int] = {}
        for transaction in transactions:
            for item in transaction:
                key = frozenset([item])
                counts[key] = counts.get(key, 0) + 1
        current = {
            itemset: count / self._n_transactions
            for itemset, count in counts.items()
            if count / self._n_transactions >= self.min_support
        }
        self.itemsets_.update(current)

        size = 1
        while current and size < self.max_itemset_size:
            size += 1
            candidates = self._generate_candidates(list(current), size)
            if not candidates:
                break
            counts = {c: 0 for c in candidates}
            for transaction in transactions:
                for candidate in candidates:
                    if candidate <= transaction:
                        counts[candidate] += 1
            current = {
                itemset: count / self._n_transactions
                for itemset, count in counts.items()
                if count / self._n_transactions >= self.min_support
            }
            self.itemsets_.update(current)
        return self

    def _generate_candidates(self, previous: list[frozenset], size: int) -> set[frozenset]:
        candidates: set[frozenset] = set()
        for i in range(len(previous)):
            for j in range(i + 1, len(previous)):
                union = previous[i] | previous[j]
                if len(union) != size:
                    continue
                # Apriori pruning: every (size-1)-subset must be frequent.
                if all(frozenset(sub) in self.itemsets_ for sub in combinations(union, size - 1)):
                    candidates.add(union)
        return candidates

    # -- rules ----------------------------------------------------------------------

    def rules(self) -> list[AssociationRule]:
        """Generate every rule above ``min_confidence`` from the frequent itemsets."""
        if not self.itemsets_:
            raise MiningError("fit() must be called before rules()")
        generated: list[AssociationRule] = []
        for itemset, support in self.itemsets_.items():
            if len(itemset) < 2:
                continue
            items = sorted(itemset)
            for r in range(1, len(items)):
                for antecedent_items in combinations(items, r):
                    antecedent = frozenset(antecedent_items)
                    consequent = itemset - antecedent
                    support_antecedent = self.itemsets_.get(antecedent)
                    support_consequent = self.itemsets_.get(consequent)
                    if support_antecedent is None or support_consequent is None:
                        continue
                    measures = rule_interestingness(support_antecedent, support_consequent, support)
                    if measures["confidence"] < self.min_confidence:
                        continue
                    generated.append(
                        AssociationRule(
                            antecedent=antecedent,
                            consequent=consequent,
                            support=support,
                            confidence=measures["confidence"],
                            lift=measures["lift"],
                            leverage=measures["leverage"],
                            conviction=measures["conviction"],
                        )
                    )
        generated.sort(key=lambda rule: (-rule.confidence, -rule.support, str(sorted(rule.antecedent))))
        return generated

    def frequent_itemsets(self, min_size: int = 1) -> list[tuple[frozenset, float]]:
        """Frequent itemsets of at least ``min_size`` items, by descending support."""
        selected = [(itemset, support) for itemset, support in self.itemsets_.items() if len(itemset) >= min_size]
        selected.sort(key=lambda pair: (-pair[1], str(sorted(pair[0]))))
        return selected
