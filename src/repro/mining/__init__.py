"""Data mining algorithms implemented from scratch.

The paper's experiments run classical mining techniques over LOD-derived
datasets under controlled data quality degradations.  This subpackage contains
self-contained implementations of the algorithm families the paper mentions
(classification, association rules, clustering, dimensionality reduction)
together with metrics, validation utilities and preprocessing.

Classifiers and clusterers consume :class:`~repro.tabular.dataset.Dataset`
objects directly (mixed numeric/categorical features, missing values allowed),
so the data-quality experiments exercise each algorithm's own robustness
rather than a shared cleaning pipeline.
"""

from repro.mining.base import Classifier, Clusterer, Transformer, check_fitted
from repro.mining.preprocessing import (
    DatasetEncoder,
    impute,
    standardize,
    variance_threshold,
    correlation_filter,
    information_gain_ranking,
    select_features,
)
from repro.mining.metrics import (
    accuracy,
    precision_recall_f1,
    macro_f1,
    cohen_kappa,
    confusion_matrix,
    mean_squared_error,
    mean_absolute_error,
    r2_score,
    silhouette_score,
    sum_of_squared_errors,
)
from repro.mining.validation import train_test_split, stratified_kfold, cross_validate, EvaluationResult
from repro.mining.tree import DecisionTreeClassifier
from repro.mining.regression_tree import RegressionTreeLearner
from repro.mining.naive_bayes import NaiveBayesClassifier
from repro.mining.knn import KNNClassifier
from repro.mining.logistic import LogisticRegressionClassifier
from repro.mining.rule_induction import OneRClassifier, PrismClassifier
from repro.mining.apriori import Apriori, AssociationRule, dataset_to_transactions
from repro.mining.kmeans import KMeansClusterer
from repro.mining.hierarchical import AgglomerativeClusterer
from repro.mining.pca import PCATransformer
from repro.mining.ensemble import BaggingClassifier, RandomSubspaceForest

#: Registry of classifier factories by canonical name, used by the experiment
#: harness and the advisor ("ALGORITHM 1 … ALGORITHM N" in Figure 2).
CLASSIFIER_REGISTRY = {
    "decision_tree": DecisionTreeClassifier,
    "naive_bayes": NaiveBayesClassifier,
    "knn": KNNClassifier,
    "logistic_regression": LogisticRegressionClassifier,
    "one_r": OneRClassifier,
    "prism": PrismClassifier,
    "bagged_trees": BaggingClassifier,
}

__all__ = [
    "Classifier",
    "Clusterer",
    "Transformer",
    "check_fitted",
    "DatasetEncoder",
    "impute",
    "standardize",
    "variance_threshold",
    "correlation_filter",
    "information_gain_ranking",
    "select_features",
    "accuracy",
    "precision_recall_f1",
    "macro_f1",
    "cohen_kappa",
    "confusion_matrix",
    "mean_squared_error",
    "mean_absolute_error",
    "r2_score",
    "silhouette_score",
    "sum_of_squared_errors",
    "train_test_split",
    "stratified_kfold",
    "cross_validate",
    "EvaluationResult",
    "DecisionTreeClassifier",
    "RegressionTreeLearner",
    "NaiveBayesClassifier",
    "KNNClassifier",
    "LogisticRegressionClassifier",
    "OneRClassifier",
    "PrismClassifier",
    "Apriori",
    "AssociationRule",
    "dataset_to_transactions",
    "KMeansClusterer",
    "AgglomerativeClusterer",
    "PCATransformer",
    "BaggingClassifier",
    "RandomSubspaceForest",
    "CLASSIFIER_REGISTRY",
]
