"""Train/test splitting, stratified cross-validation and evaluation records."""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import MiningError
from repro.mining.metrics import classification_report
from repro.parallel import ViewHandle, effective_n_jobs, parallel_map
from repro.tabular.dataset import Dataset, is_missing_value
from repro.tabular.encoded import encode_dataset


def train_test_split(
    dataset: Dataset,
    test_fraction: float = 0.3,
    seed: int = 0,
    stratify: bool = True,
) -> tuple[Dataset, Dataset]:
    """Split a dataset into (train, test), optionally stratified by the target."""
    if not 0.0 < test_fraction < 1.0:
        raise MiningError("test_fraction must be in (0, 1)")
    n = dataset.n_rows
    if n < 4:
        raise MiningError("dataset too small to split")
    rng = random.Random(seed)
    if stratify and dataset.has_target():
        groups: dict[str, list[int]] = {}
        target_values = dataset.target_column().tolist()
        for i, value in enumerate(target_values):
            key = "<missing>" if is_missing_value(value) else str(value)
            groups.setdefault(key, []).append(i)
        test_indices: list[int] = []
        for indices in groups.values():
            shuffled = indices[:]
            rng.shuffle(shuffled)
            n_test = max(1, int(round(len(shuffled) * test_fraction))) if len(shuffled) > 1 else 0
            test_indices.extend(shuffled[:n_test])
    else:
        order = list(range(n))
        rng.shuffle(order)
        test_indices = order[: max(1, int(round(n * test_fraction)))]
    test_set = set(test_indices)
    train_indices = [i for i in range(n) if i not in test_set]
    if not train_indices or not test_indices:
        raise MiningError("split produced an empty partition; adjust test_fraction")
    return dataset.take(sorted(train_indices)), dataset.take(sorted(test_indices))


def stratified_kfold(dataset: Dataset, k: int = 5, seed: int = 0) -> list[tuple[list[int], list[int]]]:
    """Return ``k`` (train_indices, test_indices) folds stratified by the target."""
    if k < 2:
        raise MiningError("k must be at least 2")
    if k > dataset.n_rows:
        raise MiningError(f"cannot make {k} folds from {dataset.n_rows} rows")
    rng = random.Random(seed)
    if dataset.has_target():
        groups: dict[str, list[int]] = {}
        for i, value in enumerate(dataset.target_column().tolist()):
            key = "<missing>" if is_missing_value(value) else str(value)
            groups.setdefault(key, []).append(i)
    else:
        groups = {"all": list(range(dataset.n_rows))}
    fold_assignment: dict[int, int] = {}
    for indices in groups.values():
        shuffled = indices[:]
        rng.shuffle(shuffled)
        for position, index in enumerate(shuffled):
            fold_assignment[index] = position % k
    folds: list[tuple[list[int], list[int]]] = []
    for fold in range(k):
        test = sorted(i for i, f in fold_assignment.items() if f == fold)
        train = sorted(i for i, f in fold_assignment.items() if f != fold)
        if not test or not train:
            raise MiningError("a fold ended up empty; use a smaller k")
        folds.append((train, test))
    return folds


@dataclass
class EvaluationResult:
    """Aggregated outcome of evaluating one classifier on one dataset."""

    algorithm: str
    dataset: str
    accuracy: float
    macro_f1: float
    kappa: float
    fold_accuracies: list[float] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def accuracy_std(self) -> float:
        """Standard deviation of the per-fold accuracies (0 for a single split)."""
        if len(self.fold_accuracies) < 2:
            return 0.0
        return float(np.std(self.fold_accuracies))

    def as_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "accuracy": self.accuracy,
            "macro_f1": self.macro_f1,
            "kappa": self.kappa,
            "accuracy_std": self.accuracy_std,
            **self.extras,
        }


def _cv_fold(
    context: dict[str, Any], fold_index: int
) -> tuple[list[str], list[str], float, str]:
    """Train and evaluate one CV fold; the unit shared by both execution tiers.

    Returns ``(truth, predicted, fold_accuracy, algorithm_name)`` for the
    fold, so :func:`cross_validate` merges folds identically whether they
    ran in-process or on a worker pool.
    """
    working = context["view"].resolve()
    encoded = encode_dataset(working)
    target_name = context["target_name"]
    train_idx, test_idx = context["folds"][fold_index]
    train, test = encoded.take(train_idx), encoded.take(test_idx)
    model = context["factory"]()
    model.fit(train)
    predicted = [str(p) for p in model.predict(test)]
    truth = [str(v) for v in test[target_name].tolist()]
    correct = sum(1 for a, b in zip(truth, predicted) if a == b)
    return truth, predicted, correct / len(truth), getattr(model, "name", type(model).__name__)


def cross_validate(
    classifier_factory: Callable[[], Any],
    dataset: Dataset,
    k: int = 5,
    seed: int = 0,
    n_jobs: int | None = None,
) -> EvaluationResult:
    """Stratified k-fold cross-validation of a classifier factory.

    ``classifier_factory`` is called once per fold so every fold trains a
    fresh model.  Rows whose target is missing are excluded from evaluation.
    ``n_jobs`` fans the folds over a worker pool (see :mod:`repro.parallel`);
    the merged result is bit-identical to the sequential run at any worker
    count, because both tiers run the same per-fold unit and folds are
    merged in fold order.
    """
    target_name = dataset.target_column().name
    labelled = [i for i, v in enumerate(dataset[target_name].tolist()) if not is_missing_value(v)]
    if len(labelled) < k:
        raise MiningError("not enough labelled rows for the requested number of folds")

    # Encode the input dataset once (reusing its instance cache — e.g. the
    # encoding the advisor's quality profiling already built) and materialise
    # the labelled subset and every fold below by slicing the cached encoded
    # arrays with index arrays instead of re-encoding (or re-coercing)
    # columns from Python objects.
    if len(labelled) == dataset.n_rows:
        working = dataset
    else:
        working = encode_dataset(dataset).take(labelled)
    encode_dataset(working)  # seed the instance cache shared with workers
    folds = stratified_kfold(working, k=k, seed=seed)
    context = {
        "view": ViewHandle(working),
        "factory": classifier_factory,
        "target_name": target_name,
        "folds": folds,
    }
    n_workers = effective_n_jobs(n_jobs)
    fold_results = None
    if n_workers > 1 and len(folds) > 1:
        fold_results = parallel_map(
            _cv_fold, len(folds), context=context, n_jobs=n_workers, error_cls=MiningError
        )
    if fold_results is None:
        fold_results = [_cv_fold(context, i) for i in range(len(folds))]
    truths: list[str] = []
    predictions: list[str] = []
    fold_accuracies: list[float] = []
    algorithm_name = "unknown"
    for truth, predicted, fold_accuracy, algorithm_name in fold_results:
        truths.extend(truth)
        predictions.extend(predicted)
        fold_accuracies.append(fold_accuracy)
    report = classification_report(truths, predictions)
    return EvaluationResult(
        algorithm=algorithm_name,
        dataset=dataset.name,
        accuracy=report["accuracy"],
        macro_f1=report["macro_f1"],
        kappa=report["kappa"],
        fold_accuracies=fold_accuracies,
    )


def holdout_evaluate(
    classifier_factory: Callable[[], Any],
    train: Dataset,
    test: Dataset,
) -> EvaluationResult:
    """Train on ``train`` and evaluate on ``test`` with the standard metrics."""
    model = classifier_factory()
    model.fit(train)
    target_name = train.target_column().name
    truth = [str(v) for v in test[target_name].tolist()]
    predicted = [str(p) for p in model.predict(test)]
    report = classification_report(truth, predicted)
    return EvaluationResult(
        algorithm=getattr(model, "name", type(model).__name__),
        dataset=train.name,
        accuracy=report["accuracy"],
        macro_f1=report["macro_f1"],
        kappa=report["kappa"],
        fold_accuracies=[report["accuracy"]],
    )
