"""Regression tree (CART-style, variance reduction).

Regression trees are the second dimensionality-reduction / modelling technique
the paper names alongside PCA.  The learner predicts a numeric target and can
also be used for tree-based feature relevance (which attributes were split on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import MiningError
from repro.tabular.dataset import ColumnRole, Dataset, is_missing_value


@dataclass
class _RegressionNode:
    is_leaf: bool
    value: float = 0.0
    n_samples: int = 0
    feature: str | None = None
    feature_kind: str | None = None
    threshold: float | None = None
    children: dict[Any, "_RegressionNode"] = field(default_factory=dict)
    majority_branch: Any = None


class RegressionTreeLearner:
    """Binary/multiway regression tree minimising within-node variance.

    Parameters mirror :class:`~repro.mining.tree.DecisionTreeClassifier`.
    """

    name = "regression_tree"

    def __init__(self, max_depth: int = 8, min_samples_split: int = 8, min_variance_reduction: float = 1e-6, max_thresholds: int = 24) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_variance_reduction = min_variance_reduction
        self.max_thresholds = max_thresholds
        self.root_: _RegressionNode | None = None
        self.feature_names_: list[str] = []
        self.target_name_: str | None = None
        self._feature_kinds: dict[str, str] = {}
        self._fitted = False

    def fit(self, dataset: Dataset, target: str | None = None) -> "RegressionTreeLearner":
        """Fit on ``dataset``; the target is the named numeric column (or the role-target)."""
        if target is None:
            target_column = dataset.target_column()
        else:
            target_column = dataset[target]
        if not target_column.is_numeric():
            raise MiningError("regression target must be numeric")
        features = [
            c for c in dataset.columns
            if c.name != target_column.name and c.role == ColumnRole.FEATURE
        ]
        if not features:
            raise MiningError("dataset has no feature columns")
        self.feature_names_ = [c.name for c in features]
        self.target_name_ = target_column.name
        self._feature_kinds = {c.name: ("numeric" if c.is_numeric() else "categorical") for c in features}

        rows = []
        values = []
        for i, row in enumerate(dataset.iter_rows()):
            y = target_column[i]
            if is_missing_value(y):
                continue
            rows.append({name: row[name] for name in self.feature_names_})
            values.append(float(y))
        if not rows:
            raise MiningError("no rows with a non-missing target")
        self.root_ = self._build(rows, values, depth=0)
        self._fitted = True
        return self

    def _build(self, rows: list[dict[str, Any]], values: list[float], depth: int) -> _RegressionNode:
        mean = float(np.mean(values))
        node_variance = float(np.var(values))
        if depth >= self.max_depth or len(rows) < self.min_samples_split or node_variance == 0.0:
            return _RegressionNode(is_leaf=True, value=mean, n_samples=len(rows))
        best = self._best_split(rows, values, node_variance)
        if best is None:
            return _RegressionNode(is_leaf=True, value=mean, n_samples=len(rows))
        feature, kind, threshold, partitions = best
        node = _RegressionNode(
            is_leaf=False, value=mean, n_samples=len(rows), feature=feature, feature_kind=kind, threshold=threshold
        )
        largest_branch, largest_size = None, -1
        for branch, indices in partitions.items():
            node.children[branch] = self._build([rows[i] for i in indices], [values[i] for i in indices], depth + 1)
            if len(indices) > largest_size:
                largest_size = len(indices)
                largest_branch = branch
        node.majority_branch = largest_branch
        return node

    def _best_split(self, rows, values, parent_variance):
        n = len(rows)
        best_reduction = self.min_variance_reduction
        best = None
        for feature, kind in self._feature_kinds.items():
            if kind == "numeric":
                pairs, missing = [], []
                for i, row in enumerate(rows):
                    v = row.get(feature)
                    if is_missing_value(v):
                        missing.append(i)
                    else:
                        try:
                            pairs.append((float(v), i))
                        except (TypeError, ValueError):
                            missing.append(i)
                if len(pairs) < 2:
                    continue
                unique = sorted({v for v, _ in pairs})
                if len(unique) < 2:
                    continue
                if len(unique) - 1 > self.max_thresholds:
                    positions = np.linspace(0, len(unique) - 2, self.max_thresholds).astype(int)
                    thresholds = [(unique[p] + unique[p + 1]) / 2 for p in positions]
                else:
                    thresholds = [(a + b) / 2 for a, b in zip(unique, unique[1:])]
                for threshold in thresholds:
                    left = [i for v, i in pairs if v <= threshold]
                    right = [i for v, i in pairs if v > threshold]
                    if not left or not right:
                        continue
                    (left if len(left) >= len(right) else right).extend(missing)
                    reduction = self._variance_reduction(values, [left, right], parent_variance, n)
                    if reduction > best_reduction:
                        best_reduction = reduction
                        best = (feature, kind, threshold, {"le": left, "gt": right})
            else:
                partitions: dict[Any, list[int]] = {}
                for i, row in enumerate(rows):
                    v = row.get(feature)
                    key = "<missing>" if is_missing_value(v) else str(v)
                    partitions.setdefault(key, []).append(i)
                if len(partitions) < 2:
                    continue
                reduction = self._variance_reduction(values, list(partitions.values()), parent_variance, n)
                if reduction > best_reduction:
                    best_reduction = reduction
                    best = (feature, kind, None, partitions)
        return best

    @staticmethod
    def _variance_reduction(values, partitions, parent_variance, n):
        weighted = 0.0
        for indices in partitions:
            if not indices:
                continue
            subset = [values[i] for i in indices]
            weighted += (len(indices) / n) * float(np.var(subset))
        return parent_variance - weighted

    def predict(self, dataset: Dataset) -> list[float]:
        """Predict the numeric target for every row."""
        if not self._fitted or self.root_ is None:
            raise MiningError("RegressionTreeLearner must be fitted before predict")
        predictions = []
        for row in dataset.iter_rows():
            node = self.root_
            while not node.is_leaf:
                value = row.get(node.feature)
                if is_missing_value(value):
                    branch = node.majority_branch
                elif node.feature_kind == "numeric":
                    try:
                        branch = "le" if float(value) <= node.threshold else "gt"
                    except (TypeError, ValueError):
                        branch = node.majority_branch
                else:
                    branch = str(value)
                    if branch not in node.children:
                        branch = node.majority_branch
                child = node.children.get(branch)
                if child is None:
                    break
                node = child
            predictions.append(node.value)
        return predictions

    def used_features(self) -> list[str]:
        """Features that appear in at least one split (a structure-aware relevance set)."""
        if self.root_ is None:
            raise MiningError("RegressionTreeLearner has not been fitted")
        used: set[str] = set()

        def walk(node: _RegressionNode) -> None:
            if node.is_leaf:
                return
            used.add(node.feature)
            for child in node.children.values():
                walk(child)

        walk(self.root_)
        return sorted(used)
