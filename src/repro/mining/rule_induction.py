"""Rule-induction classifiers: OneR and PRISM.

Both algorithms produce explicit IF/THEN rules, which is the most readable
model family for the non-expert users OpenBI targets.  Numeric features are
discretised into equal-width bins internally; missing values form their own
``"<missing>"`` category so incompleteness directly shows up in the rules.

Induction and prediction run on the encoded-matrix views from
:mod:`repro.tabular.encoded`: discretisation becomes a ``searchsorted`` over
the bin edges, contingency tables come from ``bincount`` over integer codes,
and the coverage/accuracy of every candidate PRISM condition is a boolean-mask
reduction over the code matrix.  The historical row-at-a-time implementations
are retained as the reference paths; candidate values are visited in sorted
order on both paths (the precision/coverage comparisons and tie-breaks are the
same scalar operations), so the encoded fits induce *identical* rules and the
batch predictions return exactly the labels the row loops would.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import MiningError
from repro.mining.base import Classifier
from repro.tabular.dataset import Column, Dataset, is_missing_value
from repro.tabular.encoded import EncodedDataset, encode_dataset, merge_missing_level

_MISSING = "<missing>"


def _bin_edges(values: list[float], bins: int) -> list[float]:
    low, high = min(values), max(values)
    if high <= low:
        return [low]
    return list(np.linspace(low, high, bins + 1))[1:-1]


def _discretise_value(value: Any, edges: list[float]) -> str:
    if is_missing_value(value):
        return _MISSING
    try:
        x = float(value)
    except (TypeError, ValueError):
        return _MISSING
    index = 0
    for edge in edges:
        if x > edge:
            index += 1
        else:
            break
    return f"bin{index}"


class _DiscretisingClassifier(Classifier):
    """Shared machinery: fit-time discretisation of numeric features."""

    def __init__(self, bins: int = 4) -> None:
        super().__init__()
        if bins < 2:
            raise MiningError("bins must be at least 2")
        self.bins = bins
        self._edges: dict[str, list[float]] = {}
        self._numeric: set[str] = set()

    # -- row-at-a-time path (reference implementation / fallback) -------------

    def _prepare_rows(self, dataset: Dataset, features: list[Column], target: Column, fit: bool):
        if fit:
            self._numeric = {c.name for c in features if c.is_numeric()}
            self._edges = {}
            for column in features:
                if not column.is_numeric():
                    continue
                present = [float(v) for v in column.non_missing()]
                self._edges[column.name] = _bin_edges(present, self.bins) if present else []
        rows = []
        labels = []
        target_values = target.tolist() if target is not None else [None] * dataset.n_rows
        feature_names = [c.name for c in features]
        for i, raw in enumerate(dataset.iter_rows()):
            row = {}
            for name in feature_names:
                value = raw.get(name)
                if name in self._numeric:
                    row[name] = _discretise_value(value, self._edges.get(name, []))
                else:
                    row[name] = _MISSING if is_missing_value(value) else str(value)
            rows.append(row)
            label = target_values[i]
            labels.append(None if label is None or is_missing_value(label) else str(label))
        return rows, labels

    def _discretise_row(self, row: dict[str, Any]) -> dict[str, str]:
        out = {}
        for name in self.feature_names_:
            value = row.get(name)
            if name in self._numeric:
                out[name] = _discretise_value(value, self._edges.get(name, []))
            else:
                out[name] = _MISSING if is_missing_value(value) else str(value)
        return out

    # -- encoded (vectorized) machinery ----------------------------------------

    def _fit_discretisation(self, features: list[Column], encoded: EncodedDataset) -> None:
        """Learn the numeric bin edges from the encoded numeric views.

        Float-identical to the ``fit=True`` branch of :meth:`_prepare_rows`:
        the edges depend only on the min/max of the present values.
        """
        self._numeric = {c.name for c in features if c.is_numeric()}
        self._edges = {}
        for column in features:
            if not column.is_numeric():
                continue
            values, missing = encoded.numeric_view(column.name)
            present = values[~missing]
            if present.size:
                low, high = float(present.min()), float(present.max())
                self._edges[column.name] = _bin_edges([low, high], self.bins)
            else:
                self._edges[column.name] = []

    def _discretised_codes(
        self, encoded: EncodedDataset, name: str
    ) -> tuple[np.ndarray, list[str]]:
        """Column ``name`` as ``(codes, levels)`` where ``levels[codes[i]]`` is
        exactly the string :meth:`_discretise_row` would produce for row ``i``."""
        if name in self._numeric:
            edges = self._edges.get(name, [])
            values, missing = encoded.numeric_view(name)
            # _discretise_value walks the (non-decreasing) edges and counts the
            # leading run of edges strictly below x — which is searchsorted.
            bins = np.searchsorted(np.asarray(edges, dtype=float), values, side="left")
            levels = [f"bin{i}" for i in range(len(edges) + 1)] + [_MISSING]
            codes = np.where(missing, len(levels) - 1, bins).astype(np.int64)
            return codes, levels
        codes, vocabulary, _ = encoded.codes_view(name)
        return merge_missing_level(codes, vocabulary, _MISSING)


class OneRClassifier(_DiscretisingClassifier):
    """Holte's 1R: a single-attribute rule set chosen to minimise training error."""

    name = "one_r"

    def __init__(self, bins: int = 4) -> None:
        super().__init__(bins=bins)
        self.best_feature_: str | None = None
        self.rules_: dict[str, str] = {}
        self.default_class_: str | None = None

    def _fit(self, dataset: Dataset, features: list[Column], target: Column) -> None:
        if self._encoded_fit_supported():
            self._fit_encoded(dataset, features, target)
        else:
            self._fit_rows(dataset, features, target)

    def _encoded_fit_supported(self) -> bool:
        return not getattr(self, "_force_row_fit", False) and self._uses_base_impl(
            OneRClassifier, "_fit_rows"
        ) and self._uses_base_impl(_DiscretisingClassifier, "_prepare_rows")

    def _fit_rows(self, dataset: Dataset, features: list[Column], target: Column) -> None:
        rows, labels = self._prepare_rows(dataset, features, target, fit=True)
        pairs = [(row, label) for row, label in zip(rows, labels) if label is not None]
        if not pairs:
            raise MiningError("no labelled rows to train on")
        overall = Counter(label for _, label in pairs)
        self.default_class_ = max(sorted(overall), key=overall.get)

        best_error = math.inf
        for name in (c.name for c in features):
            table: dict[str, Counter] = defaultdict(Counter)
            for row, label in pairs:
                table[row[name]][label] += 1
            rules = {value: max(sorted(counts), key=counts.get) for value, counts in table.items()}
            errors = sum(
                sum(counts.values()) - counts[rules[value]] for value, counts in table.items()
            )
            if errors < best_error:
                best_error = errors
                self.best_feature_ = name
                self.rules_ = rules

    def _fit_encoded(self, dataset: Dataset, features: list[Column], target: Column) -> None:
        """Contingency tables via bincount over the discretised code matrix;
        induces exactly the rules :meth:`_fit_rows` would."""
        encoded = encode_dataset(dataset)
        self._fit_discretisation(features, encoded)
        target_values = target.tolist()
        keep = np.asarray(
            [i for i, v in enumerate(target_values) if not is_missing_value(v)], dtype=np.intp
        )
        if keep.size == 0:
            raise MiningError("no labelled rows to train on")
        classes = list(self.classes_)
        class_index = {cls: i for i, cls in enumerate(classes)}
        y = np.asarray(
            [class_index[str(target_values[i])] for i in keep.tolist()], dtype=np.int64
        )
        n_classes = len(classes)
        self.default_class_ = classes[int(np.bincount(y, minlength=n_classes).argmax())]

        best_error = math.inf
        for column in features:
            codes, levels = self._discretised_codes(encoded, column.name)
            codes = codes[keep]
            table = np.bincount(
                codes * n_classes + y, minlength=len(levels) * n_classes
            ).reshape(len(levels), n_classes)
            totals = table.sum(axis=1)
            winners = table.argmax(axis=1)
            errors = int(totals.sum() - table.max(axis=1).sum())
            if errors < best_error:
                best_error = errors
                self.best_feature_ = column.name
                self.rules_ = {
                    levels[v]: classes[int(winners[v])]
                    for v in np.flatnonzero(totals).tolist()
                }

    def _predict_row(self, row: dict[str, Any]) -> str:
        if self.best_feature_ is None:
            raise MiningError("model has not been fitted")
        value = self._discretise_row(row).get(self.best_feature_, _MISSING)
        return self.rules_.get(value, self.default_class_)

    def _predict_batch(self, encoded: EncodedDataset) -> list[str] | None:
        if self.best_feature_ is None or not (
            self._uses_base_impl(OneRClassifier, "_predict_row")
            and self._uses_base_impl(_DiscretisingClassifier, "_discretise_row")
        ):
            return None
        codes, levels = self._discretised_codes(encoded, self.best_feature_)
        lookup = [self.rules_.get(level, self.default_class_) for level in levels]
        return [lookup[c] for c in codes.tolist()]

    def describe(self) -> dict[str, Any]:
        description = super().describe()
        description["selected_feature"] = self.best_feature_
        description["rules"] = dict(self.rules_)
        return description


@dataclass
class _PrismRule:
    """A conjunctive rule covering one class."""

    target_class: str
    conditions: dict[str, str] = field(default_factory=dict)

    def matches(self, row: dict[str, str]) -> bool:
        return all(row.get(name) == value for name, value in self.conditions.items())

    def as_text(self) -> str:
        if not self.conditions:
            return f"IF TRUE THEN class = {self.target_class}"
        clause = " AND ".join(f"{name} = {value}" for name, value in self.conditions.items())
        return f"IF {clause} THEN class = {self.target_class}"


class PrismClassifier(_DiscretisingClassifier):
    """Cendrowska's PRISM: per-class, maximally precise conjunctive rules.

    Parameters
    ----------
    bins:
        Equal-width bins used to discretise numeric features.
    max_conditions:
        Cap on conditions per rule (keeps induction fast on wide data).
    max_rules_per_class:
        Cap on rules per class.
    """

    name = "prism"

    def __init__(self, bins: int = 4, max_conditions: int = 4, max_rules_per_class: int = 30) -> None:
        super().__init__(bins=bins)
        self.max_conditions = max_conditions
        self.max_rules_per_class = max_rules_per_class
        self.rules_: list[_PrismRule] = []
        self.default_class_: str | None = None

    def _fit(self, dataset: Dataset, features: list[Column], target: Column) -> None:
        if self._encoded_fit_supported():
            self._fit_encoded(dataset, features, target)
        else:
            self._fit_rows(dataset, features, target)

    def _encoded_fit_supported(self) -> bool:
        return not getattr(self, "_force_row_fit", False) and self._uses_base_impl(
            PrismClassifier, "_fit_rows", "_induce_rule"
        ) and self._uses_base_impl(_DiscretisingClassifier, "_prepare_rows")

    def _fit_rows(self, dataset: Dataset, features: list[Column], target: Column) -> None:
        rows, labels = self._prepare_rows(dataset, features, target, fit=True)
        pairs = [(row, label) for row, label in zip(rows, labels) if label is not None]
        if not pairs:
            raise MiningError("no labelled rows to train on")
        overall = Counter(label for _, label in pairs)
        self.default_class_ = max(sorted(overall), key=overall.get)
        feature_names = [c.name for c in features]
        self.rules_ = []
        for target_class in sorted(overall):
            remaining = [(row, label) for row, label in pairs]
            rules_made = 0
            while (
                any(label == target_class for _, label in remaining)
                and rules_made < self.max_rules_per_class
            ):
                rule = self._induce_rule(remaining, target_class, feature_names)
                if rule is None:
                    break
                self.rules_.append(rule)
                rules_made += 1
                remaining = [
                    (row, label) for row, label in remaining if not (rule.matches(row) and label == target_class)
                ]

    def _induce_rule(self, pairs, target_class: str, feature_names: list[str]) -> _PrismRule | None:
        rule = _PrismRule(target_class=target_class)
        covered = list(pairs)
        available = list(feature_names)
        while len(rule.conditions) < self.max_conditions:
            positives = sum(1 for _, label in covered if label == target_class)
            if positives == 0:
                return None
            if positives == len(covered):
                break  # rule is already perfectly precise
            best_precision = -1.0
            best_coverage = 0
            best_condition: tuple[str, str] | None = None
            for name in available:
                # Sorted candidate order keeps tie-breaking deterministic and
                # lets the encoded path replicate the selection exactly.
                values = sorted({row[name] for row, _ in covered})
                for value in values:
                    subset = [(row, label) for row, label in covered if row[name] == value]
                    pos = sum(1 for _, label in subset if label == target_class)
                    if pos == 0:
                        continue
                    precision = pos / len(subset)
                    if precision > best_precision or (
                        precision == best_precision and pos > best_coverage
                    ):
                        best_precision = precision
                        best_coverage = pos
                        best_condition = (name, value)
            if best_condition is None:
                break
            name, value = best_condition
            rule.conditions[name] = value
            available.remove(name)
            covered = [(row, label) for row, label in covered if row[name] == value]
            if not available:
                break
        positives = sum(1 for _, label in covered if label == target_class)
        if positives == 0:
            return None
        return rule

    # -- encoded (vectorized) fitting ------------------------------------------

    def _fit_encoded(self, dataset: Dataset, features: list[Column], target: Column) -> None:
        """Boolean-mask PRISM over the discretised code matrix; induces exactly
        the rules :meth:`_fit_rows` would."""
        encoded = encode_dataset(dataset)
        self._fit_discretisation(features, encoded)
        target_values = target.tolist()
        keep = np.asarray(
            [i for i, v in enumerate(target_values) if not is_missing_value(v)], dtype=np.intp
        )
        if keep.size == 0:
            raise MiningError("no labelled rows to train on")
        classes = list(self.classes_)
        class_index = {cls: i for i, cls in enumerate(classes)}
        y = np.asarray(
            [class_index[str(target_values[i])] for i in keep.tolist()], dtype=np.int64
        )
        counts = np.bincount(y, minlength=len(classes))
        self.default_class_ = classes[int(counts.argmax())]

        feature_names = [c.name for c in features]
        matrix = {
            name: self._discretised_codes(encoded, name) for name in feature_names
        }
        matrix = {name: (codes[keep], levels) for name, (codes, levels) in matrix.items()}

        self.rules_ = []
        for target_code, target_class in enumerate(classes):
            target_mask = y == target_code
            remaining = np.ones(keep.size, dtype=bool)
            rules_made = 0
            while (
                bool((remaining & target_mask).any())
                and rules_made < self.max_rules_per_class
            ):
                induced = self._induce_rule_encoded(
                    matrix, target_mask, remaining, target_class, feature_names
                )
                if induced is None:
                    break
                rule, condition_codes = induced
                self.rules_.append(rule)
                rules_made += 1
                match = np.ones(keep.size, dtype=bool)
                for name, code in condition_codes:
                    match &= matrix[name][0] == code
                remaining &= ~(match & target_mask)

    def _induce_rule_encoded(
        self,
        matrix: dict[str, tuple[np.ndarray, list[str]]],
        target_mask: np.ndarray,
        remaining: np.ndarray,
        target_class: str,
        feature_names: list[str],
    ) -> tuple[_PrismRule, list[tuple[str, int]]] | None:
        rule = _PrismRule(target_class=target_class)
        condition_codes: list[tuple[str, int]] = []
        covered = remaining.copy()
        available = list(feature_names)
        while len(rule.conditions) < self.max_conditions:
            positives = int((covered & target_mask).sum())
            if positives == 0:
                return None
            if positives == int(covered.sum()):
                break  # rule is already perfectly precise
            best_precision = -1.0
            best_coverage = 0
            best_condition: tuple[str, int] | None = None
            for name in available:
                codes, levels = matrix[name]
                sizes = np.bincount(codes[covered], minlength=len(levels))
                positives_per_value = np.bincount(
                    codes[covered & target_mask], minlength=len(levels)
                )
                candidates = sorted(
                    np.flatnonzero(sizes).tolist(), key=levels.__getitem__
                )
                for value in candidates:
                    pos = int(positives_per_value[value])
                    if pos == 0:
                        continue
                    precision = pos / int(sizes[value])
                    if precision > best_precision or (
                        precision == best_precision and pos > best_coverage
                    ):
                        best_precision = precision
                        best_coverage = pos
                        best_condition = (name, value)
            if best_condition is None:
                break
            name, value = best_condition
            rule.conditions[name] = matrix[name][1][value]
            condition_codes.append((name, value))
            available.remove(name)
            covered &= matrix[name][0] == value
            if not available:
                break
        if int((covered & target_mask).sum()) == 0:
            return None
        return rule, condition_codes

    # -- prediction -------------------------------------------------------------

    def _predict_row(self, row: dict[str, Any]) -> str:
        if self.default_class_ is None:
            raise MiningError("model has not been fitted")
        discretised = self._discretise_row(row)
        for rule in self.rules_:
            if rule.matches(discretised):
                return rule.target_class
        return self.default_class_

    def _predict_batch(self, encoded: EncodedDataset) -> list[str] | None:
        if self.default_class_ is None or not (
            self._uses_base_impl(PrismClassifier, "_predict_row")
            and self._uses_base_impl(_DiscretisingClassifier, "_discretise_row")
        ):
            return None
        n = encoded.n_rows
        columns: dict[str, tuple[np.ndarray, list[str]]] = {}

        def column_codes(name: str) -> tuple[np.ndarray, list[str]]:
            if name not in columns:
                columns[name] = self._discretised_codes(encoded, name)
            return columns[name]

        out = np.full(n, self.default_class_, dtype=object)
        unassigned = np.ones(n, dtype=bool)
        for rule in self.rules_:
            if not unassigned.any():
                break
            match = unassigned.copy()
            for name, value in rule.conditions.items():
                codes, levels = column_codes(name)
                try:
                    code = levels.index(value)
                except ValueError:
                    match[:] = False
                    break
                match &= codes == code
            if match.any():
                out[match] = rule.target_class
                unassigned &= ~match
        return out.tolist()

    def rule_texts(self) -> list[str]:
        """The induced rules as human-readable strings."""
        return [rule.as_text() for rule in self.rules_]

    def describe(self) -> dict[str, Any]:
        description = super().describe()
        description["n_rules"] = len(self.rules_)
        description["rules"] = self.rule_texts()
        return description
