"""Principal component analysis as a dataset transformer.

The paper singles out PCA as a standard dimensionality-reduction technique
whose drawback is that "data structure cannot be considered" — useful
information can be lost.  The transformer lets the dimensionality experiments
compare mining on raw high-dimensional data, on PCA-reduced data and on
information-gain-selected features (which preserve original attributes).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MiningError
from repro.mining.base import Transformer
from repro.mining.preprocessing import DatasetEncoder
from repro.tabular.dataset import Column, ColumnRole, ColumnType, Dataset


class PCATransformer(Transformer):
    """PCA over the encoded numeric view of a dataset's feature columns.

    Non-feature columns (target, identifiers, metadata) are carried through
    unchanged so the reduced dataset stays usable for supervised mining.

    Parameters
    ----------
    n_components:
        Number of principal components to keep; when ``None`` enough
        components to explain ``explained_variance`` are kept.
    explained_variance:
        Target cumulative explained-variance ratio used when ``n_components``
        is ``None``.
    """

    name = "pca"

    def __init__(self, n_components: int | None = None, explained_variance: float = 0.95) -> None:
        super().__init__()
        if n_components is not None and n_components < 1:
            raise MiningError("n_components must be at least 1")
        if not 0 < explained_variance <= 1:
            raise MiningError("explained_variance must be in (0, 1]")
        self.n_components = n_components
        self.explained_variance = explained_variance
        self._encoder: DatasetEncoder | None = None
        self._mean: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, dataset: Dataset) -> "PCATransformer":
        self._encoder = DatasetEncoder(scale=True)
        X = self._encoder.fit_transform(dataset)
        if X.shape[1] == 0:
            raise MiningError("no feature columns to run PCA on")
        self._mean = X.mean(axis=0)
        centred = X - self._mean
        # SVD of the centred matrix gives the principal axes.
        _, singular_values, vt = np.linalg.svd(centred, full_matrices=False)
        variances = (singular_values ** 2) / max(X.shape[0] - 1, 1)
        total = variances.sum()
        ratios = variances / total if total > 0 else np.zeros_like(variances)
        if self.n_components is not None:
            keep = min(self.n_components, vt.shape[0])
        else:
            cumulative = np.cumsum(ratios)
            keep = int(np.searchsorted(cumulative, self.explained_variance) + 1)
            keep = min(max(keep, 1), vt.shape[0])
        self.components_ = vt[:keep]
        self.explained_variance_ratio_ = ratios[:keep]
        self._fitted = True
        return self

    def transform(self, dataset: Dataset) -> Dataset:
        if not self._fitted or self._encoder is None or self.components_ is None:
            raise MiningError("PCATransformer must be fitted before transform")
        X = self._encoder.transform(dataset)
        projected = (X - self._mean) @ self.components_.T
        columns = [
            Column(f"pc{i + 1}", projected[:, i].tolist(), ctype=ColumnType.NUMERIC, role=ColumnRole.FEATURE)
            for i in range(projected.shape[1])
        ]
        for column in dataset.columns:
            if column.role != ColumnRole.FEATURE:
                columns.append(column.copy())
        return Dataset(columns, name=f"{dataset.name}_pca")

    def n_components_kept(self) -> int:
        """Number of components retained after fitting."""
        if self.components_ is None:
            raise MiningError("PCATransformer has not been fitted")
        return int(self.components_.shape[0])
