"""Multinomial logistic regression trained by gradient descent.

Features are encoded through :class:`~repro.mining.preprocessing.DatasetEncoder`
(one-hot categorical features, mean-imputed and standardised numeric features),
so unlike the tree/NB/k-NN implementations the algorithm sees a fully numeric
design matrix.  Its sensitivity to correlated/redundant attributes therefore
differs from the other classifiers — a contrast the knowledge base captures.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.exceptions import MiningError
from repro.mining.base import Classifier, check_fitted
from repro.mining.preprocessing import DatasetEncoder
from repro.tabular.dataset import Column, Dataset, is_missing_value


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegressionClassifier(Classifier):
    """Softmax regression with L2 regularisation and full-batch gradient descent.

    Parameters
    ----------
    learning_rate:
        Gradient descent step size.
    epochs:
        Number of full-batch iterations.
    l2:
        L2 penalty strength on the weights (not the bias).
    """

    name = "logistic_regression"

    def __init__(self, learning_rate: float = 0.5, epochs: int = 300, l2: float = 1e-3, seed: int = 0) -> None:
        super().__init__()
        if learning_rate <= 0 or epochs < 1:
            raise MiningError("learning_rate must be positive and epochs at least 1")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.seed = seed
        self._encoder: DatasetEncoder | None = None
        self._weights: np.ndarray | None = None
        self._bias: np.ndarray | None = None
        self._class_index: dict[str, int] = {}

    def _fit(self, dataset: Dataset, features: list[Column], target: Column) -> None:
        labelled = [i for i, v in enumerate(target.tolist()) if not is_missing_value(v)]
        working = dataset.take(labelled)
        self._encoder = DatasetEncoder(scale=True)
        X = self._encoder.fit_transform(working)
        labels = [str(v) for v in working[target.name].tolist()]
        self._class_index = {cls: i for i, cls in enumerate(self.classes_)}
        y = np.asarray([self._class_index[label] for label in labels], dtype=int)

        n, d = X.shape
        k = len(self.classes_)
        rng = np.random.default_rng(self.seed)
        self._weights = rng.normal(scale=0.01, size=(d, k))
        self._bias = np.zeros(k)
        one_hot = np.zeros((n, k))
        one_hot[np.arange(n), y] = 1.0

        for _ in range(self.epochs):
            logits = X @ self._weights + self._bias
            probs = _softmax(logits)
            error = probs - one_hot
            grad_w = X.T @ error / n + self.l2 * self._weights
            grad_b = error.mean(axis=0)
            self._weights -= self.learning_rate * grad_w
            self._bias -= self.learning_rate * grad_b

    def _predict_row(self, row: dict[str, Any]) -> str:  # pragma: no cover - unused path
        raise MiningError("LogisticRegressionClassifier predicts dataset-wise; use predict()")

    def predict(self, dataset: Dataset) -> list[str]:
        check_fitted(self)
        probs = self._probabilities(dataset)
        indices = probs.argmax(axis=1)
        return [self.classes_[int(i)] for i in indices]

    def predict_proba(self, dataset: Dataset) -> list[dict[str, float]]:
        check_fitted(self)
        probs = self._probabilities(dataset)
        return [
            {cls: float(row[self._class_index[cls]]) for cls in self.classes_}
            for row in probs
        ]

    def _probabilities(self, dataset: Dataset) -> np.ndarray:
        if self._encoder is None or self._weights is None:
            raise MiningError("model has not been fitted")
        X = self._encoder.transform(dataset)
        return _softmax(X @ self._weights + self._bias)

    def coefficients(self) -> dict[str, dict[str, float]]:
        """Per-class weight of every encoded feature (for reporting)."""
        check_fitted(self)
        result: dict[str, dict[str, float]] = {}
        for j, label in enumerate(self._encoder.feature_labels_):
            result[label] = {
                cls: float(self._weights[j, self._class_index[cls]]) for cls in self.classes_
            }
        return result
