"""C4.5-style decision tree classifier.

Handles numeric and categorical features natively (multiway splits on
categorical attributes, binary threshold splits on numeric attributes), uses
gain ratio as the default split criterion and routes missing values down the
majority branch.  The fitted tree can be exported as human-readable rules,
which is what the OpenBI reporting layer shows to non-expert users.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import MiningError
from repro.mining.base import Classifier
from repro.tabular.dataset import Column, Dataset, is_missing_value


def _entropy(counts: Counter) -> float:
    total = sum(counts.values())
    if total == 0:
        return 0.0
    result = 0.0
    for count in counts.values():
        if count == 0:
            continue
        p = count / total
        result -= p * math.log2(p)
    return result


@dataclass
class _Node:
    """A node of the fitted tree."""

    is_leaf: bool
    prediction: str | None = None
    distribution: dict[str, int] = field(default_factory=dict)
    feature: str | None = None
    feature_kind: str | None = None  # "numeric" | "categorical"
    threshold: float | None = None
    children: dict[Any, "_Node"] = field(default_factory=dict)
    majority_branch: Any = None
    depth: int = 0

    def predict(self, row: dict[str, Any]) -> str:
        node = self
        while not node.is_leaf:
            value = row.get(node.feature)
            if is_missing_value(value):
                branch = node.majority_branch
            elif node.feature_kind == "numeric":
                try:
                    branch = "le" if float(value) <= node.threshold else "gt"
                except (TypeError, ValueError):
                    branch = node.majority_branch
            else:
                branch = str(value)
                if branch not in node.children:
                    branch = node.majority_branch
            child = node.children.get(branch)
            if child is None:
                break
            node = child
        return node.prediction if node.prediction is not None else ""

    def rules(self, prefix: list[str] | None = None) -> list[tuple[list[str], str, dict[str, int]]]:
        """Flatten the tree into (conditions, predicted class, distribution) rules."""
        prefix = prefix or []
        if self.is_leaf:
            return [(list(prefix), self.prediction or "", dict(self.distribution))]
        rules = []
        for branch, child in self.children.items():
            if self.feature_kind == "numeric":
                condition = (
                    f"{self.feature} <= {self.threshold:.4g}"
                    if branch == "le"
                    else f"{self.feature} > {self.threshold:.4g}"
                )
            else:
                condition = f"{self.feature} = {branch}"
            rules.extend(child.rules(prefix + [condition]))
        return rules


class DecisionTreeClassifier(Classifier):
    """Top-down induction of a decision tree (C4.5-like).

    Parameters
    ----------
    max_depth:
        Maximum tree depth; leaves are forced beyond it.
    min_samples_split:
        Minimum number of rows required to attempt a split.
    min_gain:
        Minimum information gain (not gain ratio) required to accept a split.
    criterion:
        ``"gain_ratio"`` (default) or ``"information_gain"``.
    max_thresholds:
        Maximum number of candidate thresholds evaluated per numeric feature
        (quantile-spaced), keeping induction fast on large data.
    """

    name = "decision_tree"

    def __init__(
        self,
        max_depth: int = 10,
        min_samples_split: int = 5,
        min_gain: float = 1e-3,
        criterion: str = "gain_ratio",
        max_thresholds: int = 24,
    ) -> None:
        super().__init__()
        if criterion not in ("gain_ratio", "information_gain"):
            raise MiningError(f"unknown split criterion {criterion!r}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_gain = min_gain
        self.criterion = criterion
        self.max_thresholds = max_thresholds
        self.root_: _Node | None = None
        self._feature_kinds: dict[str, str] = {}

    # -- fitting ---------------------------------------------------------------

    def _fit(self, dataset: Dataset, features: list[Column], target: Column) -> None:
        self._feature_kinds = {
            c.name: ("numeric" if c.is_numeric() else "categorical") for c in features
        }
        rows = []
        labels = []
        feature_names = [c.name for c in features]
        target_values = target.tolist()
        for i, row in enumerate(dataset.iter_rows()):
            label = target_values[i]
            if is_missing_value(label):
                continue
            rows.append({name: row[name] for name in feature_names})
            labels.append(str(label))
        if not rows:
            raise MiningError("no labelled rows to train on")
        self.root_ = self._build(rows, labels, depth=0)

    def _majority(self, labels: list[str]) -> tuple[str, dict[str, int]]:
        counts = Counter(labels)
        prediction = max(sorted(counts), key=counts.get)
        return prediction, dict(counts)

    def _build(self, rows: list[dict[str, Any]], labels: list[str], depth: int) -> _Node:
        prediction, distribution = self._majority(labels)
        if (
            depth >= self.max_depth
            or len(rows) < self.min_samples_split
            or len(set(labels)) == 1
        ):
            return _Node(is_leaf=True, prediction=prediction, distribution=distribution, depth=depth)

        best = self._best_split(rows, labels)
        if best is None:
            return _Node(is_leaf=True, prediction=prediction, distribution=distribution, depth=depth)
        feature, kind, threshold, partitions = best

        node = _Node(
            is_leaf=False,
            prediction=prediction,
            distribution=distribution,
            feature=feature,
            feature_kind=kind,
            threshold=threshold,
            depth=depth,
        )
        largest_branch = None
        largest_size = -1
        for branch, indices in partitions.items():
            child_rows = [rows[i] for i in indices]
            child_labels = [labels[i] for i in indices]
            node.children[branch] = self._build(child_rows, child_labels, depth + 1)
            if len(indices) > largest_size:
                largest_size = len(indices)
                largest_branch = branch
        node.majority_branch = largest_branch
        return node

    def _best_split(self, rows: list[dict[str, Any]], labels: list[str]):
        base_entropy = _entropy(Counter(labels))
        best_score = -math.inf
        best = None
        n = len(rows)
        for feature, kind in self._feature_kinds.items():
            if kind == "numeric":
                candidate = self._numeric_split(rows, labels, feature, base_entropy, n)
            else:
                candidate = self._categorical_split(rows, labels, feature, base_entropy, n)
            if candidate is None:
                continue
            score, gain, threshold, partitions = candidate
            if gain < self.min_gain:
                continue
            if score > best_score:
                best_score = score
                best = (feature, kind, threshold, partitions)
        return best

    def _score(self, gain: float, split_entropy: float) -> float:
        if self.criterion == "information_gain":
            return gain
        if split_entropy <= 0:
            return 0.0
        return gain / split_entropy

    def _categorical_split(self, rows, labels, feature, base_entropy, n):
        partitions: dict[Any, list[int]] = {}
        for i, row in enumerate(rows):
            value = row.get(feature)
            key = "<missing>" if is_missing_value(value) else str(value)
            partitions.setdefault(key, []).append(i)
        if len(partitions) < 2:
            return None
        weighted = 0.0
        split_entropy = 0.0
        for indices in partitions.values():
            weight = len(indices) / n
            weighted += weight * _entropy(Counter(labels[i] for i in indices))
            split_entropy -= weight * math.log2(weight)
        gain = base_entropy - weighted
        return self._score(gain, split_entropy), gain, None, partitions

    def _numeric_split(self, rows, labels, feature, base_entropy, n):
        pairs = []
        missing_indices = []
        for i, row in enumerate(rows):
            value = row.get(feature)
            if is_missing_value(value):
                missing_indices.append(i)
                continue
            try:
                pairs.append((float(value), i))
            except (TypeError, ValueError):
                missing_indices.append(i)
        if len(pairs) < 2:
            return None
        values = sorted({v for v, _ in pairs})
        if len(values) < 2:
            return None
        if len(values) - 1 > self.max_thresholds:
            positions = np.linspace(0, len(values) - 2, self.max_thresholds).astype(int)
            candidate_edges = [(values[p] + values[p + 1]) / 2.0 for p in positions]
        else:
            candidate_edges = [(a + b) / 2.0 for a, b in zip(values, values[1:])]
        best_gain = -math.inf
        best_threshold = None
        best_partitions = None
        for threshold in candidate_edges:
            left = [i for v, i in pairs if v <= threshold]
            right = [i for v, i in pairs if v > threshold]
            if not left or not right:
                continue
            # Missing rows follow the larger side (majority branch behaviour).
            if missing_indices:
                (left if len(left) >= len(right) else right).extend(missing_indices)
            weighted = 0.0
            split_entropy = 0.0
            for indices in (left, right):
                weight = len(indices) / n
                if weight == 0:
                    continue
                weighted += weight * _entropy(Counter(labels[i] for i in indices))
                split_entropy -= weight * math.log2(weight)
            gain = base_entropy - weighted
            if gain > best_gain:
                best_gain = gain
                best_threshold = threshold
                best_partitions = {"le": left, "gt": right}
        if best_partitions is None:
            return None
        split_entropy = 0.0
        for indices in best_partitions.values():
            weight = len(indices) / n
            if weight > 0:
                split_entropy -= weight * math.log2(weight)
        return self._score(best_gain, split_entropy), best_gain, best_threshold, best_partitions

    # -- prediction -------------------------------------------------------------

    def _predict_row(self, row: dict[str, Any]) -> str:
        if self.root_ is None:
            raise MiningError("tree has not been fitted")
        return self.root_.predict(row)

    # -- introspection -------------------------------------------------------------

    def depth(self) -> int:
        """Depth of the fitted tree (0 for a single leaf)."""
        if self.root_ is None:
            raise MiningError("tree has not been fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return node.depth
            return max(walk(child) for child in node.children.values())

        return walk(self.root_)

    def n_leaves(self) -> int:
        """Number of leaves of the fitted tree."""
        if self.root_ is None:
            raise MiningError("tree has not been fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return sum(walk(child) for child in node.children.values())

        return walk(self.root_)

    def extract_rules(self) -> list[dict[str, Any]]:
        """Export the tree as a list of IF/THEN rules for reporting."""
        if self.root_ is None:
            raise MiningError("tree has not been fitted")
        rules = []
        for conditions, prediction, distribution in self.root_.rules():
            total = sum(distribution.values())
            correct = distribution.get(prediction, 0)
            rules.append(
                {
                    "conditions": conditions,
                    "prediction": prediction,
                    "coverage": total,
                    "confidence": correct / total if total else 0.0,
                }
            )
        return rules

    def predict_proba(self, dataset: Dataset) -> list[dict[str, float]]:
        """Class distribution of the leaf each row falls into."""
        from repro.mining.base import check_fitted

        check_fitted(self)
        results = []
        for row in dataset.iter_rows():
            node = self.root_
            features_only = {name: row.get(name) for name in self.feature_names_}
            while node is not None and not node.is_leaf:
                value = features_only.get(node.feature)
                if is_missing_value(value):
                    branch = node.majority_branch
                elif node.feature_kind == "numeric":
                    try:
                        branch = "le" if float(value) <= node.threshold else "gt"
                    except (TypeError, ValueError):
                        branch = node.majority_branch
                else:
                    branch = str(value)
                    if branch not in node.children:
                        branch = node.majority_branch
                next_node = node.children.get(branch)
                if next_node is None:
                    break
                node = next_node
            distribution = node.distribution if node is not None else {}
            total = sum(distribution.values()) or 1
            results.append({cls: distribution.get(cls, 0) / total for cls in self.classes_})
        return results
