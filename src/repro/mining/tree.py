"""C4.5-style decision tree classifier.

Handles numeric and categorical features natively (multiway splits on
categorical attributes, binary threshold splits on numeric attributes), uses
gain ratio as the default split criterion and routes missing values down the
majority branch.  The fitted tree can be exported as human-readable rules,
which is what the OpenBI reporting layer shows to non-expert users.

Induction and prediction run on the encoded-matrix views from
:mod:`repro.tabular.encoded`: split gains are computed column-wise (numeric
thresholds via a single sorted scan with prefix class counts, categorical
splits via code bincounts) and prediction routes whole index masks through the
tree instead of walking it row by row.  The historical row-at-a-time
implementation is retained as the reference path (used by the equivalence
tests and the perf benchmarks); all gain/entropy arithmetic is performed with
the same scalar operations in the same order on both paths, so the encoded
fit grows the *bit-identical* tree and the batch prediction returns exactly
the labels and leaf distributions the row path would.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import MiningError
from repro.mining.base import Classifier
from repro.tabular.dataset import Column, Dataset, is_missing_value
from repro.tabular.encoded import EncodedDataset, encode_dataset, merge_missing_level

_MISSING_BRANCH = "<missing>"


def _entropy(counts: Counter) -> float:
    """Shannon entropy of a label Counter.

    Keys are visited in sorted order so the float accumulation order is
    canonical: the encoded fit path (which iterates class codes in ascending
    order, i.e. the same sorted-label order) reproduces the sum bit for bit.
    """
    total = sum(counts.values())
    if total == 0:
        return 0.0
    result = 0.0
    for key in sorted(counts):
        count = counts[key]
        if count == 0:
            continue
        p = count / total
        result -= p * math.log2(p)
    return result


def _entropy_counts(counts: list[int], total: int) -> float:
    """Entropy from per-class counts in ascending class-code order.

    Float-identical to :func:`_entropy` over the same label multiset because
    class codes are assigned in sorted-label order.
    """
    if total == 0:
        return 0.0
    result = 0.0
    for count in counts:
        if count == 0:
            continue
        p = count / total
        result -= p * math.log2(p)
    return result


@dataclass
class _Node:
    """A node of the fitted tree."""

    is_leaf: bool
    prediction: str | None = None
    distribution: dict[str, int] = field(default_factory=dict)
    feature: str | None = None
    feature_kind: str | None = None  # "numeric" | "categorical"
    threshold: float | None = None
    children: dict[Any, "_Node"] = field(default_factory=dict)
    majority_branch: Any = None
    depth: int = 0

    def predict(self, row: dict[str, Any]) -> str:
        node = self
        while not node.is_leaf:
            value = row.get(node.feature)
            if is_missing_value(value):
                branch = node.majority_branch
            elif node.feature_kind == "numeric":
                try:
                    branch = "le" if float(value) <= node.threshold else "gt"
                except (TypeError, ValueError):
                    branch = node.majority_branch
            else:
                branch = str(value)
                if branch not in node.children:
                    branch = node.majority_branch
            child = node.children.get(branch)
            if child is None:
                break
            node = child
        return node.prediction if node.prediction is not None else ""

    def rules(self, prefix: list[str] | None = None) -> list[tuple[list[str], str, dict[str, int]]]:
        """Flatten the tree into (conditions, predicted class, distribution) rules."""
        prefix = prefix or []
        if self.is_leaf:
            return [(list(prefix), self.prediction or "", dict(self.distribution))]
        rules = []
        for branch, child in self.children.items():
            if self.feature_kind == "numeric":
                condition = (
                    f"{self.feature} <= {self.threshold:.4g}"
                    if branch == "le"
                    else f"{self.feature} > {self.threshold:.4g}"
                )
            else:
                condition = f"{self.feature} = {branch}"
            rules.extend(child.rules(prefix + [condition]))
        return rules


class _TrainingMatrix:
    """Per-feature array views of the labelled training rows, in row order."""

    __slots__ = ("classes", "y", "numeric", "categorical")

    def __init__(self, classes: list[str]) -> None:
        self.classes = classes
        self.y: np.ndarray | None = None
        #: name -> (float64 values, bool present) over the labelled rows.
        self.numeric: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        #: name -> (int64 codes with missing folded in, branch-key levels).
        self.categorical: dict[str, tuple[np.ndarray, list[str]]] = {}


class DecisionTreeClassifier(Classifier):
    """Top-down induction of a decision tree (C4.5-like).

    Parameters
    ----------
    max_depth:
        Maximum tree depth; leaves are forced beyond it.
    min_samples_split:
        Minimum number of rows required to attempt a split.
    min_gain:
        Minimum information gain (not gain ratio) required to accept a split.
    criterion:
        ``"gain_ratio"`` (default) or ``"information_gain"``.
    max_thresholds:
        Maximum number of candidate thresholds evaluated per numeric feature
        (quantile-spaced), keeping induction fast on large data.
    """

    name = "decision_tree"

    def __init__(
        self,
        max_depth: int = 10,
        min_samples_split: int = 5,
        min_gain: float = 1e-3,
        criterion: str = "gain_ratio",
        max_thresholds: int = 24,
    ) -> None:
        super().__init__()
        if criterion not in ("gain_ratio", "information_gain"):
            raise MiningError(f"unknown split criterion {criterion!r}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_gain = min_gain
        self.criterion = criterion
        self.max_thresholds = max_thresholds
        self.root_: _Node | None = None
        self._feature_kinds: dict[str, str] = {}

    # -- fitting ---------------------------------------------------------------

    def _fit(self, dataset: Dataset, features: list[Column], target: Column) -> None:
        self._feature_kinds = {
            c.name: ("numeric" if c.is_numeric() else "categorical") for c in features
        }
        if self._encoded_fit_supported():
            self._fit_encoded(dataset, features, target)
        else:
            self._fit_rows(dataset, features, target)

    def _encoded_fit_supported(self) -> bool:
        """The encoded fit replicates the row-path induction; bypass it when a
        subclass customised that machinery (or the caller forced the row fit)."""
        return not getattr(self, "_force_row_fit", False) and self._uses_base_impl(
            DecisionTreeClassifier,
            "_fit_rows",
            "_build",
            "_best_split",
            "_numeric_split",
            "_categorical_split",
            "_majority",
        )

    def _fit_rows(self, dataset: Dataset, features: list[Column], target: Column) -> None:
        """Row-at-a-time reference induction over per-row feature dicts."""
        rows = []
        labels = []
        feature_names = [c.name for c in features]
        target_values = target.tolist()
        for i, row in enumerate(dataset.iter_rows()):
            label = target_values[i]
            if is_missing_value(label):
                continue
            rows.append({name: row[name] for name in feature_names})
            labels.append(str(label))
        if not rows:
            raise MiningError("no labelled rows to train on")
        self.root_ = self._build(rows, labels, depth=0)

    def _majority(self, labels: list[str]) -> tuple[str, dict[str, int]]:
        counts = Counter(labels)
        prediction = max(sorted(counts), key=counts.get)
        return prediction, dict(counts)

    def _build(self, rows: list[dict[str, Any]], labels: list[str], depth: int) -> _Node:
        prediction, distribution = self._majority(labels)
        if (
            depth >= self.max_depth
            or len(rows) < self.min_samples_split
            or len(set(labels)) == 1
        ):
            return _Node(is_leaf=True, prediction=prediction, distribution=distribution, depth=depth)

        best = self._best_split(rows, labels)
        if best is None:
            return _Node(is_leaf=True, prediction=prediction, distribution=distribution, depth=depth)
        feature, kind, threshold, partitions = best

        node = _Node(
            is_leaf=False,
            prediction=prediction,
            distribution=distribution,
            feature=feature,
            feature_kind=kind,
            threshold=threshold,
            depth=depth,
        )
        largest_branch = None
        largest_size = -1
        for branch, indices in partitions.items():
            child_rows = [rows[i] for i in indices]
            child_labels = [labels[i] for i in indices]
            node.children[branch] = self._build(child_rows, child_labels, depth + 1)
            if len(indices) > largest_size:
                largest_size = len(indices)
                largest_branch = branch
        node.majority_branch = largest_branch
        return node

    def _best_split(self, rows: list[dict[str, Any]], labels: list[str]):
        base_entropy = _entropy(Counter(labels))
        best_score = -math.inf
        best = None
        n = len(rows)
        for feature, kind in self._feature_kinds.items():
            if kind == "numeric":
                candidate = self._numeric_split(rows, labels, feature, base_entropy, n)
            else:
                candidate = self._categorical_split(rows, labels, feature, base_entropy, n)
            if candidate is None:
                continue
            score, gain, threshold, partitions = candidate
            if gain < self.min_gain:
                continue
            if score > best_score:
                best_score = score
                best = (feature, kind, threshold, partitions)
        return best

    def _score(self, gain: float, split_entropy: float) -> float:
        if self.criterion == "information_gain":
            return gain
        if split_entropy <= 0:
            return 0.0
        return gain / split_entropy

    def _categorical_split(self, rows, labels, feature, base_entropy, n):
        partitions: dict[Any, list[int]] = {}
        for i, row in enumerate(rows):
            value = row.get(feature)
            key = _MISSING_BRANCH if is_missing_value(value) else str(value)
            partitions.setdefault(key, []).append(i)
        if len(partitions) < 2:
            return None
        weighted = 0.0
        split_entropy = 0.0
        for indices in partitions.values():
            weight = len(indices) / n
            weighted += weight * _entropy(Counter(labels[i] for i in indices))
            split_entropy -= weight * math.log2(weight)
        gain = base_entropy - weighted
        return self._score(gain, split_entropy), gain, None, partitions

    def _numeric_split(self, rows, labels, feature, base_entropy, n):
        pairs = []
        missing_indices = []
        for i, row in enumerate(rows):
            value = row.get(feature)
            if is_missing_value(value):
                missing_indices.append(i)
                continue
            try:
                pairs.append((float(value), i))
            except (TypeError, ValueError):
                missing_indices.append(i)
        if len(pairs) < 2:
            return None
        values = sorted({v for v, _ in pairs})
        if len(values) < 2:
            return None
        if len(values) - 1 > self.max_thresholds:
            positions = np.linspace(0, len(values) - 2, self.max_thresholds).astype(int)
            candidate_edges = [(values[p] + values[p + 1]) / 2.0 for p in positions]
        else:
            candidate_edges = [(a + b) / 2.0 for a, b in zip(values, values[1:])]
        best_gain = -math.inf
        best_threshold = None
        best_partitions = None
        for threshold in candidate_edges:
            left = [i for v, i in pairs if v <= threshold]
            right = [i for v, i in pairs if v > threshold]
            if not left or not right:
                continue
            # Missing rows follow the larger side (majority branch behaviour).
            if missing_indices:
                (left if len(left) >= len(right) else right).extend(missing_indices)
            weighted = 0.0
            split_entropy = 0.0
            for indices in (left, right):
                weight = len(indices) / n
                if weight == 0:
                    continue
                weighted += weight * _entropy(Counter(labels[i] for i in indices))
                split_entropy -= weight * math.log2(weight)
            gain = base_entropy - weighted
            if gain > best_gain:
                best_gain = gain
                best_threshold = threshold
                best_partitions = {"le": left, "gt": right}
        if best_partitions is None:
            return None
        split_entropy = 0.0
        for indices in best_partitions.values():
            weight = len(indices) / n
            if weight > 0:
                split_entropy -= weight * math.log2(weight)
        return self._score(best_gain, split_entropy), best_gain, best_threshold, best_partitions

    # -- encoded (vectorized) fitting ------------------------------------------

    def _fit_encoded(self, dataset: Dataset, features: list[Column], target: Column) -> None:
        """Column-wise induction over the encoded views; bit-identical to
        :meth:`_fit_rows` (same splits, same floats, same tree)."""
        encoded = encode_dataset(dataset)
        target_values = target.tolist()
        keep = np.asarray(
            [i for i, v in enumerate(target_values) if not is_missing_value(v)], dtype=np.intp
        )
        if keep.size == 0:
            raise MiningError("no labelled rows to train on")

        data = _TrainingMatrix(list(self.classes_))
        class_index = {cls: i for i, cls in enumerate(data.classes)}
        data.y = np.asarray(
            [class_index[str(target_values[i])] for i in keep.tolist()], dtype=np.int64
        )
        for column in features:
            name = column.name
            if self._feature_kinds[name] == "numeric":
                values, missing = encoded.numeric_view(name)
                data.numeric[name] = (values[keep], ~missing[keep])
            else:
                codes, vocabulary, _ = encoded.codes_view(name)
                merged, levels = merge_missing_level(codes[keep], vocabulary, _MISSING_BRANCH)
                data.categorical[name] = (merged, levels)
        self.root_ = self._build_encoded(data, np.arange(keep.size, dtype=np.intp), depth=0)

    def _build_encoded(self, data: _TrainingMatrix, idx: np.ndarray, depth: int) -> _Node:
        counts = np.bincount(data.y[idx], minlength=len(data.classes)).tolist()
        prediction = data.classes[max(range(len(counts)), key=counts.__getitem__)]
        distribution = {data.classes[c]: count for c, count in enumerate(counts) if count}
        n_present_classes = sum(1 for count in counts if count)
        if (
            depth >= self.max_depth
            or idx.size < self.min_samples_split
            or n_present_classes == 1
        ):
            return _Node(is_leaf=True, prediction=prediction, distribution=distribution, depth=depth)

        best = self._best_split_encoded(data, idx, counts)
        if best is None:
            return _Node(is_leaf=True, prediction=prediction, distribution=distribution, depth=depth)
        feature, kind, threshold, partitions = best

        node = _Node(
            is_leaf=False,
            prediction=prediction,
            distribution=distribution,
            feature=feature,
            feature_kind=kind,
            threshold=threshold,
            depth=depth,
        )
        largest_branch = None
        largest_size = -1
        for branch, indices in partitions.items():
            node.children[branch] = self._build_encoded(data, indices, depth + 1)
            if indices.size > largest_size:
                largest_size = indices.size
                largest_branch = branch
        node.majority_branch = largest_branch
        return node

    def _best_split_encoded(self, data: _TrainingMatrix, idx: np.ndarray, counts: list[int]):
        base_entropy = _entropy_counts(counts, idx.size)
        best_score = -math.inf
        best = None
        n = idx.size
        for feature, kind in self._feature_kinds.items():
            if kind == "numeric":
                candidate = self._numeric_split_encoded(data, idx, feature, base_entropy, n)
            else:
                candidate = self._categorical_split_encoded(data, idx, feature, base_entropy, n)
            if candidate is None:
                continue
            score, gain, threshold, partitions = candidate
            if gain < self.min_gain:
                continue
            if score > best_score:
                best_score = score
                best = (feature, kind, threshold, partitions)
        return best

    def _categorical_split_encoded(self, data, idx, feature, base_entropy, n):
        codes_all, levels = data.categorical[feature]
        codes = codes_all[idx]
        # Partitions in first-seen order, like the row path's dict insertion.
        unique, first_position = np.unique(codes, return_index=True)
        if unique.size < 2:
            return None
        seen = unique[np.argsort(first_position, kind="stable")].tolist()
        sizes = np.bincount(codes, minlength=len(levels))
        table = np.zeros((len(levels), len(data.classes)), dtype=np.int64)
        np.add.at(table, (codes, data.y[idx]), 1)
        weighted = 0.0
        split_entropy = 0.0
        for code in seen:
            size = int(sizes[code])
            weight = size / n
            weighted += weight * _entropy_counts(table[code].tolist(), size)
            split_entropy -= weight * math.log2(weight)
        gain = base_entropy - weighted
        partitions = {levels[code]: idx[codes == code] for code in seen}
        return self._score(gain, split_entropy), gain, None, partitions

    def _numeric_split_encoded(self, data, idx, feature, base_entropy, n):
        values_all, present_all = data.numeric[feature]
        values = values_all[idx]
        present = present_all[idx]
        pairs_idx = idx[present]
        if pairs_idx.size < 2:
            return None
        pair_values = values[present]
        order = np.argsort(pair_values, kind="stable")
        sorted_values = pair_values[order]
        distinct = sorted_values[
            np.concatenate(([True], sorted_values[1:] != sorted_values[:-1]))
        ]
        if distinct.size < 2:
            return None
        distinct_values = distinct.tolist()
        if distinct.size - 1 > self.max_thresholds:
            positions = np.linspace(0, distinct.size - 2, self.max_thresholds).astype(int)
            candidate_edges = [
                (distinct_values[p] + distinct_values[p + 1]) / 2.0 for p in positions.tolist()
            ]
        else:
            candidate_edges = [(a + b) / 2.0 for a, b in zip(distinct_values, distinct_values[1:])]

        sorted_y = data.y[pairs_idx[order]]
        n_classes = len(data.classes)
        prefix = np.zeros((sorted_y.size + 1, n_classes), dtype=np.int64)
        np.cumsum(sorted_y[:, None] == np.arange(n_classes)[None, :], axis=0, out=prefix[1:])
        present_counts = prefix[-1].tolist()
        n_present = sorted_values.size

        missing_idx = idx[~present]
        n_missing = missing_idx.size
        missing_counts = (
            np.bincount(data.y[missing_idx], minlength=n_classes).tolist() if n_missing else None
        )

        left_sizes = np.searchsorted(sorted_values, np.asarray(candidate_edges), side="right")
        left_count_rows = prefix[left_sizes].tolist()
        best_gain = -math.inf
        best_threshold = None
        for threshold, n_left, left_counts in zip(
            candidate_edges, left_sizes.tolist(), left_count_rows
        ):
            n_right = n_present - n_left
            if n_left == 0 or n_right == 0:
                continue
            right_counts = [p - q for p, q in zip(present_counts, left_counts)]
            left_total, right_total = n_left, n_right
            if n_missing:
                # Missing rows follow the larger side (majority branch behaviour).
                if n_left >= n_right:
                    left_counts = [a + b for a, b in zip(left_counts, missing_counts)]
                    left_total += n_missing
                else:
                    right_counts = [a + b for a, b in zip(right_counts, missing_counts)]
                    right_total += n_missing
            weighted = 0.0
            for side_counts, size in ((left_counts, left_total), (right_counts, right_total)):
                weight = size / n
                weighted += weight * _entropy_counts(side_counts, size)
            gain = base_entropy - weighted
            if gain > best_gain:
                best_gain = gain
                best_threshold = threshold
        if best_threshold is None:
            return None

        left_mask = pair_values <= best_threshold
        left = pairs_idx[left_mask]
        right = pairs_idx[~left_mask]
        if n_missing:
            if left.size >= right.size:
                left = np.concatenate([left, missing_idx])
            else:
                right = np.concatenate([right, missing_idx])
        partitions = {"le": left, "gt": right}
        split_entropy = 0.0
        for indices in partitions.values():
            weight = indices.size / n
            if weight > 0:
                split_entropy -= weight * math.log2(weight)
        return self._score(best_gain, split_entropy), best_gain, best_threshold, partitions

    # -- prediction -------------------------------------------------------------

    def _predict_row(self, row: dict[str, Any]) -> str:
        if self.root_ is None:
            raise MiningError("tree has not been fitted")
        return self.root_.predict(row)

    def _batch_supported(self) -> bool:
        return self.root_ is not None and self._uses_base_impl(
            DecisionTreeClassifier, "_predict_row"
        )

    def _leaf_assignments(self, encoded: EncodedDataset):
        """Yield ``(node, row_indices)`` pairs routing every row to the node it
        stops at — the masked equivalent of :meth:`_Node.predict`'s walk."""
        stack: list[tuple[_Node, np.ndarray]] = [
            (self.root_, np.arange(encoded.n_rows, dtype=np.intp))
        ]
        while stack:
            node, idx = stack.pop()
            if node.is_leaf:
                yield node, idx
                continue
            if node.feature_kind == "numeric":
                values, missing = encoded.numeric_view(node.feature)
                v = values[idx]
                m = missing[idx]
                masks = {"le": (v <= node.threshold) & ~m, "gt": (v > node.threshold) & ~m}
                if node.majority_branch in masks:
                    masks[node.majority_branch] = masks[node.majority_branch] | m
                elif m.any():
                    # Trees grown by _build/_build_encoded always have a "le"/"gt"
                    # majority branch; for hand-built nodes without one, missing
                    # rows stop here — like children.get(None) in _Node.predict.
                    yield node, idx[m]
                for branch, mask in masks.items():
                    sub = idx[mask]
                    if sub.size == 0:
                        continue
                    child = node.children.get(branch)
                    if child is None:
                        yield node, sub
                    else:
                        stack.append((child, sub))
            else:
                codes, vocabulary, _ = encoded.codes_view(node.feature)
                codes = codes[idx]
                branches = list(node.children)
                position = {branch: j for j, branch in enumerate(branches)}
                majority = position.get(node.majority_branch, -1)
                # Destination per level; the extra trailing slot serves the
                # missing code -1 via negative indexing.
                lut = np.empty(len(vocabulary) + 1, dtype=np.int64)
                lut[-1] = majority
                for j, level in enumerate(vocabulary):
                    lut[j] = position.get(level, majority)
                destination = lut[codes]
                for j, branch in enumerate(branches):
                    sub = idx[destination == j]
                    if sub.size:
                        stack.append((node.children[branch], sub))
                stopped = idx[destination == -1]
                if stopped.size:
                    yield node, stopped

    def _predict_batch(self, encoded: EncodedDataset) -> list[str] | None:
        if not self._batch_supported():
            return None
        out = np.empty(encoded.n_rows, dtype=object)
        for node, idx in self._leaf_assignments(encoded):
            out[idx] = node.prediction if node.prediction is not None else ""
        return out.tolist()

    def _predict_proba_batch(self, encoded: EncodedDataset) -> list[dict[str, float]] | None:
        if not self._batch_supported():
            return None
        results: list[dict[str, float] | None] = [None] * encoded.n_rows
        for node, idx in self._leaf_assignments(encoded):
            distribution = node.distribution
            total = sum(distribution.values()) or 1
            proto = {cls: distribution.get(cls, 0) / total for cls in self.classes_}
            for i in idx.tolist():
                results[i] = dict(proto)
        return results

    # -- introspection -------------------------------------------------------------

    def depth(self) -> int:
        """Depth of the fitted tree (0 for a single leaf)."""
        if self.root_ is None:
            raise MiningError("tree has not been fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return node.depth
            return max(walk(child) for child in node.children.values())

        return walk(self.root_)

    def n_leaves(self) -> int:
        """Number of leaves of the fitted tree."""
        if self.root_ is None:
            raise MiningError("tree has not been fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return sum(walk(child) for child in node.children.values())

        return walk(self.root_)

    def extract_rules(self) -> list[dict[str, Any]]:
        """Export the tree as a list of IF/THEN rules for reporting."""
        if self.root_ is None:
            raise MiningError("tree has not been fitted")
        rules = []
        for conditions, prediction, distribution in self.root_.rules():
            total = sum(distribution.values())
            correct = distribution.get(prediction, 0)
            rules.append(
                {
                    "conditions": conditions,
                    "prediction": prediction,
                    "coverage": total,
                    "confidence": correct / total if total else 0.0,
                }
            )
        return rules

    def predict_proba(self, dataset: Dataset) -> list[dict[str, float]]:
        """Class distribution of the leaf each row falls into."""
        from repro.mining.base import check_fitted

        check_fitted(self)
        batch = self._predict_proba_batch(encode_dataset(dataset))
        if batch is not None:
            return batch
        results = []
        for row in dataset.iter_rows():
            node = self.root_
            features_only = {name: row.get(name) for name in self.feature_names_}
            while node is not None and not node.is_leaf:
                value = features_only.get(node.feature)
                if is_missing_value(value):
                    branch = node.majority_branch
                elif node.feature_kind == "numeric":
                    try:
                        branch = "le" if float(value) <= node.threshold else "gt"
                    except (TypeError, ValueError):
                        branch = node.majority_branch
                else:
                    branch = str(value)
                    if branch not in node.children:
                        branch = node.majority_branch
                next_node = node.children.get(branch)
                if next_node is None:
                    break
                node = next_node
            distribution = node.distribution if node is not None else {}
            total = sum(distribution.values()) or 1
            results.append({cls: distribution.get(cls, 0) / total for cls in self.classes_})
        return results
