"""Ensemble classifiers: bagging and random-subspace committees of base learners.

Ensembles are the natural "extension" experiment for the framework: they trade
the interpretability the paper's non-expert users need for robustness to noisy
and incomplete data, so the knowledge base can learn *when* that trade-off is
worth recommending.

Vote aggregation runs on the encoded-matrix views: every committee member is
asked for its vectorized ``_predict_batch`` over the shared encoding of the
test dataset (falling back to that member's row loop when it has no batch
path), and the per-row vote tally is a single ``np.add.at``/``bincount``-style
accumulation instead of ``n_rows`` Counter objects.  The Counter loop is kept
as the reference path; the batch tally reproduces its majority/tie-break
semantics (alphabetically first among the most-voted labels) exactly.
"""

from __future__ import annotations

import random
from collections import Counter
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.exceptions import MiningError
from repro.mining.base import Classifier, check_fitted
from repro.mining.tree import DecisionTreeClassifier
from repro.parallel import ViewHandle, effective_n_jobs, parallel_map
from repro.tabular.dataset import Column, ColumnRole, Dataset, is_missing_value
from repro.tabular.encoded import EncodedDataset, encode_dataset


def _fit_member(context: dict[str, Any], member_index: int) -> Classifier:
    """Fit one committee member from its pre-drawn sampling plan.

    The unit shared by the sequential and parallel fit tiers: every random
    decision (bootstrap indices, subspace columns) was drawn up front in
    :meth:`BaggingClassifier._fit`, so fitting member ``i`` is a pure
    function of the plan — independent of every other member, hence safe
    to run in any order on any worker.
    """
    dataset = context["view"].resolve()
    indices, chosen = context["plans"][member_index]
    subset = dataset.take(indices)
    if chosen is not None:
        kept = [c.name for c in subset.columns if c.role != ColumnRole.FEATURE or c.name in chosen]
        subset = subset.select_columns(kept)
    member = context["factory"]()
    member.fit(subset)
    return member


class BaggingClassifier(Classifier):
    """Bootstrap-aggregated committee of base classifiers (default: decision trees).

    Parameters
    ----------
    base_factory:
        Zero-argument callable producing a fresh, unfitted base classifier.
    n_estimators:
        Number of committee members.
    sample_fraction:
        Size of each bootstrap sample relative to the training set.
    feature_fraction:
        Fraction of feature columns given to each member (random subspace);
        1.0 disables subspacing.
    seed:
        Seed controlling both the bootstraps and the subspaces.
    n_jobs:
        Worker count for fitting members in parallel (``None`` reads the
        ``REPRO_N_JOBS`` environment variable; 1 is the sequential tier).
        The fitted committee is identical at any worker count: every
        random draw happens up front, in the parent, in the historical
        sequential order.
    """

    name = "bagged_trees"

    def __init__(
        self,
        base_factory: Callable[[], Classifier] | None = None,
        n_estimators: int = 11,
        sample_fraction: float = 1.0,
        feature_fraction: float = 1.0,
        seed: int = 0,
        n_jobs: int | None = None,
    ) -> None:
        super().__init__()
        if n_estimators < 1:
            raise MiningError("n_estimators must be at least 1")
        if not 0.0 < sample_fraction <= 1.0:
            raise MiningError("sample_fraction must be in (0, 1]")
        if not 0.0 < feature_fraction <= 1.0:
            raise MiningError("feature_fraction must be in (0, 1]")
        self.base_factory = base_factory or (lambda: DecisionTreeClassifier(max_depth=8))
        self.n_estimators = n_estimators
        self.sample_fraction = sample_fraction
        self.feature_fraction = feature_fraction
        self.seed = seed
        self.n_jobs = n_jobs
        self.estimators_: list[Classifier] = []
        self.estimator_features_: list[list[str]] = []

    def _draw_plans(
        self, labelled: list[int], feature_names: list[str]
    ) -> list[tuple[list[int], list[str] | None]]:
        """Pre-draw every member's ``(bootstrap_indices, subspace_or_None)`` plan.

        All draws happen here, on one RNG, in the exact order the old
        sequential fit loop made them (member ``i``'s bootstrap, then its
        subspace).  This is what makes member fits independent: the loop
        used to interleave drawing with fitting, so member ``i``'s sample
        depended on the RNG state left behind by members ``0..i-1`` —
        correct sequentially, but unreproducible the moment fits run out
        of order.  Drawing up front keeps the historical streams (seeded
        models are bit-identical to every release since the ensemble
        landed) while making each plan a self-contained work unit.
        """
        rng = random.Random(self.seed)
        n_subspace = max(1, int(round(self.feature_fraction * len(feature_names))))
        n_sample = max(2, int(round(self.sample_fraction * len(labelled))))
        plans: list[tuple[list[int], list[str] | None]] = []
        for _ in range(self.n_estimators):
            indices = [labelled[rng.randrange(len(labelled))] for _ in range(n_sample)]
            chosen = rng.sample(feature_names, n_subspace) if n_subspace < len(feature_names) else None
            plans.append((indices, chosen))
        return plans

    def _fit(self, dataset: Dataset, features: list[Column], target: Column) -> None:
        labelled = [i for i, value in enumerate(target.tolist()) if not is_missing_value(value)]
        if not labelled:
            raise MiningError("no labelled rows to train on")
        feature_names = [column.name for column in features]
        plans = self._draw_plans(labelled, feature_names)
        context = {"view": ViewHandle(dataset), "factory": self.base_factory, "plans": plans}
        n_workers = effective_n_jobs(self.n_jobs)
        members = None
        if n_workers > 1 and len(plans) > 1:
            members = parallel_map(
                _fit_member, len(plans), context=context, n_jobs=n_workers, error_cls=MiningError
            )
        if members is None:
            members = [_fit_member(context, i) for i in range(len(plans))]
        self.estimators_ = members
        self.estimator_features_ = [
            chosen if chosen is not None else list(feature_names) for _, chosen in plans
        ]

    def _member_votes(self, dataset: Dataset) -> list[list[str]]:
        """Return per-row lists of member predictions (reference vote path)."""
        per_member = [member.predict(dataset) for member in self.estimators_]
        return [
            [str(per_member[m][i]) for m in range(len(self.estimators_))]
            for i in range(dataset.n_rows)
        ]

    def _predict_row(self, row: dict[str, Any]) -> str:  # pragma: no cover - unused path
        raise MiningError("BaggingClassifier predicts dataset-wise; use predict()")

    # -- vectorized vote tally -------------------------------------------------

    def _vote_matrix(self, encoded: EncodedDataset) -> tuple[np.ndarray, list[str]] | None:
        """Tally member votes into an ``(n_rows, n_labels)`` count matrix.

        Each member contributes its vectorized ``_predict_batch`` over the
        shared encoding when it has one, falling back to that member's full
        ``predict`` (the row loop) otherwise.  Labels are collected into a
        vocabulary sorted at the end so that ``argmax`` reproduces the Counter
        path's alphabetical tie-break.
        """
        if not self.estimators_ or not self._uses_base_impl(BaggingClassifier, "_member_votes"):
            return None
        n = encoded.n_rows
        label_index: dict[str, int] = {}
        member_codes: list[np.ndarray] = []
        for member in self.estimators_:
            labels = member._predict_batch(encoded)
            if labels is None:
                labels = member.predict(encoded.dataset)
            codes = np.fromiter(
                (label_index.setdefault(str(label), len(label_index)) for label in labels),
                dtype=np.int64,
                count=n,
            )
            member_codes.append(codes)
        vocabulary = sorted(label_index)
        # Remap insertion-order codes onto the sorted vocabulary.
        sorted_position = {label: i for i, label in enumerate(vocabulary)}
        remap = np.empty(len(label_index), dtype=np.int64)
        for label, code in label_index.items():
            remap[code] = sorted_position[label]
        votes = np.zeros((n, len(vocabulary)), dtype=np.int64)
        rows = np.arange(n)
        for codes in member_codes:
            np.add.at(votes, (rows, remap[codes]), 1)
        return votes, vocabulary

    def _predict_batch(self, encoded: EncodedDataset) -> list[str] | None:
        tally = self._vote_matrix(encoded)
        if tally is None:
            return None
        votes, vocabulary = tally
        # argmax picks the first maximum; the vocabulary is sorted, matching
        # the max(sorted(counts), key=counts.get) tie-break of the vote loop.
        return [vocabulary[c] for c in votes.argmax(axis=1).tolist()]

    def _predict_proba_batch(self, encoded: EncodedDataset) -> list[dict[str, float]] | None:
        tally = self._vote_matrix(encoded)
        if tally is None:
            return None
        votes, vocabulary = tally
        vocabulary_position = {label: i for i, label in enumerate(vocabulary)}
        position = {
            cls: vocabulary_position[cls] for cls in self.classes_ if cls in vocabulary_position
        }
        totals = votes.sum(axis=1)
        results = []
        for i, total in enumerate(totals.tolist()):
            total = total or 1
            row = votes[i]
            results.append(
                {
                    cls: (int(row[position[cls]]) if cls in position else 0) / total
                    for cls in self.classes_
                }
            )
        return results

    # -- public API ------------------------------------------------------------

    def predict(self, dataset: Dataset) -> list[str]:
        check_fitted(self)
        batch = self._predict_batch(encode_dataset(dataset))
        if batch is not None:
            return batch
        predictions = []
        for votes in self._member_votes(dataset):
            counts = Counter(votes)
            predictions.append(max(sorted(counts), key=counts.get))
        return predictions

    def predict_proba(self, dataset: Dataset) -> list[dict[str, float]]:
        check_fitted(self)
        batch = self._predict_proba_batch(encode_dataset(dataset))
        if batch is not None:
            return batch
        results = []
        for votes in self._member_votes(dataset):
            counts = Counter(votes)
            total = sum(counts.values()) or 1
            results.append({cls: counts.get(cls, 0) / total for cls in self.classes_})
        return results

    def describe(self) -> dict[str, Any]:
        description = super().describe()
        description["n_estimators"] = len(self.estimators_)
        description["feature_fraction"] = self.feature_fraction
        return description


class RandomSubspaceForest(BaggingClassifier):
    """Bagging with per-member random feature subspaces (a lightweight random forest)."""

    name = "random_subspace_forest"

    def __init__(
        self,
        n_estimators: int = 15,
        feature_fraction: float = 0.6,
        seed: int = 0,
        n_jobs: int | None = None,
    ) -> None:
        super().__init__(
            base_factory=lambda: DecisionTreeClassifier(max_depth=8, min_samples_split=4),
            n_estimators=n_estimators,
            sample_fraction=1.0,
            feature_fraction=feature_fraction,
            seed=seed,
            n_jobs=n_jobs,
        )
