"""Common estimator interfaces for the mining algorithms.

Classifiers implement a two-tier prediction protocol: the mandatory
row-at-a-time :meth:`Classifier._predict_row`, and an optional vectorized
:meth:`Classifier._predict_batch` over the cached encoded-matrix view of the
dataset (:mod:`repro.tabular.encoded`).  :meth:`Classifier.predict` tries the
batch path first and transparently falls back to the row loop, so estimators
opt into vectorization without changing the public API or its semantics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import Any

from repro.exceptions import MiningError
from repro.tabular.dataset import Column, Dataset
from repro.tabular.encoded import EncodedDataset, encode_dataset


def check_fitted(estimator: "Classifier | Clusterer | Transformer") -> None:
    """Raise :class:`~repro.exceptions.MiningError` if the estimator is unfitted."""
    if not getattr(estimator, "_fitted", False):
        raise MiningError(f"{type(estimator).__name__} must be fitted before use")


class Classifier(ABC):
    """Supervised classifier over a :class:`~repro.tabular.dataset.Dataset`.

    Subclasses implement :meth:`_fit` and :meth:`_predict_row` (or override
    :meth:`predict` wholesale).  The target column is the dataset column whose
    role is ``target`` (see :meth:`Dataset.set_target`).
    """

    #: Canonical registry name; subclasses override.
    name = "classifier"

    def __init__(self) -> None:
        self._fitted = False
        self.classes_: list[Any] = []
        self.feature_names_: list[str] = []
        self.target_name_: str | None = None

    # -- template methods -----------------------------------------------------

    @abstractmethod
    def _fit(self, dataset: Dataset, features: list[Column], target: Column) -> None:
        """Train on the prepared features and target."""

    @abstractmethod
    def _predict_row(self, row: dict[str, Any]) -> Any:
        """Predict the class label of one row (mapping feature name → value)."""

    def _predict_batch(self, encoded: EncodedDataset) -> Sequence[Any] | None:
        """Vectorized prediction over an encoded dataset view.

        Return ``None`` (the default) to fall back to the per-row path.
        Implementations must produce exactly the labels the row path would.
        """
        return None

    def _uses_base_impl(self, owner: type, *method_names: str) -> bool:
        """True when this instance inherits ``owner``'s implementation of every
        named method.

        Batch/vectorized paths replicate specific row-at-a-time reference
        methods; a subclass that overrides any of them must get its customised
        behaviour, so vectorized shortcuts guard on this before engaging.
        """
        cls = type(self)
        return all(getattr(cls, name) is getattr(owner, name) for name in method_names)

    def _predict_proba_batch(self, encoded: EncodedDataset) -> list[dict[str, float]] | None:
        """Vectorized counterpart of :meth:`predict_proba`; ``None`` → fall back."""
        return None

    # -- public API --------------------------------------------------------------

    def fit(self, dataset: Dataset) -> "Classifier":
        """Train the classifier on ``dataset`` (must have a target column)."""
        target = dataset.target_column()
        features = dataset.feature_columns()
        if not features:
            raise MiningError("dataset has no feature columns")
        labels = [v for v in target.non_missing()]
        if not labels:
            raise MiningError("target column has no labelled rows")
        self.classes_ = sorted({str(v) for v in labels})
        self.feature_names_ = [c.name for c in features]
        self.target_name_ = target.name
        self._fit(dataset, features, target)
        self._fitted = True
        return self

    def predict(self, dataset: Dataset) -> list[Any]:
        """Predict a class label for every row of ``dataset``."""
        check_fitted(self)
        batch = self._predict_batch(encode_dataset(dataset))
        if batch is not None:
            return list(batch)
        predictions = []
        for row in dataset.iter_rows():
            features_only = {name: row.get(name) for name in self.feature_names_}
            predictions.append(self._predict_row(features_only))
        return predictions

    def predict_proba(self, dataset: Dataset) -> list[dict[str, float]]:
        """Per-class probabilities; default is a degenerate distribution."""
        check_fitted(self)
        batch = self._predict_proba_batch(encode_dataset(dataset))
        if batch is not None:
            return batch
        predictions = self.predict(dataset)
        return [
            {cls: (1.0 if str(pred) == cls else 0.0) for cls in self.classes_}
            for pred in predictions
        ]

    def score(self, dataset: Dataset) -> float:
        """Accuracy of the classifier on a labelled dataset."""
        from repro.mining.metrics import accuracy

        truth = [str(v) for v in dataset.target_column().tolist()]
        predicted = [str(v) for v in self.predict(dataset)]
        return accuracy(truth, predicted)

    def describe(self) -> dict[str, Any]:
        """A lightweight, human-readable description of the fitted model."""
        check_fitted(self)
        return {
            "algorithm": self.name,
            "classes": list(self.classes_),
            "features": list(self.feature_names_),
            "target": self.target_name_,
        }


class Clusterer(ABC):
    """Unsupervised clusterer over the numeric view of a dataset."""

    name = "clusterer"

    def __init__(self) -> None:
        self._fitted = False
        self.labels_: list[int] = []

    @abstractmethod
    def fit(self, dataset: Dataset) -> "Clusterer":
        """Cluster the dataset; stores assignments in :attr:`labels_`."""

    def fit_predict(self, dataset: Dataset) -> list[int]:
        """Fit and return the per-row cluster labels."""
        self.fit(dataset)
        return list(self.labels_)


class Transformer(ABC):
    """A fitted transformation of a dataset (e.g. PCA, feature selection)."""

    name = "transformer"

    def __init__(self) -> None:
        self._fitted = False

    @abstractmethod
    def fit(self, dataset: Dataset) -> "Transformer":
        """Learn the transformation parameters."""

    @abstractmethod
    def transform(self, dataset: Dataset) -> Dataset:
        """Apply the transformation and return a new dataset."""

    def fit_transform(self, dataset: Dataset) -> Dataset:
        """Fit then transform in one call."""
        return self.fit(dataset).transform(dataset)
