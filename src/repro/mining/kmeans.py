"""Lloyd's k-means clustering over the numeric view of a dataset."""

from __future__ import annotations

import numpy as np

from repro.exceptions import MiningError
from repro.mining.base import Clusterer
from repro.mining.preprocessing import DatasetEncoder
from repro.tabular.dataset import Dataset


class KMeansClusterer(Clusterer):
    """k-means with k-means++ style seeding and a fixed iteration budget.

    Mixed-type datasets are encoded with :class:`DatasetEncoder` (one-hot +
    standardised numerics) so clustering also works on LOD tabulations.
    """

    name = "kmeans"

    def __init__(self, k: int = 3, max_iterations: int = 100, seed: int = 0, tolerance: float = 1e-6) -> None:
        super().__init__()
        if k < 1:
            raise MiningError("k must be at least 1")
        self.k = k
        self.max_iterations = max_iterations
        self.seed = seed
        self.tolerance = tolerance
        self.centroids_: np.ndarray | None = None
        self.inertia_: float = float("nan")
        self._encoder: DatasetEncoder | None = None

    @staticmethod
    def _squared_distances(X: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """Pairwise squared euclidean distances, one centroid at a time.

        Avoids materialising the ``(n, k, d)`` difference tensor of the naive
        broadcast while keeping the exact ``((x - c) ** 2).sum()`` arithmetic
        (the matmul form ``|x|^2 - 2 x·c + |c|^2`` would introduce
        cancellation error and perturb seeded assignments near ties).
        """
        d2 = np.empty((X.shape[0], centroids.shape[0]))
        for j in range(centroids.shape[0]):
            d2[:, j] = ((X - centroids[j]) ** 2).sum(axis=1)
        return d2

    def _seed_centroids(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = X.shape[0]
        centroids = [X[rng.integers(n)]]
        for _ in range(1, self.k):
            distances = np.min(
                np.stack([((X - c) ** 2).sum(axis=1) for c in centroids]), axis=0
            )
            total = distances.sum()
            if total <= 0:
                centroids.append(X[rng.integers(n)])
                continue
            probabilities = distances / total
            centroids.append(X[rng.choice(n, p=probabilities)])
        return np.stack(centroids)

    def fit(self, dataset: Dataset) -> "KMeansClusterer":
        self._encoder = DatasetEncoder(scale=True)
        X = self._encoder.fit_transform(dataset)
        n = X.shape[0]
        if n < self.k:
            raise MiningError(f"cannot form {self.k} clusters from {n} rows")
        rng = np.random.default_rng(self.seed)
        centroids = self._seed_centroids(X, rng)
        labels = np.zeros(n, dtype=int)
        for _ in range(self.max_iterations):
            labels = self._squared_distances(X, centroids).argmin(axis=1)
            new_centroids = centroids.copy()
            for cluster in range(self.k):
                members = X[labels == cluster]
                if members.shape[0] > 0:
                    new_centroids[cluster] = members.mean(axis=0)
            shift = float(np.abs(new_centroids - centroids).max())
            centroids = new_centroids
            if shift < self.tolerance:
                break
        self.centroids_ = centroids
        self.labels_ = labels.tolist()
        distances = self._squared_distances(X, centroids)
        self.inertia_ = float(distances[np.arange(n), labels].sum())
        self._fitted = True
        return self

    def predict(self, dataset: Dataset) -> list[int]:
        """Assign each row of a new dataset to its nearest fitted centroid."""
        if not self._fitted or self.centroids_ is None or self._encoder is None:
            raise MiningError("KMeansClusterer must be fitted before predict")
        X = self._encoder.transform(dataset)
        return self._squared_distances(X, self.centroids_).argmin(axis=1).astype(int).tolist()
