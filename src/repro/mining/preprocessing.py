"""Preprocessing: encoding, imputation, scaling and feature selection.

The paper stresses that preprocessing "has a significant impact on the quality
of the results of the applied data mining algorithms" and "requires
significantly more effort than the data mining task itself" (§1).  These
utilities are the automated preprocessing steps the framework can apply and
report to the non-expert user.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.exceptions import MiningError
from repro.tabular.dataset import Column, ColumnRole, Dataset, is_missing_value
from repro.tabular.stats import mutual_information


# ---------------------------------------------------------------------------
# Imputation
# ---------------------------------------------------------------------------

def impute(dataset: Dataset, strategy: str = "mean_mode") -> Dataset:
    """Fill missing cells.

    Strategies
    ----------
    ``mean_mode``
        Numeric columns get their mean, other columns get their mode.
    ``median_mode``
        Numeric columns get their median instead.
    ``constant``
        Numeric columns get 0.0 and other columns the string ``"missing"``.
    ``drop_rows``
        Rows containing any missing feature value are removed.
    """
    if strategy not in ("mean_mode", "median_mode", "constant", "drop_rows"):
        raise MiningError(f"unknown imputation strategy {strategy!r}")
    if strategy == "drop_rows":
        keep = []
        feature_names = [c.name for c in dataset.columns if c.role != ColumnRole.IDENTIFIER]
        for i, row in enumerate(dataset.iter_rows()):
            if not any(is_missing_value(row[name]) for name in feature_names):
                keep.append(i)
        if not keep:
            raise MiningError("drop_rows imputation would remove every row")
        return dataset.take(keep)

    columns = []
    for column in dataset.columns:
        mask = column.missing_mask()
        if not mask.any():
            columns.append(column.copy())
            continue
        values = column.tolist()
        if column.is_numeric():
            present = [v for v in values if not is_missing_value(v)]
            if strategy == "constant" or not present:
                fill: Any = 0.0
            elif strategy == "median_mode":
                fill = float(np.median(present))
            else:
                fill = float(np.mean(present))
        else:
            counts = column.value_counts()
            if strategy == "constant" or not counts:
                fill = "missing"
            else:
                fill = max(counts, key=counts.get)
        filled = [fill if is_missing_value(v) else v for v in values]
        columns.append(Column(column.name, filled, ctype=column.ctype, role=column.role))
    return Dataset(columns, name=dataset.name)


# ---------------------------------------------------------------------------
# Scaling
# ---------------------------------------------------------------------------

def standardize(dataset: Dataset, columns: Sequence[str] | None = None) -> Dataset:
    """Z-score numeric feature columns (missing values preserved)."""
    from repro.tabular.transforms import normalize

    return normalize(dataset, columns=columns, method="zscore")


# ---------------------------------------------------------------------------
# Encoding to a numeric matrix
# ---------------------------------------------------------------------------

class DatasetEncoder:
    """Encode a mixed-type dataset into a dense numeric matrix.

    Numeric features are mean-imputed and optionally standardised; categorical,
    boolean and datetime features are one-hot encoded (missing becomes an
    all-zero block).  The encoder is fitted on training data and can then be
    applied consistently to test data.
    """

    def __init__(self, scale: bool = True, max_one_hot: int = 50) -> None:
        self.scale = scale
        self.max_one_hot = max_one_hot
        self._fitted = False
        self._numeric: list[str] = []
        self._categorical: dict[str, list[Any]] = {}
        self._means: dict[str, float] = {}
        self._stds: dict[str, float] = {}
        self.feature_labels_: list[str] = []

    def fit(self, dataset: Dataset) -> "DatasetEncoder":
        """Learn column statistics and category levels from ``dataset``."""
        self._numeric = []
        self._categorical = {}
        self._means = {}
        self._stds = {}
        self.feature_labels_ = []
        for column in dataset.feature_columns():
            if column.is_numeric():
                present = np.asarray(column.non_missing(), dtype=float)
                mean = float(present.mean()) if present.size else 0.0
                std = float(present.std()) if present.size else 1.0
                self._numeric.append(column.name)
                self._means[column.name] = mean
                self._stds[column.name] = std if std > 0 else 1.0
                self.feature_labels_.append(column.name)
            else:
                levels = [str(v) for v in column.distinct()][: self.max_one_hot]
                self._categorical[column.name] = levels
                self.feature_labels_.extend(f"{column.name}={level}" for level in levels)
        if not self.feature_labels_:
            raise MiningError("no feature columns to encode")
        self._fitted = True
        return self

    def transform(self, dataset: Dataset) -> np.ndarray:
        """Encode ``dataset`` using the fitted parameters.

        The one-hot blocks are filled by integer-code indexing over the
        dataset's cached encoded view rather than a per-cell Python loop.
        """
        from repro.tabular.encoded import encode_dataset, map_codes_to_index

        if not self._fitted:
            raise MiningError("DatasetEncoder must be fitted before transform")
        n = dataset.n_rows
        encoded = encode_dataset(dataset)
        blocks: list[np.ndarray] = []
        for name in self._numeric:
            if name in dataset:
                raw = dataset[name].values.astype(float)
            else:
                raw = np.full(n, np.nan)
            filled = np.where(np.isnan(raw), self._means[name], raw)
            if self.scale:
                filled = (filled - self._means[name]) / self._stds[name]
            blocks.append(filled.reshape(-1, 1))
        for name, levels in self._categorical.items():
            block = np.zeros((n, len(levels)))
            if name in dataset:
                codes, vocabulary, _ = encoded.codes_view(name)
                if vocabulary:
                    index = {level: j for j, level in enumerate(levels)}
                    mapped = map_codes_to_index(codes, vocabulary, index)
                    rows = np.nonzero(mapped >= 0)[0]
                    block[rows, mapped[rows]] = 1.0
            blocks.append(block)
        return np.hstack(blocks) if blocks else np.empty((n, 0))

    def fit_transform(self, dataset: Dataset) -> np.ndarray:
        return self.fit(dataset).transform(dataset)


def encode_labels(values: Sequence[Any]) -> tuple[np.ndarray, list[str]]:
    """Encode class labels as integers; returns (codes, ordered label list)."""
    labels = sorted({str(v) for v in values if not is_missing_value(v)})
    index = {label: i for i, label in enumerate(labels)}
    codes = np.asarray([index.get(str(v), -1) for v in values], dtype=int)
    return codes, labels


# ---------------------------------------------------------------------------
# Feature selection
# ---------------------------------------------------------------------------

def variance_threshold(dataset: Dataset, threshold: float = 0.0) -> list[str]:
    """Names of numeric feature columns whose variance exceeds ``threshold``."""
    selected = []
    for column in dataset.feature_columns():
        if not column.is_numeric():
            selected.append(column.name)
            continue
        present = np.asarray(column.non_missing(), dtype=float)
        if present.size > 1 and float(present.var()) > threshold:
            selected.append(column.name)
    return selected


def correlation_filter(dataset: Dataset, threshold: float = 0.95) -> list[str]:
    """Drop numeric features that are highly correlated with an earlier feature.

    Returns the names of the retained feature columns (non-numeric features
    are always retained).  This directly addresses the paper's example of
    strongly correlated attributes producing correct but useless patterns.
    """
    from repro.tabular.stats import pearson

    numeric = [c for c in dataset.feature_columns() if c.is_numeric()]
    retained: list[Column] = []
    for candidate in numeric:
        redundant = False
        for kept in retained:
            corr = pearson(candidate.values, kept.values)
            if not math.isnan(corr) and abs(corr) >= threshold:
                redundant = True
                break
        if not redundant:
            retained.append(candidate)
    retained_names = {c.name for c in retained}
    return [
        c.name
        for c in dataset.feature_columns()
        if not c.is_numeric() or c.name in retained_names
    ]


def information_gain_ranking(dataset: Dataset, bins: int = 4) -> list[tuple[str, float]]:
    """Rank features by mutual information with the target (descending).

    Numeric features are discretised into ``bins`` equal-width bins before the
    mutual information is computed.
    """
    from repro.tabular.transforms import discretize

    target = dataset.target_column()
    scores: list[tuple[str, float]] = []
    for column in dataset.feature_columns():
        if column.is_numeric():
            try:
                working = discretize(
                    Dataset([column.copy(), target.copy()], name="tmp"), column.name, bins=bins
                )
                feature = working[column.name]
            except Exception:
                scores.append((column.name, 0.0))
                continue
        else:
            feature = column
        scores.append((column.name, mutual_information(feature, target)))
    scores.sort(key=lambda pair: (-pair[1], pair[0]))
    return scores


def select_features(dataset: Dataset, k: int, method: str = "information_gain") -> Dataset:
    """Keep the ``k`` best feature columns (plus target/identifier columns)."""
    if k < 1:
        raise MiningError("k must be at least 1")
    if method == "information_gain":
        ranking = information_gain_ranking(dataset)
        keep = {name for name, _ in ranking[:k]}
    elif method == "variance":
        names = variance_threshold(dataset)
        keep = set(names[:k])
    else:
        raise MiningError(f"unknown feature selection method {method!r}")
    columns = [
        c
        for c in dataset.columns
        if c.role != ColumnRole.FEATURE or c.name in keep
    ]
    return Dataset(columns, name=dataset.name)
