"""k-nearest-neighbours classifier with a heterogeneous distance function.

Distances follow HEOM (Heterogeneous Euclidean-Overlap Metric): numeric
attributes contribute a range-normalised absolute difference, categorical
attributes contribute 0/1 overlap, and any comparison involving a missing
value contributes the maximum distance of 1.  This makes k-NN's sensitivity to
missing data, noise and added irrelevant dimensions directly observable in the
experiments.
"""

from __future__ import annotations

import heapq
import math
from collections import Counter
from typing import Any

from repro.exceptions import MiningError
from repro.mining.base import Classifier
from repro.tabular.dataset import Column, Dataset, is_missing_value


class KNNClassifier(Classifier):
    """k-NN with HEOM distance over mixed-type rows.

    Parameters
    ----------
    k:
        Number of neighbours.
    weighted:
        When ``True`` votes are weighted by 1/(distance + eps).
    """

    name = "knn"

    def __init__(self, k: int = 5, weighted: bool = False) -> None:
        super().__init__()
        if k < 1:
            raise MiningError("k must be at least 1")
        self.k = k
        self.weighted = weighted
        self._rows: list[dict[str, Any]] = []
        self._labels: list[str] = []
        self._ranges: dict[str, tuple[float, float]] = {}
        self._numeric: set[str] = set()

    def _fit(self, dataset: Dataset, features: list[Column], target: Column) -> None:
        self._numeric = {c.name for c in features if c.is_numeric()}
        self._ranges = {}
        for column in features:
            if not column.is_numeric():
                continue
            present = [float(v) for v in column.non_missing()]
            if present:
                low, high = min(present), max(present)
            else:
                low, high = 0.0, 1.0
            self._ranges[column.name] = (low, high if high > low else low + 1.0)
        self._rows = []
        self._labels = []
        target_values = target.tolist()
        feature_names = [c.name for c in features]
        for i, row in enumerate(dataset.iter_rows()):
            label = target_values[i]
            if is_missing_value(label):
                continue
            self._rows.append({name: row[name] for name in feature_names})
            self._labels.append(str(label))
        if not self._rows:
            raise MiningError("no labelled rows to train on")

    def _distance(self, a: dict[str, Any], b: dict[str, Any]) -> float:
        total = 0.0
        for name in self.feature_names_:
            va, vb = a.get(name), b.get(name)
            if is_missing_value(va) or is_missing_value(vb):
                contribution = 1.0
            elif name in self._numeric:
                low, high = self._ranges.get(name, (0.0, 1.0))
                span = high - low
                try:
                    contribution = min(abs(float(va) - float(vb)) / span, 1.0) if span > 0 else 0.0
                except (TypeError, ValueError):
                    contribution = 1.0
            else:
                contribution = 0.0 if str(va) == str(vb) else 1.0
            total += contribution * contribution
        return math.sqrt(total)

    def _predict_row(self, row: dict[str, Any]) -> str:
        if not self._rows:
            raise MiningError("model has not been fitted")
        k = min(self.k, len(self._rows))
        neighbours = heapq.nsmallest(
            k,
            ((self._distance(row, train_row), label) for train_row, label in zip(self._rows, self._labels)),
            key=lambda pair: pair[0],
        )
        if self.weighted:
            votes: dict[str, float] = {}
            for distance, label in neighbours:
                votes[label] = votes.get(label, 0.0) + 1.0 / (distance + 1e-9)
        else:
            votes = dict(Counter(label for _, label in neighbours))
        return max(sorted(votes), key=votes.get)

    def predict_proba(self, dataset: Dataset) -> list[dict[str, float]]:
        from repro.mining.base import check_fitted

        check_fitted(self)
        results = []
        k = min(self.k, len(self._rows))
        for row in dataset.iter_rows():
            features_only = {name: row.get(name) for name in self.feature_names_}
            neighbours = heapq.nsmallest(
                k,
                (
                    (self._distance(features_only, train_row), label)
                    for train_row, label in zip(self._rows, self._labels)
                ),
                key=lambda pair: pair[0],
            )
            counts = Counter(label for _, label in neighbours)
            total = sum(counts.values()) or 1
            results.append({cls: counts.get(cls, 0) / total for cls in self.classes_})
        return results
