"""k-nearest-neighbours classifier with a heterogeneous distance function.

Distances follow HEOM (Heterogeneous Euclidean-Overlap Metric): numeric
attributes contribute a range-normalised absolute difference, categorical
attributes contribute 0/1 overlap, and any comparison involving a missing
value contributes the maximum distance of 1.  This makes k-NN's sensitivity to
missing data, noise and added irrelevant dimensions directly observable in the
experiments.

Prediction runs through the vectorized encoded-matrix path
(:mod:`repro.tabular.encoded`): squared HEOM distances are accumulated
feature-by-feature over broadcast ``(n_test, n_train)`` blocks in exactly the
order the per-cell loop adds them, neighbours are ranked with a stable sort,
and votes are tallied in ascending-distance order, so the predictions are
bit-identical to the historical row-at-a-time implementation (which remains as
:meth:`KNNClassifier._predict_row` for subclasses and fallback).
"""

from __future__ import annotations

import heapq
import math
from collections import Counter
from typing import Any

import numpy as np

from repro.exceptions import MiningError
from repro.mining.base import Classifier, check_fitted
from repro.tabular.dataset import Column, Dataset, is_missing_value
from repro.tabular.encoded import EncodedDataset, encode_dataset, map_codes_to_index

#: Test-rows-per-chunk budget for the pairwise distance blocks (~8M cells).
_CHUNK_CELLS = 8_000_000


class KNNClassifier(Classifier):
    """k-NN with HEOM distance over mixed-type rows.

    Parameters
    ----------
    k:
        Number of neighbours.
    weighted:
        When ``True`` votes are weighted by 1/(distance + eps).
    """

    name = "knn"

    def __init__(self, k: int = 5, weighted: bool = False) -> None:
        super().__init__()
        if k < 1:
            raise MiningError("k must be at least 1")
        self.k = k
        self.weighted = weighted
        self._labels: list[str] = []
        self._ranges: dict[str, tuple[float, float]] = {}
        self._numeric: set[str] = set()
        self._rows_cache: list[dict[str, Any]] | None = None
        self._train_dataset: Dataset | None = None
        self._train_indices: np.ndarray | None = None
        self._train_num: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._train_cat: dict[str, tuple[np.ndarray, dict[str, int]]] = {}

    def _fit(self, dataset: Dataset, features: list[Column], target: Column) -> None:
        self._numeric = {c.name for c in features if c.is_numeric()}
        self._ranges = {}
        for column in features:
            if not column.is_numeric():
                continue
            present = [float(v) for v in column.non_missing()]
            if present:
                low, high = min(present), max(present)
            else:
                low, high = 0.0, 1.0
            self._ranges[column.name] = (low, high if high > low else low + 1.0)

        target_values = target.tolist()
        keep = [i for i, v in enumerate(target_values) if not is_missing_value(v)]
        if not keep:
            raise MiningError("no labelled rows to train on")
        self._labels = [str(target_values[i]) for i in keep]
        self._rows_cache = None
        self._train_dataset = dataset
        self._train_indices = np.asarray(keep, dtype=np.intp)

        encoded = encode_dataset(dataset)
        self._train_num = {}
        self._train_cat = {}
        for column in features:
            name = column.name
            if name in self._numeric:
                values, missing = encoded.numeric_view(name)
                self._train_num[name] = (values[self._train_indices], missing[self._train_indices])
            else:
                codes, _, index = encoded.codes_view(name)
                self._train_cat[name] = (codes[self._train_indices], index)

    # -- row-at-a-time path (reference implementation / fallback) -------------

    @property
    def _rows(self) -> list[dict[str, Any]]:
        """Training rows as feature dicts, materialised lazily for the row path."""
        if self._rows_cache is None:
            if self._train_dataset is None:
                return []
            rows = []
            for i in self._train_indices.tolist():
                row = self._train_dataset.row(i)
                rows.append({name: row.get(name) for name in self.feature_names_})
            self._rows_cache = rows
        return self._rows_cache

    def _distance(self, a: dict[str, Any], b: dict[str, Any]) -> float:
        total = 0.0
        for name in self.feature_names_:
            va, vb = a.get(name), b.get(name)
            if is_missing_value(va) or is_missing_value(vb):
                contribution = 1.0
            elif name in self._numeric:
                low, high = self._ranges.get(name, (0.0, 1.0))
                span = high - low
                try:
                    contribution = min(abs(float(va) - float(vb)) / span, 1.0) if span > 0 else 0.0
                except (TypeError, ValueError):
                    contribution = 1.0
            else:
                contribution = 0.0 if str(va) == str(vb) else 1.0
            total += contribution * contribution
        return math.sqrt(total)

    def _predict_row(self, row: dict[str, Any]) -> str:
        if not self._rows:
            raise MiningError("model has not been fitted")
        k = min(self.k, len(self._rows))
        neighbours = heapq.nsmallest(
            k,
            ((self._distance(row, train_row), label) for train_row, label in zip(self._rows, self._labels)),
            key=lambda pair: pair[0],
        )
        if self.weighted:
            votes: dict[str, float] = {}
            for distance, label in neighbours:
                votes[label] = votes.get(label, 0.0) + 1.0 / (distance + 1e-9)
        else:
            votes = dict(Counter(label for _, label in neighbours))
        return max(sorted(votes), key=votes.get)

    # -- vectorized path -------------------------------------------------------

    def _batch_supported(self) -> bool:
        """The batch path replicates the base row loop; bypass it if a subclass
        customised the per-row machinery."""
        return self._uses_base_impl(KNNClassifier, "_distance", "_predict_row")

    def _squared_distances(self, encoded: EncodedDataset, test_slice: slice) -> np.ndarray:
        """Squared HEOM distances between a chunk of test rows and all training rows.

        Contributions are accumulated feature-by-feature in ``feature_names_``
        order — the same summation order as :meth:`_distance` — so the floats
        (and therefore neighbour ranking and weighted votes) match the row path
        bit for bit.
        """
        n_train = len(self._labels)
        d2: np.ndarray | None = None
        for name in self.feature_names_:
            if name in self._numeric:
                values, missing = encoded.numeric_view(name)
                values, missing = values[test_slice], missing[test_slice]
                train_values, train_missing = self._train_num[name]
                low, high = self._ranges.get(name, (0.0, 1.0))
                span = high - low
                if span > 0:
                    contribution = np.abs(values[:, None] - train_values[None, :]) / span
                    np.minimum(contribution, 1.0, out=contribution)
                    contribution *= contribution
                else:
                    contribution = np.zeros((values.shape[0], n_train))
                either_missing = missing[:, None] | train_missing[None, :]
                contribution[either_missing] = 1.0
            else:
                codes, vocabulary, _ = encoded.codes_view(name)
                train_codes, train_index = self._train_cat.get(name, (np.full(n_train, -1, dtype=np.int64), {}))
                # Levels unseen at fit time get the sentinel -2: distinct from
                # every train code and from the missing marker -1, so they
                # mismatch all non-missing training values, like str inequality.
                mapped = map_codes_to_index(codes[test_slice], vocabulary, train_index, unseen_code=-2)
                test_col = mapped[:, None]
                train_col = train_codes[None, :]
                contribution = ((test_col < 0) | (train_col < 0) | (test_col != train_col)).astype(float)
            d2 = contribution if d2 is None else d2 + contribution
        if d2 is None:
            rows = len(range(*test_slice.indices(encoded.n_rows)))
            d2 = np.zeros((rows, n_train))
        return d2

    def _neighbour_codes(
        self, encoded: EncodedDataset, label_codes: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbour label codes, neighbour distances)`` of shape (n, k).

        Neighbours are ordered by ascending distance with ties broken by
        training-row order, exactly like ``heapq.nsmallest`` over the row pairs.
        """
        n = encoded.n_rows
        n_train = len(self._labels)
        chunk = max(1, _CHUNK_CELLS // max(n_train, 1))
        codes_out = np.empty((n, k), dtype=np.int64)
        dist_out = np.empty((n, k))
        for start in range(0, n, chunk):
            block = slice(start, min(start + chunk, n))
            d2 = self._squared_distances(encoded, block)
            order = np.argsort(d2, axis=1, kind="stable")[:, :k]
            codes_out[block] = label_codes[order]
            dist_out[block] = np.sqrt(np.take_along_axis(d2, order, axis=1))
        return codes_out, dist_out

    def _label_codes(self) -> tuple[list[str], np.ndarray]:
        classes = list(self.classes_)
        index = {cls: i for i, cls in enumerate(classes)}
        return classes, np.asarray([index[label] for label in self._labels], dtype=np.int64)

    def _predict_batch(self, encoded: EncodedDataset) -> list[str] | None:
        if not self._batch_supported() or not self._labels:
            return None
        if encoded.n_rows == 0:
            return []
        classes, label_codes = self._label_codes()
        k = min(self.k, len(self._labels))
        neighbour_codes, neighbour_dist = self._neighbour_codes(encoded, label_codes, k)
        n = encoded.n_rows
        votes = np.zeros((n, len(classes)))
        row_index = np.repeat(np.arange(n), k)
        if self.weighted:
            # np.add.at accumulates repeated indices in element order, i.e. in
            # ascending-distance order per row — the same float summation order
            # as the per-row vote dictionary.
            weights = (1.0 / (neighbour_dist + 1e-9)).ravel()
            np.add.at(votes, (row_index, neighbour_codes.ravel()), weights)
        else:
            np.add.at(votes, (row_index, neighbour_codes.ravel()), 1.0)
        # argmax returns the first maximum; classes_ is sorted, matching the
        # alphabetical tie-break of max(sorted(votes), key=votes.get).
        winners = votes.argmax(axis=1)
        return [classes[c] for c in winners.tolist()]

    def _predict_proba_batch(self, encoded: EncodedDataset) -> list[dict[str, float]] | None:
        if not self._batch_supported() or not self._labels:
            return None
        if encoded.n_rows == 0:
            return []
        classes, label_codes = self._label_codes()
        k = min(self.k, len(self._labels))
        neighbour_codes, _ = self._neighbour_codes(encoded, label_codes, k)
        n = encoded.n_rows
        counts = np.zeros((n, len(classes)), dtype=np.int64)
        np.add.at(counts, (np.repeat(np.arange(n), k), neighbour_codes.ravel()), 1)
        total = k or 1
        return [
            {cls: int(counts[i, j]) / total for j, cls in enumerate(classes)}
            for i in range(n)
        ]

    def predict_proba(self, dataset: Dataset) -> list[dict[str, float]]:
        check_fitted(self)
        batch = self._predict_proba_batch(encode_dataset(dataset))
        if batch is not None:
            return batch
        results = []
        k = min(self.k, len(self._rows))
        for row in dataset.iter_rows():
            features_only = {name: row.get(name) for name in self.feature_names_}
            neighbours = heapq.nsmallest(
                k,
                (
                    (self._distance(features_only, train_row), label)
                    for train_row, label in zip(self._rows, self._labels)
                ),
                key=lambda pair: pair[0],
            )
            counts = Counter(label for _, label in neighbours)
            total = sum(counts.values()) or 1
            results.append({cls: counts.get(cls, 0) / total for cls in self.classes_})
        return results
