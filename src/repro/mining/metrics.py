"""Evaluation metrics for classification, regression, clustering and rules."""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.exceptions import MiningError


def _as_strings(values: Sequence[Any]) -> list[str]:
    return [str(v) for v in values]


def _check_lengths(truth: Sequence[Any], predicted: Sequence[Any]) -> None:
    if len(truth) != len(predicted):
        raise MiningError(f"length mismatch: {len(truth)} true labels vs {len(predicted)} predictions")
    if not truth:
        raise MiningError("cannot compute a metric over zero examples")


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------

def accuracy(truth: Sequence[Any], predicted: Sequence[Any]) -> float:
    """Fraction of exactly matching labels."""
    _check_lengths(truth, predicted)
    t = np.asarray(_as_strings(truth))
    p = np.asarray(_as_strings(predicted))
    return int(np.count_nonzero(t == p)) / len(t)


def confusion_matrix(truth: Sequence[Any], predicted: Sequence[Any]) -> tuple[list[str], np.ndarray]:
    """Return (ordered labels, matrix) where rows are truth and columns predictions.

    Counting is vectorized: labels are codified against the sorted label
    vocabulary and tallied with one ``bincount`` over the flattened (truth,
    predicted) code pairs.
    """
    _check_lengths(truth, predicted)
    t = np.asarray(_as_strings(truth))
    p = np.asarray(_as_strings(predicted))
    labels_array = np.unique(np.concatenate([t, p]))
    n_labels = labels_array.shape[0]
    t_codes = np.searchsorted(labels_array, t)
    p_codes = np.searchsorted(labels_array, p)
    matrix = np.bincount(t_codes * n_labels + p_codes, minlength=n_labels * n_labels)
    return labels_array.tolist(), matrix.reshape(n_labels, n_labels).astype(int)


def precision_recall_f1(truth: Sequence[Any], predicted: Sequence[Any]) -> dict[str, dict[str, float]]:
    """Per-class precision, recall and F1."""
    labels, matrix = confusion_matrix(truth, predicted)
    result: dict[str, dict[str, float]] = {}
    for i, label in enumerate(labels):
        tp = float(matrix[i, i])
        fp = float(matrix[:, i].sum() - tp)
        fn = float(matrix[i, :].sum() - tp)
        precision = tp / (tp + fp) if tp + fp > 0 else 0.0
        recall = tp / (tp + fn) if tp + fn > 0 else 0.0
        f1 = 2 * precision * recall / (precision + recall) if precision + recall > 0 else 0.0
        result[label] = {"precision": precision, "recall": recall, "f1": f1}
    return result


def macro_f1(truth: Sequence[Any], predicted: Sequence[Any]) -> float:
    """Unweighted mean of per-class F1 scores."""
    per_class = precision_recall_f1(truth, predicted)
    return float(np.mean([stats["f1"] for stats in per_class.values()]))


def cohen_kappa(truth: Sequence[Any], predicted: Sequence[Any]) -> float:
    """Cohen's kappa: agreement corrected for chance."""
    labels, matrix = confusion_matrix(truth, predicted)
    total = matrix.sum()
    if total == 0:
        return 0.0
    observed = np.trace(matrix) / total
    expected = float((matrix.sum(axis=0) * matrix.sum(axis=1)).sum()) / (total * total)
    if expected == 1.0:
        return 0.0
    return float((observed - expected) / (1.0 - expected))


def classification_report(truth: Sequence[Any], predicted: Sequence[Any]) -> dict[str, float]:
    """Bundle accuracy, macro-F1 and kappa into one dictionary."""
    return {
        "accuracy": accuracy(truth, predicted),
        "macro_f1": macro_f1(truth, predicted),
        "kappa": cohen_kappa(truth, predicted),
    }


# ---------------------------------------------------------------------------
# Regression
# ---------------------------------------------------------------------------

def mean_squared_error(truth: Sequence[float], predicted: Sequence[float]) -> float:
    _check_lengths(truth, predicted)
    t = np.asarray(list(truth), dtype=float)
    p = np.asarray(list(predicted), dtype=float)
    return float(np.mean((t - p) ** 2))


def mean_absolute_error(truth: Sequence[float], predicted: Sequence[float]) -> float:
    _check_lengths(truth, predicted)
    t = np.asarray(list(truth), dtype=float)
    p = np.asarray(list(predicted), dtype=float)
    return float(np.mean(np.abs(t - p)))


def r2_score(truth: Sequence[float], predicted: Sequence[float]) -> float:
    """Coefficient of determination; 1.0 is perfect, 0.0 is the mean predictor."""
    _check_lengths(truth, predicted)
    t = np.asarray(list(truth), dtype=float)
    p = np.asarray(list(predicted), dtype=float)
    ss_res = float(((t - p) ** 2).sum())
    ss_tot = float(((t - t.mean()) ** 2).sum())
    if ss_tot == 0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


# ---------------------------------------------------------------------------
# Clustering
# ---------------------------------------------------------------------------

def sum_of_squared_errors(matrix: np.ndarray, labels: Sequence[int], centroids: np.ndarray) -> float:
    """Total within-cluster squared distance to the assigned centroid."""
    labels = np.asarray(list(labels), dtype=int)
    if matrix.shape[0] != labels.shape[0]:
        raise MiningError("matrix and labels disagree on the number of rows")
    total = 0.0
    for i, label in enumerate(labels):
        diff = matrix[i] - centroids[label]
        total += float(np.dot(diff, diff))
    return total


def silhouette_score(matrix: np.ndarray, labels: Sequence[int]) -> float:
    """Mean silhouette coefficient over all points (euclidean distance)."""
    labels = np.asarray(list(labels), dtype=int)
    n = matrix.shape[0]
    if n != labels.shape[0]:
        raise MiningError("matrix and labels disagree on the number of rows")
    unique = sorted(set(labels.tolist()))
    if len(unique) < 2:
        return 0.0
    distances = np.sqrt(((matrix[:, None, :] - matrix[None, :, :]) ** 2).sum(axis=2))
    scores = []
    for i in range(n):
        own = labels[i]
        same = (labels == own) & (np.arange(n) != i)
        a = float(distances[i, same].mean()) if same.any() else 0.0
        b = math.inf
        for other in unique:
            if other == own:
                continue
            mask = labels == other
            if mask.any():
                b = min(b, float(distances[i, mask].mean()))
        if not math.isfinite(b):
            scores.append(0.0)
            continue
        denom = max(a, b)
        scores.append((b - a) / denom if denom > 0 else 0.0)
    return float(np.mean(scores))


# ---------------------------------------------------------------------------
# Association rules
# ---------------------------------------------------------------------------

def rule_interestingness(
    support_antecedent: float,
    support_consequent: float,
    support_rule: float,
) -> dict[str, float]:
    """Confidence, lift, leverage and conviction of an association rule.

    All inputs are relative supports in [0, 1].  These are the "quality of
    association rules" measures the paper attributes to Berti-Équille [2].
    """
    for name, value in (
        ("support_antecedent", support_antecedent),
        ("support_consequent", support_consequent),
        ("support_rule", support_rule),
    ):
        if not 0.0 <= value <= 1.0:
            raise MiningError(f"{name} must be in [0, 1], got {value}")
    confidence = support_rule / support_antecedent if support_antecedent > 0 else 0.0
    lift = confidence / support_consequent if support_consequent > 0 else 0.0
    leverage = support_rule - support_antecedent * support_consequent
    if confidence >= 1.0:
        conviction = math.inf
    else:
        conviction = (1.0 - support_consequent) / (1.0 - confidence) if confidence < 1.0 else math.inf
    return {
        "confidence": confidence,
        "lift": lift,
        "leverage": leverage,
        "conviction": conviction,
    }
