"""Tolerant opener for damaged binary store files.

The strict opener (:func:`repro.store.open_dataset` /
:func:`repro.store.open_graph`) is the reference tier: it raises a
:class:`~repro.exceptions.StoreCorruptionError` naming the first section
that fails bounds or checksum validation.  This module is the matching
salvage tier: it CRC-walks *every* section of the file, then recovers
whatever the surviving sections determine:

* **derived sections** (missing masks, numeric views, normalised level
  tables, POS/OSP orderings, block tables — flagged ``FLAG_DERIVED`` in the
  directory) are rebuilt from the primaries they were derived from; damage
  there costs recompute time, never data;
* **primary dataset sections** (a column's value/code/level payloads) that
  are damaged drop that column — the rest of the dataset survives, and the
  report names every dropped column;
* **primary graph sections** (the term table, the SPO arrays, the metadata)
  are the data itself: damage there is unrecoverable and raises.

The salvaged payload is rebuilt *in memory* — a file that failed its
checksums is not a sound backing store for memory maps — so derived views
regenerate lazily through the ordinary encoding paths.  Like the other
salvage readers, the result comes with a structured report accounting for
every intervention.

Unlike the strict opener, salvage guarantees the recovered *data* (the
triple set, the surviving columns' cells), not scan order: a salvaged graph
is rebuilt by inserting triples in SPO order, so POS/OSP iteration order
may differ from the store that was saved.
"""

from __future__ import annotations

from pathlib import Path
from typing import NamedTuple, Union

import numpy as np

from repro.exceptions import StoreError
from repro.lod.graph import Graph
from repro.lod.triples import TripleStore
from repro.lod.terms import Triple
from repro.store.format import KIND_DATASET, KIND_NAMES, StoreFile
from repro.store.reader import _decode_terms
from repro.tabular.dataset import Column, ColumnType, Dataset


class StoreSalvageReport:
    """Account of what :func:`salvage_store` did to a damaged store file."""

    def __init__(self, path: Path | str, payload: str) -> None:
        """Start an empty report for the store at ``path``."""
        self.path = str(path)
        #: ``"dataset"`` or ``"graph"``.
        self.payload = payload
        #: ``{section_name: reason}`` for every section that failed validation.
        self.damaged_sections: dict[str, str] = {}
        #: Columns dropped because a primary section of theirs was damaged.
        self.dropped_columns: list[str] = []
        #: Damaged *derived* sections recovered by recomputation.
        self.rebuilt_sections: list[str] = []

    @property
    def is_clean(self) -> bool:
        """Whether the file validated end to end (nothing dropped or rebuilt)."""
        return not self.damaged_sections

    def summary(self) -> str:
        """A short human-readable account, one finding per line."""
        lines = [f"store salvage of {self.path} ({self.payload})"]
        if self.is_clean:
            lines.append("file is clean: every section passed validation")
            return "\n".join(lines)
        lines.append(f"{len(self.damaged_sections)} damaged section(s): "
                     + ", ".join(sorted(self.damaged_sections)))
        if self.rebuilt_sections:
            lines.append(f"rebuilt from primaries: {', '.join(sorted(self.rebuilt_sections))}")
        if self.dropped_columns:
            lines.append(f"dropped columns (primary data lost): {', '.join(self.dropped_columns)}")
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        """The report as a JSON-serialisable dictionary."""
        return {
            "path": self.path,
            "payload": self.payload,
            "is_clean": self.is_clean,
            "damaged_sections": dict(self.damaged_sections),
            "dropped_columns": list(self.dropped_columns),
            "rebuilt_sections": sorted(self.rebuilt_sections),
        }


class StoreSalvageResult(NamedTuple):
    """A salvaged payload together with the account of what was done to it."""

    payload: Union[Dataset, Graph]
    report: StoreSalvageReport


def salvage_store(path: Path | str) -> StoreSalvageResult:
    """Recover as much as possible from a damaged store file.

    Raises :class:`~repro.exceptions.StoreError` when nothing can be
    recovered: an unreadable header or directory, damaged metadata, a
    damaged graph term table or SPO ordering, or a dataset whose every
    column lost a primary section.
    """
    # The payload is rebuilt fully in memory, so the store file (and its
    # file descriptor) is released as soon as salvage finishes.
    with StoreFile(path, tolerant=True) as store_file:
        damage = store_file.verify()
        report = StoreSalvageReport(path, KIND_NAMES[store_file.kind])
        report.damaged_sections = dict(damage)
        if store_file.kind == KIND_DATASET:
            payload = _salvage_dataset(store_file, damage, report)
        else:
            payload = _salvage_graph(store_file, damage, report)
    return StoreSalvageResult(payload, report)


def _note_derived(report: StoreSalvageReport, damage: dict, names: list[str]) -> None:
    """Record which of ``names`` were damaged-but-derived, hence rebuilt."""
    report.rebuilt_sections += [name for name in names if name in damage]


def _salvage_dataset(store_file: StoreFile, damage: dict, report: StoreSalvageReport) -> Dataset:
    """Rebuild an in-memory dataset from the surviving column sections."""
    meta = store_file.json("meta")  # damaged meta is unrecoverable: propagate
    columns: list[Column] = []
    for described in meta["columns"]:
        name, ctype, role, prefix = described["name"], described["ctype"], described["role"], described["prefix"]
        if ctype == ColumnType.NUMERIC:
            primaries = [f"{prefix}.val"]
        else:
            primaries = [f"{prefix}.cod", f"{prefix}.lev"]
        if any(section in damage for section in primaries):
            report.dropped_columns.append(name)
            continue
        _note_derived(report, damage, [f"{prefix}.{suffix}" for suffix in ("msk", "num", "nmk", "nrm")])
        column = Column.__new__(Column)
        column.name = name
        column.ctype = ctype
        column.role = role
        column._missing_cache = None
        if ctype == ColumnType.NUMERIC:
            column._values = np.array(store_file.array(f"{prefix}.val"))
        else:
            codes = store_file.array(f"{prefix}.cod")
            vocabulary = store_file.strings(f"{prefix}.lev")
            levels = [text == "True" for text in vocabulary] if ctype == ColumnType.BOOLEAN else vocabulary
            table = np.empty(len(levels) + 1, dtype=object)
            for i, level in enumerate(levels):
                table[i] = level
            table[-1] = None
            column._values = table[np.asarray(codes)]
        columns.append(column)
    if not columns:
        raise StoreError(
            f"store {store_file.path}: unsalvageable dataset — every column lost a primary section"
        )
    return Dataset(columns, name=meta["name"])


def _salvage_graph(store_file: StoreFile, damage: dict, report: StoreSalvageReport) -> Graph:
    """Rebuild an in-memory graph from the term table and SPO arrays."""
    meta = store_file.json("meta")  # damaged meta is unrecoverable: propagate
    vital = ["term.knd", "term.txt", "term.vtg", "term.dty", "term.lng",
             "dty.tab", "lng.tab", "spo.s", "spo.p", "spo.o"]
    lost = [name for name in vital if name in damage]
    if lost:
        raise StoreError(
            f"store {store_file.path}: unsalvageable graph — primary section(s) damaged: {', '.join(lost)}"
        )
    derived = [f"{index}.{suffix}" for index in ("pos", "osp") for suffix in "spo"]
    derived += [f"{index}.{suffix}" for index in ("spo", "pos", "osp") for suffix in ("bk", "bs", "be")]
    _note_derived(report, damage, derived)
    terms = _decode_terms(store_file)
    s_ids = store_file.array("spo.s")
    p_ids = store_file.array("spo.p")
    o_ids = store_file.array("spo.o")
    store = TripleStore()
    for s, p, o in zip(s_ids.tolist(), p_ids.tolist(), o_ids.tolist()):
        store.add(Triple(terms[s], terms[p], terms[o]))
    graph = Graph(meta["identifier"])
    graph.store = store
    for prefix, namespace in meta["prefixes"].items():
        graph.bind(prefix, namespace)
    graph._bnode_counter = int(meta.get("bnode_counter", 0))
    return graph
