"""Tolerant salvage tier for partially corrupt open-data files.

The strict readers (:func:`repro.tabular.io_csv.read_csv`,
:func:`repro.lod.serialization.parse_ntriples`) are the reference tier: they
raise on the first defect.  This package adds the recovery tier the paper's
open-data setting demands — files fetched from portals are routinely ragged,
mis-encoded or truncated, and discarding a 100k-row file over one bad byte
wastes the other 99 999 rows.  The salvage readers repair what is repairable,
drop only what is not, and account for every intervention with per-cell
provenance flags and a structured report.  On clean input they are
bit-identical to the strict tier (verified by the equivalence test suite and
the ``_force_strict`` escape hatches).

The :mod:`~repro.recovery.corrupt` module provides the matching seeded,
severity-parameterised file corruptors so the inject → salvage → profile
round trip can be tested and benchmarked end to end.

:func:`~repro.recovery.salvage_store.salvage_store` extends the tier to the
binary persistence format (:mod:`repro.store`): damaged *derived* sections
are rebuilt from primaries, columns with damaged primaries are dropped and
reported, and only header/directory/term-table/SPO damage is fatal.
"""

from repro.recovery.corrupt import (
    CORRUPTOR_REGISTRY,
    FileCorruptor,
    apply_corruptions,
    get_corruptor,
)
from repro.recovery.provenance import (
    COERCED_MISSING,
    ENCODING_REPLACED,
    OK,
    PADDED,
    PROVENANCE_CODES,
    PROVENANCE_NAMES,
    QUOTE_REPAIRED,
    REJOINED,
    TRUNCATED,
    NtSalvageReport,
    SalvageReport,
    attach_provenance,
    dataset_provenance,
    provenance_counts,
)
from repro.recovery.salvage_csv import SalvageResult, salvage_csv, salvage_csv_text
from repro.recovery.salvage_ntriples import NtSalvageResult, salvage_ntriples
from repro.recovery.salvage_store import (
    StoreSalvageReport,
    StoreSalvageResult,
    salvage_store,
)

__all__ = [
    "CORRUPTOR_REGISTRY",
    "FileCorruptor",
    "apply_corruptions",
    "get_corruptor",
    "OK",
    "PADDED",
    "TRUNCATED",
    "ENCODING_REPLACED",
    "COERCED_MISSING",
    "QUOTE_REPAIRED",
    "REJOINED",
    "PROVENANCE_NAMES",
    "PROVENANCE_CODES",
    "SalvageReport",
    "NtSalvageReport",
    "attach_provenance",
    "dataset_provenance",
    "provenance_counts",
    "SalvageResult",
    "salvage_csv",
    "salvage_csv_text",
    "NtSalvageResult",
    "salvage_ntriples",
    "StoreSalvageReport",
    "StoreSalvageResult",
    "salvage_store",
]
