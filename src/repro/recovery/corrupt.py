"""Seeded, severity-parameterised **file-level** corruption generators.

The byte/encoding/structure analogue of :mod:`repro.core.injection`: where
the injectors degrade the *values* of an already-parsed dataset, these
corruptors degrade the *file itself* — the serialized bytes an open data
portal actually hands out — so the inject → salvage → profile round trip can
be exercised end to end.

Every corruptor takes a byte payload and a ``severity`` in ``[0, 1]`` and
returns a *new* payload; ``severity`` 0.0 returns the input unchanged, and a
fixed seed makes every corruption reproducible.  CSV corruptors assume a
UTF-8 payload (they decode, mangle lines, re-encode); the encoding corruptor
works on raw bytes.  N-Triples corruptors (``nt_*``) target the line-oriented
grammar.  :func:`apply_corruptions` chains several by registry order, exactly
like :func:`repro.core.injection.apply_injections`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Mapping

from repro.exceptions import ExperimentError


class FileCorruptor(ABC):
    """A reproducible, severity-parameterised file corruption."""

    #: Registry key; named after the salvage behaviour it exercises.
    name = "corruptor"

    @abstractmethod
    def apply(self, payload: bytes, severity: float, seed: int = 0) -> bytes:
        """Return a corrupted copy of ``payload``.

        ``severity`` 0.0 must return the payload unchanged; 1.0 is the
        strongest supported corruption.
        """

    def _check_severity(self, severity: float) -> float:
        """Validate that ``severity`` lies in ``[0, 1]``."""
        if not 0.0 <= severity <= 1.0:
            raise ExperimentError(f"severity must be in [0, 1], got {severity}")
        return severity


def _split_lines(payload: bytes) -> list[str]:
    """Decode a payload into its physical lines (without newlines).

    Falls back to latin-1 so text-level corruptors still work on payloads a
    previous corruptor already made ill-formed UTF-8.
    """
    try:
        return payload.decode("utf-8").split("\n")
    except UnicodeDecodeError:
        return payload.decode("latin-1").split("\n")


def _join_lines(lines: list[str]) -> bytes:
    """Re-encode physical lines back into a UTF-8 payload."""
    return "\n".join(lines).encode("utf-8")


class RaggedRowsCorruptor(FileCorruptor):
    """Drop or append trailing cells on random data lines (CSV).

    With probability ``severity`` a data line loses its last one or two cells
    (exercising :data:`~repro.recovery.provenance.PADDED` repair) or gains a
    spurious extra cell (:data:`~repro.recovery.provenance.TRUNCATED`).
    """

    name = "ragged_rows"

    def __init__(self, delimiter: str = ",") -> None:
        """``delimiter`` must match the file being corrupted."""
        self.delimiter = delimiter

    def apply(self, payload: bytes, severity: float, seed: int = 0) -> bytes:
        """Make random data lines shorter or longer than the header."""
        severity = self._check_severity(severity)
        if severity == 0.0:
            return payload
        rng = random.Random(seed)
        lines = _split_lines(payload)
        for index in range(1, len(lines)):
            line = lines[index]
            if not line or rng.random() >= severity:
                continue
            cells = line.split(self.delimiter)
            if rng.random() < 0.5 and len(cells) > 2:
                keep = len(cells) - rng.choice((1, 2))
                lines[index] = self.delimiter.join(cells[: max(1, keep)])
            else:
                cells.append(f"spurious_{rng.randrange(1000)}")
                lines[index] = self.delimiter.join(cells)
        return _join_lines(lines)


class EncodingCorruptor(FileCorruptor):
    """Overwrite random bytes of random lines with invalid UTF-8 (0xE9).

    A standalone 0xE9 byte (latin-1 ``é``) is ill-formed UTF-8, so the strict
    reader's decode raises while the salvage tier falls back to latin-1 or a
    lossy replace — exactly the broken-export situation in the wild.
    """

    name = "encoding"

    def apply(self, payload: bytes, severity: float, seed: int = 0) -> bytes:
        """Corrupt one byte on each affected line."""
        severity = self._check_severity(severity)
        if severity == 0.0:
            return payload
        rng = random.Random(seed)
        lines = payload.split(b"\n")
        for index in range(1, len(lines)):
            line = lines[index]
            if not line or rng.random() >= severity:
                continue
            at = rng.randrange(len(line))
            lines[index] = line[:at] + b"\xe9" + line[at + 1 :]
        return b"\n".join(lines)


class QuoteCorruptor(FileCorruptor):
    """Insert a stray, unbalanced quote character into random data lines (CSV).

    A quote landing at a field start swallows the following delimiters and
    lines into one field, exercising the salvage tier's unbalanced-quote
    healing (:data:`~repro.recovery.provenance.QUOTE_REPAIRED`).
    """

    name = "quotes"

    def apply(self, payload: bytes, severity: float, seed: int = 0) -> bytes:
        """Insert one stray ``"`` on each affected line."""
        severity = self._check_severity(severity)
        if severity == 0.0:
            return payload
        rng = random.Random(seed)
        lines = _split_lines(payload)
        for index in range(1, len(lines)):
            line = lines[index]
            if not line or rng.random() >= severity:
                continue
            at = rng.randrange(len(line) + 1)
            lines[index] = line[:at] + '"' + line[at:]
        return _join_lines(lines)


class NewlineCorruptor(FileCorruptor):
    """Split random data lines in two with a stray embedded newline (CSV).

    Exercises the salvage tier's fragment re-joining
    (:data:`~repro.recovery.provenance.REJOINED`).
    """

    name = "newlines"

    def apply(self, payload: bytes, severity: float, seed: int = 0) -> bytes:
        """Break one cell of each affected line across two physical lines."""
        severity = self._check_severity(severity)
        if severity == 0.0:
            return payload
        rng = random.Random(seed)
        lines = _split_lines(payload)
        result: list[str] = []
        for index, line in enumerate(lines):
            if index == 0 or not line or len(line) < 2 or rng.random() >= severity:
                result.append(line)
                continue
            at = rng.randrange(1, len(line))
            result.append(line[:at])
            result.append(line[at:])
        return _join_lines(result)


class TruncatedFileCorruptor(FileCorruptor):
    """Cut the payload short, as an interrupted download would.

    ``severity`` is the fraction of trailing bytes removed; the cut lands at
    an arbitrary byte offset, so the final line is usually left ragged.
    """

    name = "truncated_file"

    def apply(self, payload: bytes, severity: float, seed: int = 0) -> bytes:
        """Drop the trailing ``severity`` fraction of the payload."""
        severity = self._check_severity(severity)
        if severity == 0.0 or not payload:
            return payload
        rng = random.Random(seed)
        keep = max(1, int(len(payload) * (1.0 - severity * rng.uniform(0.5, 1.0))))
        return payload[:keep]


class NtDotDropCorruptor(FileCorruptor):
    """Remove the terminal ``.`` from random N-Triples lines.

    Exercises the ``repaired_missing_dot`` repair of the N-Triples salvage.
    """

    name = "nt_dots"

    def apply(self, payload: bytes, severity: float, seed: int = 0) -> bytes:
        """Strip the statement terminator on each affected line."""
        severity = self._check_severity(severity)
        if severity == 0.0:
            return payload
        rng = random.Random(seed)
        lines = _split_lines(payload)
        for index, line in enumerate(lines):
            if line.rstrip().endswith(".") and rng.random() < severity:
                lines[index] = line.rstrip().removesuffix(".").rstrip()
        return _join_lines(lines)


class NtGarbageCorruptor(FileCorruptor):
    """Replace random N-Triples lines with unparseable garbage.

    Exercises the per-line skip diagnostics of the N-Triples salvage.
    """

    name = "nt_garbage"

    def apply(self, payload: bytes, severity: float, seed: int = 0) -> bytes:
        """Overwrite each affected line with non-grammar text."""
        severity = self._check_severity(severity)
        if severity == 0.0:
            return payload
        rng = random.Random(seed)
        lines = _split_lines(payload)
        for index, line in enumerate(lines):
            if line.strip() and rng.random() < severity:
                lines[index] = f"%% corrupted record {rng.randrange(10_000)} %%"
        return _join_lines(lines)


#: Registry corruptor name → class (constructed with defaults by
#: :func:`get_corruptor`).  Declaration order is the chaining order of
#: :func:`apply_corruptions`; ``encoding`` comes after the text-level CSV
#: corruptors because it makes the payload ill-formed UTF-8, which a
#: subsequent decode/re-encode pass would partially undo.
CORRUPTOR_REGISTRY: dict[str, type[FileCorruptor]] = {
    RaggedRowsCorruptor.name: RaggedRowsCorruptor,
    QuoteCorruptor.name: QuoteCorruptor,
    NewlineCorruptor.name: NewlineCorruptor,
    TruncatedFileCorruptor.name: TruncatedFileCorruptor,
    EncodingCorruptor.name: EncodingCorruptor,
    NtDotDropCorruptor.name: NtDotDropCorruptor,
    NtGarbageCorruptor.name: NtGarbageCorruptor,
}


def get_corruptor(name: str, **kwargs) -> FileCorruptor:
    """Instantiate a registered corruptor by name."""
    try:
        cls = CORRUPTOR_REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown corruptor {name!r}; known: {sorted(CORRUPTOR_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def apply_corruptions(payload: bytes, corruptions: Mapping[str, float], seed: int = 0) -> bytes:
    """Apply several corruptors in the registry's declaration order.

    ``corruptions`` maps corruptor name → severity.  Registry order (not dict
    order at the call site) keeps mixed corruption sweeps reproducible, the
    same contract as :func:`repro.core.injection.apply_injections`.
    """
    unknown = set(corruptions) - set(CORRUPTOR_REGISTRY)
    if unknown:
        raise ExperimentError(f"unknown corruptors requested: {sorted(unknown)}")
    result = payload
    step = 0
    for name in CORRUPTOR_REGISTRY:
        if name not in corruptions:
            continue
        result = get_corruptor(name).apply(result, corruptions[name], seed=seed + step)
        step += 1
    return result
