"""Tolerant CSV ingestion: recover every cell that is recoverable.

The strict reader (:func:`repro.tabular.io_csv.read_csv_text`) is the
**reference tier**: it raises on the first ragged row, broken encoding or
duplicate header.  This module is the salvage tier of the same two-tier
protocol the encoded core uses everywhere else — on clean input it produces a
bit-identical :class:`~repro.tabular.dataset.Dataset` (verified by the
equivalence tests and the ``bench_perf_recovery`` guard), and on corrupt
input it degrades in a principled way:

* **encoding detection** — UTF-8 first, a latin-1 fallback when the byte
  stream is plausible latin-1, and a lossy UTF-8 decode with replacement
  characters as the last resort (affected cells flagged
  :data:`~repro.recovery.provenance.ENCODING_REPLACED`);
* **ragged-row repair** — short rows are padded
  (:data:`~repro.recovery.provenance.PADDED`), long rows truncated with the
  dropped cells itemised in the report
  (:data:`~repro.recovery.provenance.TRUNCATED`);
* **unbalanced-quote healing** — a stray quote that swallows following lines
  into one field is detected (ragged multi-line record with an odd quote
  count) and the affected physical lines are re-parsed individually
  (:data:`~repro.recovery.provenance.QUOTE_REPAIRED`);
* **embedded-newline healing** — two adjacent short fragments whose cell
  counts sum to one row are re-joined
  (:data:`~repro.recovery.provenance.REJOINED`);
* **duplicate/empty-header disambiguation** — repaired with ``name__2`` /
  ``column_3`` style names instead of raising;
* **coercion-failure → missing** — cells that cannot satisfy an explicitly
  requested numeric column type become missing
  (:data:`~repro.recovery.provenance.COERCED_MISSING`) instead of raising.

Pass ``_force_strict=True`` to route through the strict reference reader
(the salvage analogue of ``_force_row_*`` escape hatches).
"""

from __future__ import annotations

import csv
import io
from collections.abc import Mapping
from pathlib import Path
from typing import NamedTuple

import numpy as np

from repro.exceptions import SchemaError
from repro.recovery.provenance import (
    COERCED_MISSING,
    ENCODING_REPLACED,
    OK,
    PADDED,
    QUOTE_REPAIRED,
    REJOINED,
    TRUNCATED,
    SalvageReport,
    attach_provenance,
    dataset_provenance,
    provenance_counts,
)
from repro.tabular.dataset import ColumnType, Dataset
from repro.tabular.io_csv import _normalise_cell, read_csv_text
from repro.tabular.sniff import sniff_delimiter


class SalvageResult(NamedTuple):
    """A salvaged dataset together with the account of what was done to it."""

    dataset: Dataset
    report: SalvageReport


class _RecordingLines:
    """Line iterator over CSV text that remembers the lines each record consumed.

    Feeding this to :class:`csv.reader` reproduces the strict reader's record
    assembly exactly (the strict tier iterates the same ``io.StringIO``), while
    letting the salvage tier map every logical record back to its physical
    lines for quote healing and report line numbers.
    """

    def __init__(self, text: str) -> None:
        self._iterator = iter(io.StringIO(text))
        self.line_no = 0
        self._buffer: list[str] = []

    def __iter__(self) -> "_RecordingLines":
        return self

    def __next__(self) -> str:
        line = next(self._iterator)
        self.line_no += 1
        self._buffer.append(line)
        return line

    def take(self) -> list[str]:
        """Return (and forget) the physical lines consumed since the last call."""
        lines, self._buffer = self._buffer, []
        return lines


def _decode_bytes(data: bytes, encoding: str) -> tuple[str, str, int]:
    """Decode ``data``, falling back from strict to latin-1 to lossy replace.

    Returns ``(text, encoding_used, n_replaced_characters)``.  The latin-1
    fallback only engages when the resulting text contains no C1 control
    characters (0x80–0x9F) — corrupted UTF-8 decoded as latin-1 produces
    those, and a lossy decode with explicit U+FFFD markers is more honest.
    """
    try:
        return data.decode(encoding), encoding, 0
    except (UnicodeDecodeError, LookupError):
        pass
    latin = data.decode("latin-1")
    if not any(0x80 <= ord(char) <= 0x9F for char in latin):
        return latin, "latin-1", 0
    replaced = data.decode(encoding, errors="replace")
    return replaced, f"{encoding}+replace", replaced.count("�")


def _is_blank(cells: list[str]) -> bool:
    """The strict reader's blank-record test, shared verbatim."""
    return not cells or all(not cell.strip() for cell in cells)


def _parse_single_line(line: str, delimiter: str) -> list[str]:
    """Parse one physical line as its own CSV record.

    Stray carriage returns inside the line (old-Mac endings, bytes mangled
    into 0x0D) would make :class:`csv.reader` raise, so they are dropped;
    a line it still cannot parse falls back to a naive delimiter split.
    """
    text = line.rstrip("\r\n").replace("\r", "")
    try:
        parsed = next(csv.reader([text], delimiter=delimiter), [])
    except csv.Error:
        return text.replace('"', "").split(delimiter)
    return list(parsed)


def _heal_quote_line(line: str, delimiter: str, n_columns: int) -> list[str]:
    """Re-parse one physical line from a quote-broken record.

    Lines with balanced quotes parse as-is.  For an odd quote count two
    repairs are tried — dropping every quote character, and closing the open
    quote at end of line — preferring whichever restores the expected cell
    count (ties go to the quote-stripped variant, which recovers swallowed
    delimiters).
    """
    text = line.rstrip("\r\n")
    if text.count('"') % 2 == 0:
        return _parse_single_line(text, delimiter)
    candidates = [
        _parse_single_line(text.replace('"', ""), delimiter),
        _parse_single_line(text + '"', delimiter),
    ]
    for candidate in candidates:
        if len(candidate) == n_columns:
            return candidate
    return min(candidates, key=lambda cells: abs(len(cells) - n_columns))


def _repair_header(raw_header: list[str], header_line: int, report: SalvageReport) -> list[str]:
    """Strip, fill in empty names and disambiguate duplicates."""
    names: list[str] = []
    chosen: set[str] = set()
    for index, cell in enumerate(raw_header):
        name = cell.strip()
        original = name
        if not name:
            name = f"column_{index + 1}"
        if name in chosen:
            suffix = 2
            while f"{name}__{suffix}" in chosen:
                suffix += 1
            name = f"{name}__{suffix}"
        if name != original:
            report.add_event(header_line, "header_repaired", f"{original!r} -> {name!r}")
        chosen.add(name)
        names.append(name)
    return names


def _elide(text: str, limit: int = 80) -> str:
    """Clip report detail strings so events stay readable."""
    return text if len(text) <= limit else text[: limit - 1] + "…"


def salvage_csv_text(
    text: str,
    name: str = "csv",
    delimiter: str | None = None,
    ctypes: Mapping[str, str] | None = None,
    roles: Mapping[str, str] | None = None,
    heal_newlines: bool = True,
    flag_replacement_chars: bool = False,
    _force_strict: bool = False,
) -> SalvageResult:
    """Tolerantly parse CSV content into a dataset plus a salvage report.

    ``flag_replacement_chars`` marks cells containing U+FFFD as
    :data:`~repro.recovery.provenance.ENCODING_REPLACED`; :func:`salvage_csv`
    enables it only when its decode was actually lossy, so text that
    legitimately contains the replacement character is not flagged.

    On clean input the result is bit-identical to
    :func:`~repro.tabular.io_csv.read_csv_text` and the report
    :attr:`~repro.recovery.provenance.SalvageReport.is_clean`.  Inputs with
    nothing recoverable (empty content, a lone header) raise the same
    :class:`~repro.exceptions.SchemaError` as the strict tier.  When the
    report is not clean, the per-cell provenance is also attached to the
    dataset instance so the data quality layer can surface it.
    """
    report = SalvageReport(source=name)
    if _force_strict:
        dataset = read_csv_text(text, name=name, delimiter=delimiter, ctypes=ctypes, roles=roles)
        report.n_physical_lines = len(text.splitlines())
        report.n_rows, report.n_columns = dataset.shape
        return SalvageResult(dataset, report)

    if not text.strip():
        raise SchemaError("empty CSV content")
    if delimiter is None:
        delimiter = sniff_delimiter(text)

    stream = _RecordingLines(text)
    reader = csv.reader(stream, delimiter=delimiter)
    records: list[tuple[list[str], list[str], int]] = []
    while True:
        try:
            cells = next(reader)
        except StopIteration:
            break
        except csv.Error as exc:
            # The reader choked (e.g. a stray carriage return inside an
            # unquoted field); recover every physical line it consumed by
            # parsing each one as its own record.
            lines = stream.take()
            start_line = stream.line_no - len(lines) + 1
            report.add_event(start_line, "reader_error_recovered", _elide(str(exc)))
            for offset, line in enumerate(lines):
                records.append(
                    ([*_parse_single_line(line, delimiter)], [line], start_line + offset)
                )
            continue
        lines = stream.take()
        start_line = stream.line_no - len(lines) + 1
        records.append((list(cells), lines, start_line))
    report.n_physical_lines = stream.line_no

    header_index = next((i for i, (cells, _, _) in enumerate(records) if not _is_blank(cells)), None)
    if header_index is None:
        raise SchemaError("empty CSV content")
    if header_index:
        report.add_event(1, "leading_blank_records_skipped", f"{header_index} before the header")
    header_cells, _, header_line = records[header_index]
    header = _repair_header([cell for cell in header_cells], header_line, report)
    n_columns = len(header)
    data_records = records[header_index + 1 :]
    report.n_input_records = len(data_records)
    if not data_records:
        raise SchemaError("CSV must contain a header row and at least one data row")

    # Phase 1: one candidate row per surviving record fragment.  Each entry is
    # (cells, start_line, base_flag) where base_flag marks structurally
    # repaired rows (quote healing) before cell-level flags are assigned.
    candidates: list[tuple[list[str], int, np.int8]] = []
    for cells, lines, start_line in data_records:
        if _is_blank(cells):
            continue
        record_text = "".join(lines)
        if len(cells) != n_columns and len(lines) > 1 and record_text.count('"') % 2 == 1:
            # An unbalanced quote swallowed the following physical lines into
            # one field; heal and re-parse each line on its own.
            report.add_event(
                start_line,
                "unbalanced_quote_healed",
                f"record of {len(lines)} lines re-parsed line by line",
            )
            for offset, line in enumerate(lines):
                healed = _heal_quote_line(line, delimiter, n_columns)
                if _is_blank(healed):
                    continue
                candidates.append((healed, start_line + offset, QUOTE_REPAIRED))
        else:
            candidates.append((cells, start_line, OK))

    # Phase 2: embedded-newline healing — re-join adjacent short fragments
    # whose cell counts sum to exactly one full row.
    if heal_newlines:
        rejoined: list[tuple[list[str], int, np.int8, int]] = []
        index = 0
        while index < len(candidates):
            cells, start_line, base_flag = candidates[index]
            if index + 1 < len(candidates) and 0 < len(cells) < n_columns:
                next_cells, next_line, next_flag = candidates[index + 1]
                if 0 < len(next_cells) <= n_columns and len(cells) + len(next_cells) - 1 == n_columns:
                    joined = cells[:-1] + [cells[-1] + next_cells[0]] + next_cells[1:]
                    report.add_event(
                        start_line,
                        "embedded_newline_rejoined",
                        f"lines {start_line} and {next_line} merged into one row",
                    )
                    rejoined.append((joined, start_line, max(base_flag, next_flag), len(cells) - 1))
                    index += 2
                    continue
            rejoined.append((cells, start_line, base_flag, -1))
            index += 1
    else:
        rejoined = [(cells, line, flag, -1) for cells, line, flag in candidates]

    # Phase 3: pad/truncate to the header width, normalise missing tokens,
    # flag lossy-decode cells and coerce explicit numeric types.
    numeric_requested = {
        key for key, ctype in (ctypes or {}).items() if ctype == ColumnType.NUMERIC
    }
    rows: list[dict[str, str | None]] = []
    flag_rows: list[np.ndarray] = []
    for cells, start_line, base_flag, joined_at in rejoined:
        flags = np.full(n_columns, base_flag, dtype=np.int8)
        if 0 <= joined_at < n_columns:
            flags[joined_at] = REJOINED
        if len(cells) > n_columns:
            dropped = cells[n_columns:]
            report.add_event(
                start_line,
                "row_truncated",
                f"{len(dropped)} extra cells dropped: {_elide(repr(dropped))}",
            )
            cells = cells[:n_columns]
            flags[n_columns - 1] = TRUNCATED
        if len(cells) < n_columns:
            report.add_event(
                start_line,
                "row_padded",
                f"{n_columns - len(cells)} missing cells padded",
            )
            flags[len(cells) :] = PADDED
            cells = cells + [None] * (n_columns - len(cells))
        row: dict[str, str | None] = {}
        for column_index, (column_name, cell) in enumerate(zip(header, cells)):
            if flag_replacement_chars and isinstance(cell, str) and "�" in cell:
                flags[column_index] = ENCODING_REPLACED
            value = _normalise_cell(cell)
            if value is not None and column_name in numeric_requested:
                try:
                    float(value)
                except ValueError:
                    report.add_event(
                        start_line,
                        "coerced_to_missing",
                        f"{column_name}: {_elide(repr(value))} is not numeric",
                    )
                    flags[column_index] = COERCED_MISSING
                    value = None
            row[column_name] = value
        rows.append(row)
        flag_rows.append(flags)

    if not rows:
        raise SchemaError("CSV contains a header but no data rows")

    dataset = Dataset.from_rows(rows, name=name, ctypes=ctypes, roles=roles, column_order=header)
    flag_matrix = np.vstack(flag_rows)
    provenance = {column_name: flag_matrix[:, j].copy() for j, column_name in enumerate(header)}
    report.provenance = provenance
    report.flag_counts = provenance_counts(provenance)
    report.n_rows, report.n_columns = dataset.shape
    if not report.is_clean:
        attach_provenance(dataset, provenance)
    return SalvageResult(dataset, report)


def salvage_csv(
    source: str | Path | bytes,
    name: str | None = None,
    delimiter: str | None = None,
    ctypes: Mapping[str, str] | None = None,
    roles: Mapping[str, str] | None = None,
    encoding: str = "utf-8",
    heal_newlines: bool = True,
    _force_strict: bool = False,
) -> SalvageResult:
    """Salvage a CSV file (path) or raw byte payload into a dataset + report.

    Unlike :func:`~repro.tabular.io_csv.read_csv`, decoding never raises:
    UTF-8 is tried first, then latin-1 when plausible, then a lossy decode
    whose replacement characters are flagged per cell.
    """
    if isinstance(source, bytes):
        data = source
        inferred_name = name or "csv"
    else:
        path = Path(source)
        data = path.read_bytes()
        inferred_name = name or path.stem
    text, used_encoding, n_replaced = _decode_bytes(data, encoding)
    result = salvage_csv_text(
        text,
        name=inferred_name,
        delimiter=delimiter,
        ctypes=ctypes,
        roles=roles,
        heal_newlines=heal_newlines,
        flag_replacement_chars=n_replaced > 0,
        _force_strict=_force_strict,
    )
    report = result.report
    report.requested_encoding = encoding
    report.encoding = used_encoding
    report.n_replaced_characters = n_replaced
    if not report.is_clean and report.provenance and dataset_provenance(result.dataset) is None:
        attach_provenance(result.dataset, report.provenance)
    return result
