"""Line-level N-Triples salvage: keep the parseable lines, account for the rest.

N-Triples is deliberately line-oriented, which makes principled degradation
easy: every line is an independent triple, so a corrupt line costs exactly
one triple.  The strict parser
(:func:`repro.lod.serialization.parse_ntriples`) is the reference tier and
raises on the first malformed line; this tier re-uses the identical per-line
machinery (:func:`repro.lod.serialization.parse_ntriples_line`) and instead

* **repairs** lines that lost their terminal ``.`` (a classic
  concatenation/truncation artefact) or carry trailing garbage after the
  statement, and
* **skips** lines that stay unparseable after repair, recording a per-line
  diagnostic (line number, action, offending text) in the report.

On clean input the resulting :class:`~repro.lod.graph.Graph` is bit-identical
to the strict parse (same triples in the same insertion order, same default
identifier) and the report :attr:`~NtSalvageReport.is_clean`.  Pass
``_force_strict=True`` to route through the strict parser.
"""

from __future__ import annotations

from pathlib import Path
from typing import NamedTuple

from repro.exceptions import LODError
from repro.lod.graph import Graph
from repro.lod.serialization import parse_ntriples, parse_ntriples_line
from repro.lod.terms import Triple
from repro.recovery.provenance import NtSalvageReport


class NtSalvageResult(NamedTuple):
    """A salvaged graph together with the account of what was done to it."""

    graph: Graph
    report: NtSalvageReport


def _read_source(source: str | Path) -> str:
    """Resolve a path-or-content argument exactly like the strict parser."""
    if isinstance(source, Path) or (
        isinstance(source, str) and "\n" not in source and source.endswith(".nt")
    ):
        return Path(source).read_text(encoding="utf-8", errors="replace")
    return str(source)


def _attempt_repairs(line: str) -> tuple[Triple, str] | None:
    """Try the known line repairs; return ``(triple, action)`` or ``None``.

    Repairs, in order of confidence: re-append a missing terminal ``.``;
    truncate trailing garbage after the last `` .`` statement terminator.
    """
    stripped = line.strip()
    if not stripped.endswith("."):
        try:
            return parse_ntriples_line(stripped + " ."), "repaired_missing_dot"
        except LODError:
            pass
    terminator = stripped.rfind(" .")
    if 0 < terminator < len(stripped) - 2:
        try:
            return parse_ntriples_line(stripped[: terminator + 2]), "repaired_trailing_garbage"
        except LODError:
            pass
    return None


def salvage_ntriples(
    source: str | Path,
    identifier: str | None = None,
    _force_strict: bool = False,
) -> NtSalvageResult:
    """Tolerantly parse N-Triples content into a partial graph plus a report.

    Accepts the same path-or-content argument as the strict parser.  Every
    line either contributes a triple (parsed strictly, or after one of the
    known repairs) or is skipped with a per-line diagnostic; the function
    itself never raises on malformed content.
    """
    report = NtSalvageReport(source=str(identifier or "ntriples"))
    if _force_strict:
        graph = parse_ntriples(source, identifier=identifier)
        report.n_lines = len(_read_source(source).splitlines())
        report.n_triples = len(graph)
        return NtSalvageResult(graph, report)

    text = _read_source(source)
    graph = Graph(identifier or "http://openbi.example.org/graph/parsed")
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        report.n_lines += 1
        try:
            triple = parse_ntriples_line(raw_line)
        except LODError as exc:
            repaired = _attempt_repairs(raw_line)
            if repaired is not None:
                triple, action = repaired
                report.n_repaired += 1
                report.add_event(line_number, action, raw_line.strip()[:120])
            else:
                report.n_skipped += 1
                report.add_event(line_number, "skipped", f"{exc}: {raw_line.strip()[:120]}")
                continue
        if triple is not None:
            graph.add_triple(triple)
            report.n_triples += 1
    return NtSalvageResult(graph, report)
