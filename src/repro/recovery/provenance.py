"""Per-cell salvage provenance codes and the salvage report.

The recovery tier follows the paper's premise to its logical end: when an
open-data file is partially corrupt, recover every cell that is recoverable
and **account precisely for what was lost**.  The accounting lives here:

* compact ``int8`` per-cell provenance codes (:data:`OK`, :data:`PADDED`, …)
  stored as one flag array per column — the salvage analogue of the missing
  masks of the encoded core;
* the :class:`SalvageReport` (CSV tier) and :class:`NtSalvageReport`
  (N-Triples tier) that summarise what was repaired, flagged or dropped;
* helpers to attach provenance to the salvaged
  :class:`~repro.tabular.dataset.Dataset` instance so the data quality layer
  (:class:`~repro.quality.salvage.SalvageCriterion`, completeness details)
  can surface it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.tabular.dataset import Dataset

#: The cell was parsed, decoded and coerced without intervention.
OK = np.int8(0)
#: The cell was absent (its row was shorter than the header) and padded in as missing.
PADDED = np.int8(1)
#: The cell is the last kept cell of a row that overflowed the header and was truncated.
TRUNCATED = np.int8(2)
#: The cell's text contains U+FFFD replacement characters from a lossy decode.
ENCODING_REPLACED = np.int8(3)
#: The cell's raw text could not be coerced to the requested column type and became missing.
COERCED_MISSING = np.int8(4)
#: The cell belongs to a row re-parsed after healing an unbalanced quote.
QUOTE_REPAIRED = np.int8(5)
#: The cell was re-joined from two physical lines split by a stray embedded newline.
REJOINED = np.int8(6)

#: Code → symbolic name, in code order.
PROVENANCE_NAMES: dict[int, str] = {
    int(OK): "OK",
    int(PADDED): "PADDED",
    int(TRUNCATED): "TRUNCATED",
    int(ENCODING_REPLACED): "ENCODING_REPLACED",
    int(COERCED_MISSING): "COERCED_MISSING",
    int(QUOTE_REPAIRED): "QUOTE_REPAIRED",
    int(REJOINED): "REJOINED",
}

#: Symbolic name → code (inverse of :data:`PROVENANCE_NAMES`).
PROVENANCE_CODES: dict[str, int] = {name: code for code, name in PROVENANCE_NAMES.items()}

#: Attribute under which salvage provenance is attached to a ``Dataset`` instance.
_PROVENANCE_ATTR = "_salvage_provenance"

#: Reports keep at most this many itemised events; the counters always cover everything.
_MAX_EVENTS = 200


def attach_provenance(dataset: Dataset, provenance: dict[str, np.ndarray]) -> None:
    """Attach per-cell provenance flag arrays to a salvaged dataset instance.

    The mapping is column name → ``int8`` array of length ``n_rows``.  Like
    the cached encoding, provenance rides on the *instance*: derived datasets
    (``take``, ``concat``, …) do not inherit it.
    """
    setattr(dataset, _PROVENANCE_ATTR, provenance)


def dataset_provenance(dataset: Dataset) -> dict[str, np.ndarray] | None:
    """Return the provenance attached by the salvage tier, or ``None``."""
    return getattr(dataset, _PROVENANCE_ATTR, None)


def provenance_counts(
    provenance: dict[str, np.ndarray], columns: list[str] | None = None
) -> dict[str, int]:
    """Count flagged cells by symbolic name over the selected columns.

    ``OK`` cells are not counted; the result maps e.g. ``"PADDED" -> 3`` in
    stable code order, omitting codes with zero occurrences.
    """
    selected = columns if columns is not None else list(provenance)
    totals = np.zeros(len(PROVENANCE_NAMES), dtype=np.int64)
    for name in selected:
        flags = provenance.get(name)
        if flags is None:
            continue
        totals += np.bincount(flags.astype(np.int64), minlength=len(PROVENANCE_NAMES))
    return {
        PROVENANCE_NAMES[code]: int(totals[code])
        for code in range(1, len(PROVENANCE_NAMES))
        if totals[code]
    }


@dataclass
class SalvageReport:
    """What the tolerant CSV reader did to produce its dataset.

    ``flag_counts`` aggregates the per-cell provenance (excluding ``OK``);
    ``events`` itemises row/header-level interventions (bounded at
    ``_MAX_EVENTS`` entries, ``n_events`` counts all of them); ``provenance``
    is the column → ``int8`` flag-array mapping also attached to the dataset.
    """

    source: str = "csv"
    requested_encoding: str = "utf-8"
    encoding: str = "utf-8"
    n_replaced_characters: int = 0
    n_physical_lines: int = 0
    n_input_records: int = 0
    n_rows: int = 0
    n_columns: int = 0
    flag_counts: dict[str, int] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)
    n_events: int = 0
    provenance: dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    def add_event(self, line: int, action: str, detail: str) -> None:
        """Record one intervention (bounded; the counter is always exact)."""
        self.n_events += 1
        if len(self.events) < _MAX_EVENTS:
            self.events.append({"line": line, "action": action, "detail": detail})

    @property
    def n_cells(self) -> int:
        """Total number of cells in the salvaged dataset."""
        return self.n_rows * self.n_columns

    @property
    def n_flagged_cells(self) -> int:
        """Number of cells whose provenance is anything other than ``OK``."""
        return sum(self.flag_counts.values())

    @property
    def cell_recovery_rate(self) -> float:
        """Fraction of output cells recovered untouched (1.0 on clean input)."""
        if not self.n_cells:
            return 1.0
        return 1.0 - self.n_flagged_cells / self.n_cells

    @property
    def is_clean(self) -> bool:
        """True when salvage changed nothing: strict parsing would agree."""
        return (
            not self.n_events
            and not self.flag_counts
            and self.encoding == self.requested_encoding
            and not self.n_replaced_characters
        )

    def to_json_dict(self) -> dict[str, Any]:
        """JSON-serialisable summary (flag arrays reduced to their counts)."""
        return {
            "source": self.source,
            "requested_encoding": self.requested_encoding,
            "encoding": self.encoding,
            "n_replaced_characters": self.n_replaced_characters,
            "n_physical_lines": self.n_physical_lines,
            "n_input_records": self.n_input_records,
            "n_rows": self.n_rows,
            "n_columns": self.n_columns,
            "n_cells": self.n_cells,
            "n_flagged_cells": self.n_flagged_cells,
            "cell_recovery_rate": self.cell_recovery_rate,
            "is_clean": self.is_clean,
            "flag_counts": dict(self.flag_counts),
            "n_events": self.n_events,
            "events": [dict(event) for event in self.events],
        }

    def summary(self) -> str:
        """One-paragraph human-readable account, used by the CLI."""
        lines = [
            f"salvaged {self.n_rows} rows x {self.n_columns} columns "
            f"from {self.n_input_records} records ({self.n_physical_lines} physical lines)",
            f"encoding: {self.encoding}"
            + (f" ({self.n_replaced_characters} characters replaced)" if self.n_replaced_characters else ""),
            f"cell recovery rate: {self.cell_recovery_rate:.4f} "
            f"({self.n_flagged_cells}/{self.n_cells} cells flagged)",
        ]
        if self.flag_counts:
            flags = ", ".join(f"{name}={count}" for name, count in self.flag_counts.items())
            lines.append(f"flags: {flags}")
        if self.is_clean:
            lines.append("input was clean: strict parsing would produce the identical dataset")
        return "\n".join(lines)


@dataclass
class NtSalvageReport:
    """What the line-level N-Triples salvage did to produce its graph."""

    source: str = "ntriples"
    n_lines: int = 0
    n_triples: int = 0
    n_repaired: int = 0
    n_skipped: int = 0
    events: list[dict[str, Any]] = field(default_factory=list)
    n_events: int = 0

    def add_event(self, line: int, action: str, detail: str) -> None:
        """Record one repaired or skipped line (bounded; counters are exact)."""
        self.n_events += 1
        if len(self.events) < _MAX_EVENTS:
            self.events.append({"line": line, "action": action, "detail": detail})

    @property
    def line_recovery_rate(self) -> float:
        """Fraction of non-empty input lines that yielded a triple."""
        attempted = self.n_triples + self.n_skipped
        if not attempted:
            return 1.0
        return self.n_triples / attempted

    @property
    def is_clean(self) -> bool:
        """True when every line parsed strictly with no repair or skip."""
        return not self.n_repaired and not self.n_skipped

    def to_json_dict(self) -> dict[str, Any]:
        """JSON-serialisable summary of the salvage run."""
        return {
            "source": self.source,
            "n_lines": self.n_lines,
            "n_triples": self.n_triples,
            "n_repaired": self.n_repaired,
            "n_skipped": self.n_skipped,
            "line_recovery_rate": self.line_recovery_rate,
            "is_clean": self.is_clean,
            "n_events": self.n_events,
            "events": [dict(event) for event in self.events],
        }

    def summary(self) -> str:
        """One-paragraph human-readable account, used by the CLI."""
        lines = [
            f"salvaged {self.n_triples} triples from {self.n_lines} lines",
            f"repaired {self.n_repaired} lines, skipped {self.n_skipped} lines "
            f"(line recovery rate {self.line_recovery_rate:.4f})",
        ]
        if self.is_clean:
            lines.append("input was clean: strict parsing would produce the identical graph")
        return "\n".join(lines)
