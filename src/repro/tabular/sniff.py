"""Quote-aware delimiter sniffing shared by every CSV reader.

The strict reader (:mod:`repro.tabular.io_csv`), the salvage tier
(:mod:`repro.recovery.salvage_csv`) and the chunked feed reader
(:mod:`repro.feeds.readers`) all face the same problem: open-data portals
publish CSV with commas, semicolons, tabs or pipes, and the delimiter has to
be guessed from the header before parsing.  This module holds the single
implementation of that guess so the three readers cannot drift apart.
"""

from __future__ import annotations


def _count_outside_quotes(line: str, char: str) -> int:
    """Count occurrences of ``char`` in ``line`` that sit outside quoted runs.

    Quoting follows the CSV convention: a ``"`` toggles the quoted state and a
    doubled ``""`` inside a quoted run is an escaped literal quote (which does
    not toggle).  A header such as ``"a,b";c`` therefore counts zero commas
    and one semicolon.
    """
    count = 0
    in_quotes = False
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == '"':
            if in_quotes and i + 1 < n and line[i + 1] == '"':
                i += 2
                continue
            in_quotes = not in_quotes
        elif c == char and not in_quotes:
            count += 1
        i += 1
    return count


def sniff_delimiter(text: str, default: str = ",") -> str:
    """Guess the delimiter of ``text`` among comma, semicolon, tab and pipe.

    Only delimiters *outside* quoted fields count, so a quoted header cell
    that itself contains a candidate delimiter (``"a,b";c``) cannot win the
    vote for the wrong character.
    """
    sample = text[:4096]
    candidates = [",", ";", "\t", "|"]
    header = sample.splitlines()[0] if sample.splitlines() else ""
    counts = {d: _count_outside_quotes(header, d) for d in candidates}
    best = max(counts, key=counts.get)
    return best if counts[best] > 0 else default
