"""Encoded-matrix views of a :class:`~repro.tabular.dataset.Dataset`.

This module is the performance core of the library.  A :class:`Dataset` stores
columns as numpy arrays, but most of the mining hot paths (k-NN distances,
naive Bayes likelihoods, fold slicing inside cross-validation) historically
walked those columns cell-by-cell through Python row dictionaries.  An
:class:`EncodedDataset` lazily converts each column — once — into structures
the vectorized paths can broadcast over:

``numeric view``
    A ``float64`` array with ``nan`` marking missing *or unparseable* cells,
    plus a boolean missing mask.  Any column can be viewed numerically; cells
    that cannot be interpreted as floats are treated as missing, which matches
    the per-cell ``try: float(v) except: skip`` behaviour of the row-at-a-time
    estimators exactly.

``categorical view``
    An ``int64`` code array (``-1`` marking missing) together with the
    vocabulary of distinct string values in first-seen order and its inverse
    index.  Codes compare equal exactly when the row-at-a-time estimators'
    ``str(a) == str(b)`` comparison would.

Encodings are cached on the dataset instance via :func:`encode_dataset`.  This
is safe because every ``Dataset``/``Column`` operation returns a new object;
nothing in the library mutates column arrays in place.

Fold slicing is supported without re-encoding: :meth:`EncodedDataset.take`
returns a new dataset whose encoded views are produced by slicing the parent's
cached arrays with an index array (categorical vocabularies are re-restricted
to the levels present in the slice, preserving first-seen order, so per-fold
statistics remain identical to encoding the slice from scratch).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.tabular.dataset import Dataset

#: Attribute name used to cache the encoding on a dataset instance.
_CACHE_ATTR = "_encoded_cache"

#: Sentinel the row-at-a-time relational operators hash missing cells under
#: (see ``repro.tabular.transforms._hashable``).  The encoded group-key views
#: reuse it so that a raw string cell equal to this literal collides with the
#: missing bucket on both execution paths.
MISSING_KEY_SENTINEL = "\0<missing>"


class EncodedDataset:
    """Lazy per-column numeric/categorical encodings of one dataset.

    Instances are created through :func:`encode_dataset` (which caches them on
    the dataset) or :meth:`take` (which derives fold views by index slicing).
    Views for column names absent from the dataset are materialised as
    all-missing, mirroring ``row.get(name) -> None`` in the row path.
    """

    __slots__ = (
        "dataset",
        "_numeric",
        "_categorical",
        "_normalised",
        "_group_codes",
        "_group_keys",
        "_parent",
        "_parent_indices",
    )

    def __init__(
        self,
        dataset: Dataset,
        _parent: "EncodedDataset | None" = None,
        _parent_indices: np.ndarray | None = None,
    ) -> None:
        self.dataset = dataset
        self._numeric: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._categorical: dict[str, tuple[np.ndarray, list[str], dict[str, int]]] = {}
        self._normalised: dict[str, list[str]] = {}
        self._group_codes: dict[str, np.ndarray] = {}
        self._group_keys: dict[tuple[str, ...], tuple[np.ndarray, int]] = {}
        self._parent = _parent
        self._parent_indices = _parent_indices

    def __reduce__(self):
        """Refuse pickling: encoded views must never cross a process boundary.

        A pickled view would drag its (possibly memory-mapped) arrays
        through the pipe, defeating the zero-copy design.  The parallel
        tier shares views by fork inheritance or by reopening the backing
        ``.rps`` store worker-side (see ``repro.parallel``); anything else
        is a bug worth failing loudly on.
        """
        raise TypeError(
            "EncodedDataset cannot be pickled: share encoded views across processes "
            "via repro.parallel (fork inheritance or a store-file snapshot), not by "
            "serialising the view itself"
        )

    @property
    def n_rows(self) -> int:
        return self.dataset.n_rows

    # -- numeric view --------------------------------------------------------

    def numeric_view(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(values, missing)`` float64/bool arrays for column ``name``."""
        cached = self._numeric.get(name)
        if cached is not None:
            return cached
        if name not in self.dataset:
            n = self.n_rows
            view = (np.full(n, np.nan), np.ones(n, dtype=bool))
        elif self._parent is not None:
            values, missing = self._parent.numeric_view(name)
            view = (values[self._parent_indices], missing[self._parent_indices])
        else:
            view = self._encode_numeric(name)
        self._numeric[name] = view
        return view

    def _encode_numeric(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        column = self.dataset[name]
        if column.is_numeric():
            values = column.values.astype(float, copy=False)
            return values, np.isnan(values)
        missing = column.missing_mask().copy()
        values = np.full(len(column), np.nan)
        for i, value in enumerate(column.tolist()):
            if missing[i]:
                continue
            try:
                values[i] = float(value)
            except (TypeError, ValueError):
                missing[i] = True
        return values, missing

    # -- categorical view ----------------------------------------------------

    def codes_view(self, name: str) -> tuple[np.ndarray, list[str], dict[str, int]]:
        """Return ``(codes, vocabulary, index)`` for column ``name``.

        ``codes`` is an int64 array with ``-1`` for missing cells;
        ``vocabulary[codes[i]]`` is ``str(raw_value)`` and ``index`` inverts it.
        """
        cached = self._categorical.get(name)
        if cached is not None:
            return cached
        if name not in self.dataset:
            view = (np.full(self.n_rows, -1, dtype=np.int64), [], {})
        elif self._parent is not None:
            view = self._slice_codes(name)
        else:
            view = self._encode_categorical(name)
        self._categorical[name] = view
        return view

    def _encode_categorical(self, name: str) -> tuple[np.ndarray, list[str], dict[str, int]]:
        column = self.dataset[name]
        missing = column.missing_mask()
        codes = np.full(len(column), -1, dtype=np.int64)
        index: dict[str, int] = {}
        for i, value in enumerate(column.tolist()):
            if missing[i]:
                continue
            codes[i] = index.setdefault(str(value), len(index))
        return codes, list(index), index

    def seed_categorical(self, name: str, codes: np.ndarray, vocabulary: Sequence[str]) -> None:
        """Pre-populate the categorical view of column ``name``.

        Producers that already know each cell's category — the LOD
        tabulation assembles columns from interned object ids, so the codes
        fall out of the assembly — can seed the view and spare the per-cell
        encoding scan.  The seeded ``(codes, vocabulary)`` must be exactly
        what :meth:`_encode_categorical` would compute: ``str(value)``
        levels in first-seen row order with ``-1`` marking missing cells.
        Seeding an already-encoded column is a no-op (the cached view wins).
        """
        if name not in self._categorical:
            self._categorical[name] = (codes, list(vocabulary), {level: i for i, level in enumerate(vocabulary)})

    def seed_numeric(self, name: str, values: np.ndarray, missing: np.ndarray) -> None:
        """Pre-populate the numeric view of column ``name``.

        Used by the persistence tier (:mod:`repro.store`): a store file
        carries the ``float64`` values and bool missing mask that the
        in-memory encoder produced at save time, so reopening wires the
        memory-mapped arrays straight into the cache and skips the per-cell
        ``float(value)`` scan.  The seeded pair must be exactly what
        :meth:`_encode_numeric` would compute.  Seeding an already-encoded
        column is a no-op (the cached view wins).
        """
        if name not in self._numeric:
            self._numeric[name] = (values, missing)

    def seed_normalised(self, name: str, levels: Sequence[str]) -> None:
        """Pre-populate the normalised-levels cache of column ``name``.

        The persistence tier saves ``normalise_string`` of every vocabulary
        level so reopened datasets skip the per-level normalisation pass.
        The seeded list must be exactly what :meth:`normalised_levels` would
        compute for the column's vocabulary.  Seeding an already-normalised
        column is a no-op (the cached list wins).
        """
        if name not in self._normalised:
            self._normalised[name] = list(levels)

    # -- shared derived views -------------------------------------------------

    def missing_view(self, name: str) -> np.ndarray:
        """Boolean mask that is ``True`` where column ``name`` is missing.

        For numeric columns this is the nan mask of the numeric view; for
        object columns it is the column's cached missing mask.  Both are the
        exact masks the row-at-a-time criteria derive cell by cell, so counts
        taken from this view are bit-identical to the row path.
        """
        if name in self.dataset and not self.dataset[name].is_numeric():
            return self.dataset[name].missing_mask()
        return self.numeric_view(name)[1]

    def normalised_levels(self, name: str) -> list[str]:
        """``normalise_string`` of every categorical vocabulary level, cached.

        Normalisation (lower-case, accent stripping, whitespace collapsing —
        see :func:`repro.lod.linker.normalise_string`) is the costly per-string
        step of the fuzzy duplicate and spelling-variant checks; computing it
        once per distinct level instead of once per cell is what makes those
        checks scale with the vocabulary rather than with the row count.
        """
        cached = self._normalised.get(name)
        if cached is not None:
            return cached
        # Imported lazily: repro.tabular.__init__ imports this module, and the
        # lod package imports repro.tabular.dataset, so a top-level import here
        # would make package import order load-bearing.
        from repro.lod.linker import normalise_string

        _, vocabulary, _ = self.codes_view(name)
        levels = [normalise_string(level) for level in vocabulary]
        self._normalised[name] = levels
        return levels

    def normalised_codes_view(self, name: str) -> tuple[np.ndarray, list[str]]:
        """Codes of column ``name`` after string normalisation.

        Returns ``(codes, vocabulary)`` where raw levels that normalise to the
        same string share one code; the vocabulary lists the normalised forms
        in first-seen order of their raw levels and ``-1`` still marks missing.
        Two cells get equal codes exactly when the row path's
        ``normalise_string(str(value))`` keys would compare equal.
        """
        codes, vocabulary, _ = self.codes_view(name)
        if not vocabulary:
            return codes, []
        groups: dict[str, int] = {}
        remap = np.empty(len(vocabulary), dtype=np.int64)
        for i, level in enumerate(self.normalised_levels(name)):
            remap[i] = groups.setdefault(level, len(groups))
        return (
            np.where(codes >= 0, remap[np.clip(codes, 0, None)], -1),
            list(groups),
        )

    # -- group-by key views ---------------------------------------------------

    def group_codes_view(self, name: str) -> np.ndarray:
        """Per-row int64 codes whose equality matches the row path's group keys.

        Two rows receive the same code exactly when the row-at-a-time
        ``group_by`` would place them in the same group for key column
        ``name``:

        * numeric columns group by float equality (``np.unique`` on the cached
          float view; ``0.0`` and ``-0.0`` fold together like Python ``==``),
          with every ``nan`` cell sharing one dedicated ``-1`` code;
        * non-numeric columns group by their category codes, with missing
          cells folded into the :data:`MISSING_KEY_SENTINEL` level — reusing
          an existing level when a raw cell is literally that string, so the
          row path's sentinel collision is reproduced bit-for-bit.

        Absent columns (``row.get(name) -> None`` in the row path) are a
        single all-missing group.  The result is cached per column.
        """
        cached = self._group_codes.get(name)
        if cached is not None:
            return cached
        if name not in self.dataset:
            codes = np.zeros(self.n_rows, dtype=np.int64)
        elif self.dataset[name].is_numeric():
            values, missing = self.numeric_view(name)
            codes = np.full(values.shape, -1, dtype=np.int64)
            present = ~missing
            if present.any():
                codes[present] = np.unique(values[present], return_inverse=True)[1]
        else:
            raw_codes, vocabulary, _ = self.codes_view(name)
            codes, _ = merge_missing_level(raw_codes, vocabulary, MISSING_KEY_SENTINEL)
        self._group_codes[name] = codes
        return codes

    def group_keys(self, keys: Sequence[str]) -> tuple[np.ndarray, int]:
        """Composite group ids over ``keys`` in first-seen order.

        Returns ``(group_ids, n_groups)`` where ``group_ids[i]`` numbers the
        distinct key tuples by their first appearance down the rows — the
        iteration order of the row path's ``dict.setdefault`` grouping — so a
        result built group-by-group in id order has the same row order as the
        row-at-a-time reference.  Cached per key tuple.
        """
        key = tuple(keys)
        cached = self._group_keys.get(key)
        if cached is not None:
            return cached
        columns = [self.group_codes_view(k) for k in key]
        if len(columns) == 1:
            _, first_index, inverse = np.unique(columns[0], return_index=True, return_inverse=True)
        else:
            stacked = np.stack(columns, axis=1)
            _, first_index, inverse = np.unique(
                stacked, axis=0, return_index=True, return_inverse=True
            )
        inverse = inverse.reshape(-1)
        # np.unique numbers groups in sorted order; renumber by first occurrence.
        rank = np.empty(first_index.size, dtype=np.int64)
        rank[np.argsort(first_index, kind="stable")] = np.arange(first_index.size)
        result = (rank[inverse], int(first_index.size))
        self._group_keys[key] = result
        return result

    def _slice_codes(self, name: str) -> tuple[np.ndarray, list[str], dict[str, int]]:
        parent_codes, parent_vocab, _ = self._parent.codes_view(name)
        codes = parent_codes[self._parent_indices]
        present = codes[codes >= 0]
        if present.size == 0:
            return np.full(codes.shape, -1, dtype=np.int64), [], {}
        # Restrict the vocabulary to the levels present in this slice, in
        # first-seen order, so per-fold category statistics match what a fresh
        # encoding of the slice would produce.
        unique, first_position = np.unique(present, return_index=True)
        ordered = unique[np.argsort(first_position, kind="stable")]
        remap = np.full(len(parent_vocab), -1, dtype=np.int64)
        remap[ordered] = np.arange(ordered.size)
        sliced = np.where(codes >= 0, remap[np.clip(codes, 0, None)], -1)
        vocabulary = [parent_vocab[code] for code in ordered.tolist()]
        return sliced, vocabulary, {level: i for i, level in enumerate(vocabulary)}

    # -- fold slicing --------------------------------------------------------

    def take(self, indices: Sequence[int] | np.ndarray) -> Dataset:
        """Return ``dataset.take(indices)`` with its encoding pre-wired.

        The returned dataset carries an :class:`EncodedDataset` whose views are
        computed by slicing this encoding's cached arrays, so repeated fold
        extraction (as in cross-validation) never re-encodes columns from
        Python objects.
        """
        indices = np.asarray(indices, dtype=np.intp)
        subset = self.dataset.take(indices)
        encoded = EncodedDataset(subset, _parent=self, _parent_indices=indices)
        setattr(subset, _CACHE_ATTR, encoded)
        return subset


def map_codes_to_index(
    codes: np.ndarray,
    vocabulary: Sequence[str],
    index: dict[str, int],
    unseen_code: int = -1,
) -> np.ndarray:
    """Translate ``codes`` (against ``vocabulary``) into another vocabulary's codes.

    Levels absent from ``index`` map to ``unseen_code``; missing cells (``-1``)
    stay ``-1``.  This is the shared remapping step used when comparing a test
    dataset's categories against the vocabulary a model was fitted on.
    """
    if not vocabulary:
        return codes
    remap = np.asarray([index.get(level, unseen_code) for level in vocabulary], dtype=np.int64)
    return np.where(codes >= 0, remap[np.clip(codes, 0, None)], -1)


def merge_missing_level(
    codes: np.ndarray,
    vocabulary: Sequence[str],
    missing_label: str = "<missing>",
) -> tuple[np.ndarray, list[str]]:
    """Fold missing cells (``-1`` codes) into an explicit ``missing_label`` level.

    Returns ``(codes, levels)`` where every missing cell carries the code of
    ``missing_label`` — reusing the existing level when the vocabulary already
    contains that literal string, otherwise appending it.  This mirrors the
    row-at-a-time miners that bucket missing cells under the same dictionary
    key as a literal ``missing_label`` value (decision-tree categorical splits,
    OneR/Prism discretisation).
    """
    levels = list(vocabulary)
    try:
        missing_code = levels.index(missing_label)
    except ValueError:
        levels.append(missing_label)
        missing_code = len(levels) - 1
    return np.where(codes >= 0, codes, missing_code), levels


def encode_dataset(dataset: Dataset) -> EncodedDataset:
    """Return the cached :class:`EncodedDataset` for ``dataset``, creating it lazily."""
    encoded = getattr(dataset, _CACHE_ATTR, None)
    if encoded is not None and encoded.dataset is dataset:
        return encoded
    encoded = EncodedDataset(dataset)
    try:
        setattr(dataset, _CACHE_ATTR, encoded)
    except AttributeError:  # pragma: no cover - datasets are plain objects
        pass
    return encoded


def extend_encoding(base: EncodedDataset, delta: EncodedDataset, merged: Dataset) -> EncodedDataset:
    """Seed ``merged``'s encoding by extending ``base``'s cached views with ``delta``'s.

    ``merged`` must be the row-wise concatenation of ``base.dataset`` followed
    by ``delta.dataset`` (same columns, same ctypes).  This is the
    *vocabulary-stable code extension* at the heart of the incremental tier:
    every view already cached on ``base`` is carried over and grown by the
    delta's encoded block, so appending never re-encodes old rows —

    * numeric views concatenate the two ``(values, missing)`` pairs;
    * categorical views keep the base vocabulary and codes untouched, remap
      the delta's codes through ``index.setdefault`` in delta-vocabulary
      order (which is exactly the first-seen order a cold encode of the
      merged column would assign) and append only the genuinely new levels;
    * normalised-level caches grow by normalising only those new levels.

    Views *not* cached on ``base`` stay lazy and cold on the result; the
    per-column group-code and composite group-key caches are never carried
    over because ``np.unique``-based numeric group codes are not stable under
    append.  Bit-identity with a cold encode of ``merged`` holds by
    construction for everything that is seeded.  The seeded encoding is
    attached to ``merged`` and returned.
    """
    encoded = EncodedDataset(merged)
    for name, (values, missing) in base._numeric.items():
        d_values, d_missing = delta.numeric_view(name)
        encoded._numeric[name] = (
            np.concatenate([values, d_values]),
            np.concatenate([missing, d_missing]),
        )
    for name, (codes, vocabulary, index) in base._categorical.items():
        d_codes, d_vocab, _ = delta.codes_view(name)
        new_index = dict(index)
        if d_vocab:
            remap = np.empty(len(d_vocab), dtype=np.int64)
            for j, level in enumerate(d_vocab):
                remap[j] = new_index.setdefault(level, len(new_index))
            d_codes = np.where(d_codes >= 0, remap[np.clip(d_codes, 0, None)], -1)
        encoded._categorical[name] = (
            np.concatenate([codes, d_codes]),
            list(new_index),
            new_index,
        )
        base_levels = base._normalised.get(name)
        if base_levels is not None:
            from repro.lod.linker import normalise_string

            new_levels = list(new_index)[len(vocabulary):]
            encoded._normalised[name] = base_levels + [normalise_string(level) for level in new_levels]
    setattr(merged, _CACHE_ATTR, encoded)
    return encoded
