"""Relational-style transforms over :class:`~repro.tabular.dataset.Dataset`.

These implement the "data integration in a repository" phase of the KDD
process (paper, Figure 1): selecting, joining and aggregating heterogeneous
open data sources before data quality is measured and mining is applied.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.exceptions import SchemaError
from repro.parallel import ViewHandle, effective_n_jobs, parallel_map
from repro.tabular.dataset import Column, ColumnRole, ColumnType, Dataset, is_missing_value
from repro.tabular.encoded import MISSING_KEY_SENTINEL, encode_dataset


# ---------------------------------------------------------------------------
# Row-level relational operators
# ---------------------------------------------------------------------------

def select(dataset: Dataset, predicate: Callable[[dict[str, Any]], bool]) -> Dataset:
    """Return the rows satisfying ``predicate`` (relational selection)."""
    return dataset.filter(predicate)


def project(dataset: Dataset, columns: Sequence[str]) -> Dataset:
    """Return only the listed columns (relational projection)."""
    return dataset.select_columns(columns)


def distinct(dataset: Dataset, subset: Sequence[str] | None = None) -> Dataset:
    """Drop duplicate rows (optionally considering only ``subset`` columns)."""
    keys = list(subset) if subset is not None else dataset.column_names
    seen: set[tuple] = set()
    indices: list[int] = []
    for i, row in enumerate(dataset.iter_rows()):
        key = tuple(_hashable(row[k]) for k in keys)
        if key not in seen:
            seen.add(key)
            indices.append(i)
    return dataset.take(indices)


def sort_by(dataset: Dataset, columns: Sequence[str], descending: bool = False) -> Dataset:
    """Return the dataset sorted by the listed columns (missing values last)."""
    for name in columns:
        if name not in dataset:
            raise SchemaError(f"cannot sort by unknown column {name!r}")

    def key(index: int):
        row = dataset.row(index)
        parts = []
        for name in columns:
            value = row[name]
            missing = is_missing_value(value)
            parts.append((missing, value if not missing else ""))
        return tuple(parts)

    order = sorted(range(dataset.n_rows), key=key, reverse=descending)
    return dataset.take(order)


def _hashable(value: Any) -> Any:
    if is_missing_value(value):
        return MISSING_KEY_SENTINEL
    return value


def join(
    left: Dataset,
    right: Dataset,
    on: Sequence[str] | str,
    how: str = "inner",
    suffix: str = "_right",
) -> Dataset:
    """Join two datasets on equality of the ``on`` columns.

    Supported ``how`` values are ``inner`` and ``left``.  Columns of ``right``
    that collide with columns of ``left`` (other than the join keys) are
    renamed with ``suffix``.
    """
    if how not in ("inner", "left"):
        raise SchemaError(f"unsupported join type {how!r}")
    keys = [on] if isinstance(on, str) else list(on)
    for key in keys:
        if key not in left or key not in right:
            raise SchemaError(f"join key {key!r} missing from one of the datasets")

    right_index: dict[tuple, list[int]] = {}
    for i, row in enumerate(right.iter_rows()):
        right_index.setdefault(tuple(_hashable(row[k]) for k in keys), []).append(i)

    right_value_columns = [c for c in right.column_names if c not in keys]
    renamed = {
        name: (name + suffix if name in left.column_names else name) for name in right_value_columns
    }

    out_rows: list[dict[str, Any]] = []
    for lrow in left.iter_rows():
        key = tuple(_hashable(lrow[k]) for k in keys)
        matches = right_index.get(key, [])
        if matches:
            for ri in matches:
                rrow = right.row(ri)
                merged = dict(lrow)
                for name in right_value_columns:
                    merged[renamed[name]] = rrow[name]
                out_rows.append(merged)
        elif how == "left":
            merged = dict(lrow)
            for name in right_value_columns:
                merged[renamed[name]] = None
            out_rows.append(merged)
    if not out_rows:
        raise SchemaError("join produced no rows")
    ctypes = {c.name: c.ctype for c in left.columns}
    for name in right_value_columns:
        ctypes[renamed[name]] = right[name].ctype
    roles = {c.name: c.role for c in left.columns}
    return Dataset.from_rows(out_rows, name=f"{left.name}_join_{right.name}", ctypes=ctypes, roles=roles)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

_AGGREGATIONS: dict[str, Callable[[list[float]], float]] = {
    "sum": lambda xs: float(sum(xs)),
    "mean": lambda xs: float(sum(xs) / len(xs)) if xs else float("nan"),
    "min": lambda xs: float(min(xs)) if xs else float("nan"),
    "max": lambda xs: float(max(xs)) if xs else float("nan"),
    "count": lambda xs: float(len(xs)),
    "std": lambda xs: float(np.std(xs)) if xs else float("nan"),
    "median": lambda xs: float(np.median(xs)) if xs else float("nan"),
}


class _GroupSegments:
    """Per-measure sorted segment arrays behind the encoded ``group_by`` tiers.

    Holds the (possibly expensive) derived state — the stable sort order,
    the per-measure present-value segments and their group boundaries —
    computed lazily from the dataset's encoded views.  In fork-mode
    dispatch the computed arrays are shared with workers copy-on-write; in
    snapshot mode only the :class:`~repro.parallel.ViewHandle`, the keys
    and the aggregation spec are pickled, and each worker re-derives the
    segments from the reopened store — deterministically, so both modes
    reduce the exact same float sequences.
    """

    def __init__(
        self,
        view: ViewHandle,
        keys: list[str],
        aggregations: Mapping[str, tuple[str, str]],
    ) -> None:
        """Capture the inputs; derived arrays are computed on first use."""
        self.view = view
        self.keys = keys
        self.aggregations = dict(aggregations)
        self._measures: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray, str]] | None = None

    def __getstate__(self) -> dict[str, Any]:
        """Pickle only the inputs — workers re-derive the segment arrays."""
        return {"view": self.view, "keys": self.keys, "aggregations": self.aggregations}

    def __setstate__(self, state: dict[str, Any]) -> None:
        """Restore the inputs with the derived state unset."""
        self.__dict__.update(state)
        self._measures = None

    def measures(self) -> dict[str, tuple[np.ndarray, np.ndarray, np.ndarray, str]]:
        """``{out_name: (present, present_counts, ends, agg)}``, derived lazily."""
        if self._measures is None:
            encoded = encode_dataset(self.view.resolve())
            group_ids, n_groups = encoded.group_keys(self.keys)
            order = np.argsort(group_ids, kind="stable")
            sorted_ids = group_ids[order]
            measures: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray, str]] = {}
            for out_name, (source, agg) in self.aggregations.items():
                values, missing = encoded.numeric_view(source)
                keep = ~missing[order]
                present = values[order][keep]
                present_counts = np.bincount(sorted_ids[keep], minlength=n_groups)
                ends = np.cumsum(present_counts)
                measures[out_name] = (present, present_counts, ends, agg)
            self._measures = measures
        return self._measures

    def reduce_range(self, start: int, stop: int) -> list[dict[str, float]]:
        """Reduce every measure over groups ``start..stop`` (exclusive).

        Applies the same ``_AGGREGATIONS`` callables to the same Python
        float lists as the row-at-a-time reference, keeping every float
        operation — summation order included — bit-identical regardless
        of how the group range was partitioned across workers.
        """
        rows: list[dict[str, float]] = [{} for _ in range(stop - start)]
        for out_name, (present, present_counts, ends, agg) in self.measures().items():
            fn = _AGGREGATIONS[agg]
            for g in range(start, stop):
                xs = present[ends[g] - present_counts[g] : ends[g]].tolist()
                if agg == "count":
                    rows[g - start][out_name] = float(len(xs))
                else:
                    rows[g - start][out_name] = fn(xs) if xs else float("nan")
        return rows


def _reduce_group_chunk(context: dict[str, Any], chunk_index: int) -> list[dict[str, float]]:
    """Reduce one contiguous chunk of groups (both tiers' work unit)."""
    start, stop = context["chunks"][chunk_index]
    return context["segments"].reduce_range(start, stop)


def group_by(
    dataset: Dataset,
    keys: Sequence[str],
    aggregations: Mapping[str, tuple[str, str]],
    force_row: bool = False,
    n_jobs: int | None = None,
) -> Dataset:
    """Group rows by ``keys`` and compute aggregations.

    ``aggregations`` maps an output column name to a ``(source_column, agg)``
    pair, where ``agg`` is one of ``sum``, ``mean``, ``min``, ``max``,
    ``count``, ``std`` or ``median``.  Missing values are ignored inside each
    group; missing *key* cells form their own group, holding the missing value.

    This is the shared aggregation primitive of the OLAP layer, and it follows
    the library's two-tier protocol: when every aggregation source column is
    numeric, the groups are computed from the dataset's cached encoded views
    (:meth:`repro.tabular.encoded.EncodedDataset.group_keys`) and the measures
    are reduced over contiguous sorted-scan segments of the float views —
    bit-identical to the row-at-a-time reference, including the float
    summation order, the first-seen group order and the first-row key values.
    ``force_row=True`` is the escape hatch that routes to the retained
    row-at-a-time reference implementation.  ``n_jobs`` fans the per-group
    segment reductions of the encoded path over a worker pool (see
    :mod:`repro.parallel`); the result is bit-identical at any worker
    count because chunk boundaries only partition the group range — each
    group's reduction is a self-contained unit of work.
    """
    keys = list(keys)
    for key in keys:
        if key not in dataset:
            raise SchemaError(f"unknown group-by key {key!r}")
    for out_name, (source, agg) in aggregations.items():
        if source not in dataset:
            raise SchemaError(f"aggregation {out_name!r} references unknown column {source!r}")
        if agg not in _AGGREGATIONS:
            raise SchemaError(f"unknown aggregation {agg!r}; choose from {sorted(_AGGREGATIONS)}")

    if not force_row and all(
        dataset[source].is_numeric() for source, _ in aggregations.values()
    ):
        out_rows = _grouped_rows_encoded(dataset, keys, aggregations, n_jobs)
    else:
        out_rows = _grouped_rows_reference(dataset, keys, aggregations)

    ctypes = {k: dataset[k].ctype for k in keys}
    for out_name in aggregations:
        ctypes[out_name] = ColumnType.NUMERIC
    return Dataset.from_rows(out_rows, name=f"{dataset.name}_grouped", ctypes=ctypes)


def _grouped_rows_reference(
    dataset: Dataset,
    keys: list[str],
    aggregations: Mapping[str, tuple[str, str]],
) -> list[dict[str, Any]]:
    """Row-at-a-time reference grouping: the semantics the encoded path must match."""
    groups: dict[tuple, list[int]] = {}
    for i, row in enumerate(dataset.iter_rows()):
        groups.setdefault(tuple(_hashable(row[k]) for k in keys), []).append(i)

    out_rows: list[dict[str, Any]] = []
    for _group_key, indices in groups.items():
        row: dict[str, Any] = {}
        first = dataset.row(indices[0])
        for key in keys:
            row[key] = first[key]
        for out_name, (source, agg) in aggregations.items():
            values = [dataset[source][i] for i in indices]
            numeric = [float(v) for v in values if not is_missing_value(v)]
            if agg == "count":
                row[out_name] = float(len([v for v in values if not is_missing_value(v)]))
            else:
                row[out_name] = _AGGREGATIONS[agg](numeric) if numeric else float("nan")
        out_rows.append(row)
    return out_rows


def _grouped_rows_encoded(
    dataset: Dataset,
    keys: list[str],
    aggregations: Mapping[str, tuple[str, str]],
    n_jobs: int | None = None,
) -> list[dict[str, Any]]:
    """Vectorized grouping over the cached encoded views.

    Group membership comes from the composite int64 key codes (first-seen
    order, so the output row order matches the reference) and each measure is
    cut into per-group contiguous segments of its float view by one stable
    sort (see :class:`_GroupSegments`).  The per-group reductions then apply
    the *same* ``_AGGREGATIONS`` callables to the same Python float sequences
    as the reference path, which keeps every float operation — summation
    order included — bit-identical.
    """
    encoded = encode_dataset(dataset)
    group_ids, n_groups = encoded.group_keys(keys)
    if n_groups == 0:
        return []
    order = np.argsort(group_ids, kind="stable")
    counts = np.bincount(group_ids, minlength=n_groups)
    starts = np.zeros(n_groups, dtype=np.intp)
    np.cumsum(counts[:-1], out=starts[1:])
    first_rows = order[starts]

    out_rows: list[dict[str, Any]] = [
        {key: dataset[key][first_rows[g]] for key in keys} for g in range(n_groups)
    ]
    view = ViewHandle(dataset)
    segments = _GroupSegments(view, keys, aggregations)
    n_workers = effective_n_jobs(n_jobs)
    reduced = None
    if n_workers > 1 and n_groups > 1:
        bounds = np.linspace(0, n_groups, min(n_groups, n_workers * 4) + 1).astype(int)
        chunks = [(int(bounds[i]), int(bounds[i + 1])) for i in range(len(bounds) - 1)]
        # The handle rides in the context dict directly (alongside the
        # segments object that shares it) so snapshot dispatch can find
        # and persist it.
        context = {"view": view, "segments": segments, "chunks": chunks}
        chunk_results = parallel_map(_reduce_group_chunk, len(chunks), context=context, n_jobs=n_workers)
        if chunk_results is not None:
            reduced = [row for chunk in chunk_results for row in chunk]
    if reduced is None:
        reduced = segments.reduce_range(0, n_groups)
    for g in range(n_groups):
        out_rows[g].update(reduced[g])
    return out_rows


# ---------------------------------------------------------------------------
# Column-level transformations useful for preprocessing
# ---------------------------------------------------------------------------

def discretize(
    dataset: Dataset,
    column: str,
    bins: int = 4,
    strategy: str = "width",
    labels: Sequence[str] | None = None,
) -> Dataset:
    """Replace a numeric column by a categorical binned version.

    ``strategy`` is ``"width"`` (equal-width bins) or ``"frequency"``
    (equal-frequency / quantile bins).
    """
    col = dataset[column]
    if not col.is_numeric():
        raise SchemaError(f"column {column!r} is not numeric; cannot discretize")
    if bins < 2:
        raise SchemaError("need at least 2 bins")
    if strategy not in ("width", "frequency"):
        raise SchemaError(f"unknown discretization strategy {strategy!r}")
    values = col.values.astype(float)
    present = values[~np.isnan(values)]
    if present.size == 0:
        raise SchemaError(f"column {column!r} has no non-missing values")
    if strategy == "width":
        edges = np.linspace(present.min(), present.max(), bins + 1)
    else:
        quantiles = np.linspace(0, 100, bins + 1)
        edges = np.percentile(present, quantiles)
        edges = np.unique(edges)
        if edges.size < 2:
            edges = np.array([present.min(), present.max()])
    n_bins = len(edges) - 1
    if labels is None:
        labels = [f"{column}_bin{i}" for i in range(n_bins)]
    elif len(labels) < n_bins:
        raise SchemaError("not enough labels for the number of bins")

    def bin_of(value: float) -> str | None:
        if math.isnan(value):
            return None
        index = int(np.searchsorted(edges, value, side="right")) - 1
        index = min(max(index, 0), n_bins - 1)
        return labels[index]

    binned = [bin_of(v) for v in values]
    new_col = Column(column, binned, ctype=ColumnType.CATEGORICAL, role=col.role)
    return dataset.replace_column(new_col)


def normalize(dataset: Dataset, columns: Sequence[str] | None = None, method: str = "minmax") -> Dataset:
    """Normalise numeric columns in place (min-max to [0, 1] or z-score)."""
    if method not in ("minmax", "zscore"):
        raise SchemaError(f"unknown normalisation method {method!r}")
    if columns is None:
        columns = [c.name for c in dataset.columns if c.is_numeric() and c.role == ColumnRole.FEATURE]
    result = dataset
    for name in columns:
        col = result[name]
        if not col.is_numeric():
            raise SchemaError(f"column {name!r} is not numeric; cannot normalise")
        values = col.values.astype(float)
        present = values[~np.isnan(values)]
        if present.size == 0:
            continue
        if method == "minmax":
            low, high = float(present.min()), float(present.max())
            span = high - low
            scaled = (values - low) / span if span > 0 else np.zeros_like(values)
        else:
            mean, std = float(present.mean()), float(present.std())
            scaled = (values - mean) / std if std > 0 else np.zeros_like(values)
        scaled = np.where(np.isnan(values), np.nan, scaled)
        result = result.replace_column(Column(name, scaled.tolist(), ctype=ColumnType.NUMERIC, role=col.role))
    return result


def derive_column(
    dataset: Dataset,
    name: str,
    expression: Callable[[dict[str, Any]], Any],
    ctype: str | None = None,
    role: str = ColumnRole.FEATURE,
) -> Dataset:
    """Add a new column computed row-by-row from ``expression(row_dict)``."""
    values = [expression(row) for row in dataset.iter_rows()]
    return dataset.add_column(Column(name, values, ctype=ctype, role=role))


def pivot_counts(dataset: Dataset, row_key: str, column_key: str) -> Dataset:
    """Return a contingency table (counts) of ``row_key`` × ``column_key``."""
    for key in (row_key, column_key):
        if key not in dataset:
            raise SchemaError(f"unknown column {key!r}")
    row_values = dataset[row_key].distinct()
    col_values = dataset[column_key].distinct()
    counts = {rv: {cv: 0 for cv in col_values} for rv in row_values}
    for row in dataset.iter_rows():
        rv, cv = row[row_key], row[column_key]
        if is_missing_value(rv) or is_missing_value(cv):
            continue
        counts[rv][cv] += 1
    out_rows = []
    for rv in row_values:
        out = {row_key: rv}
        for cv in col_values:
            out[f"{column_key}={cv}"] = counts[rv][cv]
        out_rows.append(out)
    return Dataset.from_rows(out_rows, name=f"{dataset.name}_pivot")


def train_test_indices(n_rows: int, test_fraction: float = 0.3, seed: int = 0) -> tuple[list[int], list[int]]:
    """Return reproducible (train_indices, test_indices) for a dataset of ``n_rows``."""
    if not 0.0 < test_fraction < 1.0:
        raise SchemaError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n_rows)
    n_test = max(1, int(round(n_rows * test_fraction)))
    test = sorted(int(i) for i in order[:n_test])
    train = sorted(int(i) for i in order[n_test:])
    return train, test
