"""Descriptive statistics and dependence measures over datasets.

The data quality criteria in :mod:`repro.quality` (correlation, balance,
outliers) are built on these primitives, and the OLAP/reporting layer uses
them to summarise measures.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.exceptions import SchemaError
from repro.tabular.dataset import Column, Dataset, is_missing_value


# ---------------------------------------------------------------------------
# Single-column summaries
# ---------------------------------------------------------------------------

def numeric_summary(column: Column) -> dict[str, float]:
    """Return count/mean/std/min/quartiles/max for a numeric column."""
    if not column.is_numeric():
        raise SchemaError(f"column {column.name!r} is not numeric")
    values = column.values.astype(float)
    present = values[~np.isnan(values)]
    if present.size == 0:
        return {key: float("nan") for key in ("count", "mean", "std", "min", "q1", "median", "q3", "max")} | {
            "count": 0.0
        }
    q1, median, q3 = np.percentile(present, [25, 50, 75])
    return {
        "count": float(present.size),
        "mean": float(present.mean()),
        "std": float(present.std()),
        "min": float(present.min()),
        "q1": float(q1),
        "median": float(median),
        "q3": float(q3),
        "max": float(present.max()),
    }


def categorical_summary(column: Column) -> dict[str, Any]:
    """Return count/cardinality/mode/mode frequency for a non-numeric column."""
    counts = column.value_counts()
    if not counts:
        return {"count": 0, "n_distinct": 0, "mode": None, "mode_freq": 0}
    mode = max(counts, key=counts.get)
    return {
        "count": sum(counts.values()),
        "n_distinct": len(counts),
        "mode": mode,
        "mode_freq": counts[mode],
    }


def describe(dataset: Dataset) -> dict[str, dict[str, Any]]:
    """Return a per-column description mixing numeric and categorical summaries."""
    out: dict[str, dict[str, Any]] = {}
    for column in dataset.columns:
        base: dict[str, Any] = {"type": column.ctype, "n_missing": column.n_missing()}
        if column.is_numeric():
            base.update(numeric_summary(column))
        else:
            base.update(categorical_summary(column))
        out[column.name] = base
    return out


# ---------------------------------------------------------------------------
# Dependence measures
# ---------------------------------------------------------------------------

def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation between two numeric sequences (pairwise-complete)."""
    xa = np.asarray(list(x), dtype=float)
    ya = np.asarray(list(y), dtype=float)
    if xa.shape != ya.shape:
        raise SchemaError("sequences must have the same length")
    mask = ~(np.isnan(xa) | np.isnan(ya))
    xa, ya = xa[mask], ya[mask]
    if xa.size < 2:
        return float("nan")
    if xa.std() == 0 or ya.std() == 0:
        return 0.0
    return float(np.corrcoef(xa, ya)[0, 1])


def spearman(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation (pairwise-complete), implemented via ranks."""
    xa = np.asarray(list(x), dtype=float)
    ya = np.asarray(list(y), dtype=float)
    mask = ~(np.isnan(xa) | np.isnan(ya))
    xa, ya = xa[mask], ya[mask]
    if xa.size < 2:
        return float("nan")
    return pearson(_rank(xa), _rank(ya))


def _rank(values: np.ndarray) -> np.ndarray:
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty_like(values)
    sorted_values = values[order]
    ranks_in_order = np.arange(1, values.size + 1, dtype=float)
    # average ranks for ties
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        ranks_in_order[i : j + 1] = (i + j + 2) / 2.0
        i = j + 1
    ranks[order] = ranks_in_order
    return ranks


def correlation_matrix(dataset: Dataset, columns: Sequence[str] | None = None, method: str = "pearson") -> tuple[list[str], np.ndarray]:
    """Return (column names, correlation matrix) over the numeric columns."""
    if method not in ("pearson", "spearman"):
        raise SchemaError(f"unknown correlation method {method!r}")
    if columns is None:
        columns = [c.name for c in dataset.columns if c.is_numeric()]
    corr_fn = pearson if method == "pearson" else spearman
    k = len(columns)
    matrix = np.eye(k)
    for i in range(k):
        for j in range(i + 1, k):
            value = corr_fn(dataset[columns[i]].values, dataset[columns[j]].values)
            matrix[i, j] = matrix[j, i] = value
    return list(columns), matrix


def entropy(column: Column, base: float = 2.0) -> float:
    """Shannon entropy of a categorical/boolean column's value distribution."""
    counts = column.value_counts()
    total = sum(counts.values())
    if total == 0:
        return 0.0
    result = 0.0
    for count in counts.values():
        p = count / total
        result -= p * math.log(p, base)
    return result


def mutual_information(a: Column, b: Column, base: float = 2.0) -> float:
    """Mutual information between two discrete columns (missing cells ignored)."""
    pairs = [
        (x, y)
        for x, y in zip(a.tolist(), b.tolist())
        if not is_missing_value(x) and not is_missing_value(y)
    ]
    if not pairs:
        return 0.0
    total = len(pairs)
    joint: dict[tuple, int] = {}
    marg_a: dict[Any, int] = {}
    marg_b: dict[Any, int] = {}
    for x, y in pairs:
        joint[(x, y)] = joint.get((x, y), 0) + 1
        marg_a[x] = marg_a.get(x, 0) + 1
        marg_b[y] = marg_b.get(y, 0) + 1
    mi = 0.0
    for (x, y), count in joint.items():
        p_xy = count / total
        p_x = marg_a[x] / total
        p_y = marg_b[y] / total
        mi += p_xy * math.log(p_xy / (p_x * p_y), base)
    return max(mi, 0.0)


def cramers_v(a: Column, b: Column) -> float:
    """Cramér's V association between two categorical columns (0 = none, 1 = perfect)."""
    pairs = [
        (x, y)
        for x, y in zip(a.tolist(), b.tolist())
        if not is_missing_value(x) and not is_missing_value(y)
    ]
    if not pairs:
        return 0.0
    levels_a = sorted({str(x) for x, _ in pairs})
    levels_b = sorted({str(y) for _, y in pairs})
    if len(levels_a) < 2 or len(levels_b) < 2:
        return 0.0
    index_a = {v: i for i, v in enumerate(levels_a)}
    index_b = {v: i for i, v in enumerate(levels_b)}
    table = np.zeros((len(levels_a), len(levels_b)))
    for x, y in pairs:
        table[index_a[str(x)], index_b[str(y)]] += 1
    n = table.sum()
    row_sums = table.sum(axis=1, keepdims=True)
    col_sums = table.sum(axis=0, keepdims=True)
    expected = row_sums @ col_sums / n
    with np.errstate(divide="ignore", invalid="ignore"):
        chi2 = np.nansum(np.where(expected > 0, (table - expected) ** 2 / expected, 0.0))
    phi2 = chi2 / n
    k = min(len(levels_a) - 1, len(levels_b) - 1)
    if k == 0:
        return 0.0
    return float(math.sqrt(phi2 / k))


def correlation_ratio(categories: Column, values: Column) -> float:
    """Correlation ratio (eta) between a categorical and a numeric column."""
    if not values.is_numeric():
        raise SchemaError("second column must be numeric for the correlation ratio")
    pairs = [
        (c, float(v))
        for c, v in zip(categories.tolist(), values.tolist())
        if not is_missing_value(c) and not is_missing_value(v)
    ]
    if len(pairs) < 2:
        return 0.0
    groups: dict[Any, list[float]] = {}
    for c, v in pairs:
        groups.setdefault(c, []).append(v)
    all_values = np.asarray([v for _, v in pairs])
    grand_mean = all_values.mean()
    ss_between = sum(len(g) * (np.mean(g) - grand_mean) ** 2 for g in groups.values())
    ss_total = float(((all_values - grand_mean) ** 2).sum())
    if ss_total == 0:
        return 0.0
    return float(math.sqrt(ss_between / ss_total))


def gini_impurity(column: Column) -> float:
    """Gini impurity of a discrete column's distribution (0 = pure)."""
    counts = column.value_counts()
    total = sum(counts.values())
    if total == 0:
        return 0.0
    return 1.0 - sum((c / total) ** 2 for c in counts.values())


def frequency_table(column: Column, normalise: bool = False) -> dict[Any, float]:
    """Value → frequency (or relative frequency) table for a column."""
    counts = column.value_counts()
    if not normalise:
        return {k: float(v) for k, v in counts.items()}
    total = sum(counts.values())
    if total == 0:
        return {}
    return {k: v / total for k, v in counts.items()}
