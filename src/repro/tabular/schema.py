"""Schemas: declarative expectations about a dataset's structure and content.

A :class:`Schema` is both documentation (what columns a source should have)
and an executable validator: :meth:`Schema.validate` returns a list of
violations that the consistency data quality criterion
(:mod:`repro.quality.consistency`) turns into a measurable score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import SchemaError
from repro.tabular.dataset import Column, ColumnType, Dataset, is_missing_value


@dataclass
class ColumnSpec:
    """Expectations for a single column.

    Parameters
    ----------
    name:
        Column name that must exist in the dataset.
    ctype:
        Expected :class:`~repro.tabular.dataset.ColumnType`; ``None`` accepts
        any type.
    required:
        When ``True`` (default) the column must be present.
    nullable:
        When ``False``, missing cells are violations.
    min_value / max_value:
        Inclusive numeric bounds (numeric columns only).
    allowed_values:
        Closed domain for categorical/boolean/string columns.
    unique:
        When ``True`` duplicate non-missing values are violations.
    """

    name: str
    ctype: str | None = None
    required: bool = True
    nullable: bool = True
    min_value: float | None = None
    max_value: float | None = None
    allowed_values: tuple[Any, ...] | None = None
    unique: bool = False

    def __post_init__(self) -> None:
        if self.ctype is not None and self.ctype not in ColumnType.ALL:
            raise SchemaError(f"unknown column type {self.ctype!r} in spec for {self.name!r}")

    def validate_column(self, column: Column) -> list["Violation"]:
        """Validate one column against this spec and return violations."""
        violations: list[Violation] = []
        if self.ctype is not None and column.ctype != self.ctype:
            violations.append(
                Violation(self.name, "type", f"expected {self.ctype}, found {column.ctype}")
            )
        mask = column.missing_mask()
        if not self.nullable and mask.any():
            violations.append(
                Violation(self.name, "nullability", f"{int(mask.sum())} missing cells in non-nullable column")
            )
        values = column.tolist()
        for index, value in enumerate(values):
            if is_missing_value(value):
                continue
            if column.is_numeric():
                if self.min_value is not None and value < self.min_value:
                    violations.append(
                        Violation(self.name, "range", f"row {index}: {value} < min {self.min_value}", row=index)
                    )
                if self.max_value is not None and value > self.max_value:
                    violations.append(
                        Violation(self.name, "range", f"row {index}: {value} > max {self.max_value}", row=index)
                    )
            if self.allowed_values is not None and value not in self.allowed_values:
                violations.append(
                    Violation(self.name, "domain", f"row {index}: {value!r} not in allowed domain", row=index)
                )
        if self.unique:
            seen: dict[Any, int] = {}
            for index, value in enumerate(values):
                if is_missing_value(value):
                    continue
                if value in seen:
                    violations.append(
                        Violation(
                            self.name,
                            "uniqueness",
                            f"row {index}: value {value!r} duplicates row {seen[value]}",
                            row=index,
                        )
                    )
                else:
                    seen[value] = index
        return violations


@dataclass(frozen=True)
class Violation:
    """A single schema violation found in a dataset."""

    column: str
    kind: str
    message: str
    row: int | None = None


@dataclass
class Schema:
    """A named collection of :class:`ColumnSpec` plus cross-column rules.

    ``row_rules`` are ``(name, callable)`` pairs: the callable receives a row
    dictionary and returns ``True`` when the row satisfies the rule.
    """

    name: str
    specs: list[ColumnSpec] = field(default_factory=list)
    row_rules: list[tuple[str, Any]] = field(default_factory=list)

    def spec_for(self, column_name: str) -> ColumnSpec | None:
        """Return the spec for ``column_name`` if one exists."""
        for spec in self.specs:
            if spec.name == column_name:
                return spec
        return None

    def add_spec(self, spec: ColumnSpec) -> "Schema":
        """Add a column spec in place and return ``self`` for chaining."""
        if self.spec_for(spec.name) is not None:
            raise SchemaError(f"schema {self.name!r} already has a spec for {spec.name!r}")
        self.specs.append(spec)
        return self

    def add_row_rule(self, name: str, rule) -> "Schema":
        """Add a cross-column row rule in place and return ``self``."""
        self.row_rules.append((name, rule))
        return self

    def validate(self, dataset: Dataset) -> list[Violation]:
        """Validate ``dataset`` and return every violation found."""
        violations: list[Violation] = []
        for spec in self.specs:
            if spec.name not in dataset:
                if spec.required:
                    violations.append(Violation(spec.name, "presence", "required column is missing"))
                continue
            violations.extend(spec.validate_column(dataset[spec.name]))
        for rule_name, rule in self.row_rules:
            for index, row in enumerate(dataset.iter_rows()):
                try:
                    ok = bool(rule(row))
                except Exception as exc:  # rule crashed on this row: count as violation
                    violations.append(
                        Violation("<row>", "rule-error", f"row {index}: rule {rule_name!r} raised {exc!r}", row=index)
                    )
                    continue
                if not ok:
                    violations.append(
                        Violation("<row>", "rule", f"row {index}: violates rule {rule_name!r}", row=index)
                    )
        return violations

    def is_valid(self, dataset: Dataset) -> bool:
        """Return ``True`` when the dataset has no violations."""
        return not self.validate(dataset)


def inferred_schema_name(dataset_name: str) -> str:
    """Default name :func:`infer_schema` gives the schema of one dataset."""
    return f"{dataset_name}-schema"


def infer_schema(dataset: Dataset, name: str | None = None, categorical_domains: bool = True) -> Schema:
    """Infer a permissive schema from an existing (assumed clean) dataset.

    Numeric columns get the observed min/max as bounds; categorical and
    boolean columns get the observed domain when ``categorical_domains`` is
    set.  The inferred schema is the "clean reference" used by the consistency
    criterion after data quality problems have been injected.
    """
    schema = Schema(name or inferred_schema_name(dataset.name))
    for column in dataset.columns:
        spec = ColumnSpec(name=column.name, ctype=column.ctype, nullable=column.n_missing() > 0)
        if column.is_numeric():
            present = [v for v in column.tolist() if not is_missing_value(v)]
            if present:
                spec.min_value = float(min(present))
                spec.max_value = float(max(present))
        elif categorical_domains and column.ctype in (ColumnType.CATEGORICAL, ColumnType.BOOLEAN):
            spec.allowed_values = tuple(column.distinct())
        schema.add_spec(spec)
    return schema
