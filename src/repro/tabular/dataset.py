"""Typed, column-oriented in-memory dataset.

The :class:`Dataset` is the exchange format used across the library: open
data sources (CSV/XML/HTML/JSON or Linked Open Data) are loaded into a
``Dataset``; data quality criteria are measured on a ``Dataset``; data quality
problems are injected into a ``Dataset``; mining algorithms consume a
``Dataset``.

Missing values are represented as ``None`` for non-numeric columns and
``float('nan')`` for numeric columns; :func:`is_missing_value` abstracts over
both.
"""

from __future__ import annotations

import copy as _copy
import math
import random
from collections import Counter
from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.exceptions import SchemaError


class ColumnType:
    """Enumeration of logical column types.

    ``NUMERIC``
        Continuous or integer-valued measurements, stored as ``float64``.
    ``CATEGORICAL``
        Discrete labels from a (small) finite domain.
    ``BOOLEAN``
        True/False flags; treated as a two-valued categorical.
    ``STRING``
        Free text (identifiers, descriptions); not used as mining features by
        default.
    ``DATETIME``
        ISO-8601 date or datetime strings; kept as text but recognised so the
        consistency criterion can validate their format.
    """

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    BOOLEAN = "boolean"
    STRING = "string"
    DATETIME = "datetime"

    ALL = (NUMERIC, CATEGORICAL, BOOLEAN, STRING, DATETIME)


class ColumnRole:
    """Enumeration of the role a column plays during mining."""

    FEATURE = "feature"
    TARGET = "target"
    IDENTIFIER = "identifier"
    METADATA = "metadata"

    ALL = (FEATURE, TARGET, IDENTIFIER, METADATA)


#: String tokens commonly used in open data files to denote a missing value.
MISSING_TOKENS = frozenset({"", "na", "n/a", "nan", "null", "none", "?", "-", "missing"})


def is_missing_value(value: Any) -> bool:
    """Return ``True`` when ``value`` represents a missing cell."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, np.floating) and np.isnan(value):
        return True
    return False


def _looks_numeric(value: Any) -> bool:
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float, np.integer, np.floating)):
        return True
    if isinstance(value, str):
        try:
            float(value)
        except ValueError:
            return False
        return True
    return False


def _looks_boolean(value: Any) -> bool:
    if isinstance(value, (bool, np.bool_)):
        return True
    if isinstance(value, str):
        return value.strip().lower() in {"true", "false", "yes", "no"}
    return False


def _looks_datetime(value: Any) -> bool:
    if not isinstance(value, str):
        return False
    text = value.strip()
    if len(text) < 8 or text.count("-") < 2:
        return False
    parts = text[:10].split("-")
    if len(parts) != 3:
        return False
    return all(part.isdigit() for part in parts)


def _infer_from_present(present: Sequence[Any], n_present: int) -> str:
    """The shared inference ladder over non-missing values.

    Every check depends only on the *distinct* values plus the total count
    of present cells, so callers may pass either the full multiset of
    present cells (``infer_column_type``) or just the distinct values with
    their summed count (``Column.from_distinct``) — the result is identical.
    """
    if not present:
        return ColumnType.STRING
    if all(_looks_boolean(v) for v in present):
        return ColumnType.BOOLEAN
    if all(_looks_numeric(v) for v in present):
        return ColumnType.NUMERIC
    if all(_looks_datetime(v) for v in present):
        return ColumnType.DATETIME
    distinct = {str(v) for v in present}
    if len(distinct) <= max(20, int(0.2 * n_present)):
        return ColumnType.CATEGORICAL
    return ColumnType.STRING


def infer_column_type(values: Iterable[Any]) -> str:
    """Infer the :class:`ColumnType` of a sequence of raw values.

    The inference looks only at non-missing values.  Order of preference is
    boolean → numeric → datetime → categorical/string (a column whose distinct
    ratio is high is considered free text rather than categorical).
    """
    present = [v for v in values if not is_missing_value(v)]
    return _infer_from_present(present, len(present))


def _coerce_value(value: Any, ctype: str) -> Any:
    """Coerce a raw cell to the canonical Python representation for ``ctype``."""
    if is_missing_value(value):
        return float("nan") if ctype == ColumnType.NUMERIC else None
    if ctype == ColumnType.NUMERIC:
        return float(value)
    if ctype == ColumnType.BOOLEAN:
        if isinstance(value, (bool, np.bool_)):
            return bool(value)
        return str(value).strip().lower() in {"true", "yes", "1"}
    return str(value) if not isinstance(value, str) else value


class Column:
    """A single named, typed column of a :class:`Dataset`.

    Parameters
    ----------
    name:
        Column name; must be unique within a dataset.
    values:
        Raw cell values.  They are coerced to the canonical representation of
        the (possibly inferred) column type.
    ctype:
        One of :class:`ColumnType`; inferred from the values when omitted.
    role:
        One of :class:`ColumnRole`; defaults to ``feature``.
    """

    __slots__ = ("name", "ctype", "role", "_values", "_missing_cache")

    def __init__(
        self,
        name: str,
        values: Iterable[Any],
        ctype: str | None = None,
        role: str = ColumnRole.FEATURE,
    ) -> None:
        if not name:
            raise SchemaError("column name must be a non-empty string")
        if role not in ColumnRole.ALL:
            raise SchemaError(f"unknown column role {role!r}")
        values = list(values)
        if ctype is None:
            ctype = infer_column_type(values)
        if ctype not in ColumnType.ALL:
            raise SchemaError(f"unknown column type {ctype!r}")
        self.name = name
        self.ctype = ctype
        self.role = role
        coerced = [_coerce_value(v, ctype) for v in values]
        if ctype == ColumnType.NUMERIC:
            self._values = np.asarray(coerced, dtype=float)
        else:
            self._values = np.asarray(coerced, dtype=object)
        self._missing_cache: np.ndarray | None = None

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return int(self._values.shape[0])

    def __iter__(self):
        return iter(self._values.tolist())

    def __getitem__(self, index: int) -> Any:
        return self._values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if (self.name, self.ctype, self.role) != (other.name, other.ctype, other.role):
            return False
        if len(self) != len(other):
            return False
        for a, b in zip(self._values.tolist(), other._values.tolist()):
            if is_missing_value(a) and is_missing_value(b):
                continue
            if a != b:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Column({self.name!r}, type={self.ctype}, role={self.role}, n={len(self)})"

    # -- accessors ----------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The underlying numpy array (float64 for numeric, object otherwise)."""
        return self._values

    def tolist(self) -> list[Any]:
        """Return the column as a plain Python list."""
        return self._values.tolist()

    def is_numeric(self) -> bool:
        return self.ctype == ColumnType.NUMERIC

    def missing_mask(self) -> np.ndarray:
        """Boolean mask that is ``True`` where the cell is missing.

        For object-dtype columns the per-cell scan is computed once and cached
        (column values are immutable by convention: every dataset operation
        returns new columns).  Callers must not mutate the returned array.
        """
        if self.is_numeric():
            return np.isnan(self._values)
        if self._missing_cache is None:
            self._missing_cache = np.asarray(
                [is_missing_value(v) for v in self._values.tolist()], dtype=bool
            )
        return self._missing_cache

    def n_missing(self) -> int:
        return int(self.missing_mask().sum())

    def non_missing(self) -> list[Any]:
        """Return the non-missing values, preserving order."""
        mask = self.missing_mask()
        if not mask.any():
            return self._values.tolist()
        return self._values[~mask].tolist()

    def distinct(self) -> list[Any]:
        """Return the distinct non-missing values in first-seen order."""
        seen: dict[Any, None] = {}
        for value in self.non_missing():
            seen.setdefault(value, None)
        return list(seen)

    def value_counts(self) -> dict[Any, int]:
        """Return a mapping value → frequency over non-missing cells."""
        return dict(Counter(self.non_missing()))

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_distinct(
        cls,
        name: str,
        distinct_values: Sequence[Any],
        inverse: "np.ndarray",
        role: str = ColumnRole.FEATURE,
    ) -> "Column":
        """Build the column whose cells are ``distinct_values[inverse]``.

        Equivalent to ``Column(name, [distinct_values[i] for i in inverse])``
        — same inferred type, same coerced cells — but the per-value Python
        work (missing checks, type sniffing, coercion) runs once per
        *distinct* value instead of once per cell.  Producers that already
        know each cell's distinct-value index (the LOD tabulation reads them
        off the interned object ids) use this to assemble columns in
        O(distinct) Python.  Every entry of ``distinct_values`` must occur in
        ``inverse``; otherwise unused entries could sway type inference.
        """
        if not name:
            raise SchemaError("column name must be a non-empty string")
        if role not in ColumnRole.ALL:
            raise SchemaError(f"unknown column role {role!r}")
        inverse = np.asarray(inverse, dtype=np.intp)
        counts = np.bincount(inverse, minlength=len(distinct_values))
        present = [value for value in distinct_values if not is_missing_value(value)]
        n_present = int(
            sum(int(counts[i]) for i, value in enumerate(distinct_values) if not is_missing_value(value))
        )
        ctype = _infer_from_present(present, n_present)
        coerced = [_coerce_value(value, ctype) for value in distinct_values]
        column = cls.__new__(cls)
        column.name = name
        column.ctype = ctype
        column.role = role
        if ctype == ColumnType.NUMERIC:
            column._values = np.asarray(coerced, dtype=float)[inverse]
        else:
            column._values = np.asarray(coerced, dtype=object)[inverse]
        column._missing_cache = None
        return column

    def copy(self) -> "Column":
        clone = Column.__new__(Column)
        clone.name = self.name
        clone.ctype = self.ctype
        clone.role = self.role
        clone._values = self._values.copy()
        # The values array is copied to allow independent mutation, so the
        # cached mask (which aliases this column's state) must not be carried.
        clone._missing_cache = None
        return clone

    def with_values(self, values: Iterable[Any]) -> "Column":
        """Return a new column with the same name/type/role and new values."""
        return Column(self.name, list(values), ctype=self.ctype, role=self.role)

    def take(self, indices: Sequence[int]) -> "Column":
        """Return a new column containing the rows at ``indices`` (in order)."""
        index_array = np.asarray(indices, dtype=int)
        clone = Column.__new__(Column)
        clone.name = self.name
        clone.ctype = self.ctype
        clone.role = self.role
        clone._values = self._values[index_array]
        clone._missing_cache = (
            self._missing_cache[index_array] if self._missing_cache is not None else None
        )
        return clone


class Dataset:
    """An ordered collection of equally long :class:`Column` objects.

    The dataset is row-consistent by construction: every column must have the
    same length, and column names must be unique.
    """

    def __init__(self, columns: Iterable[Column], name: str = "dataset") -> None:
        columns = list(columns)
        if not columns:
            raise SchemaError("a dataset needs at least one column")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaError(f"columns have inconsistent lengths: {sorted(lengths)}")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            duplicated = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {duplicated}")
        self.name = name
        self._columns: dict[str, Column] = {c.name: c for c in columns}

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Mapping[str, Any]],
        name: str = "dataset",
        ctypes: Mapping[str, str] | None = None,
        roles: Mapping[str, str] | None = None,
        column_order: Sequence[str] | None = None,
    ) -> "Dataset":
        """Build a dataset from a sequence of row dictionaries.

        Rows may omit keys; omitted cells become missing values.  Column order
        defaults to first-seen order across the rows.
        """
        if not rows:
            raise SchemaError("cannot build a dataset from zero rows")
        if column_order is None:
            order: list[str] = []
            for row in rows:
                for key in row:
                    if key not in order:
                        order.append(key)
        else:
            order = list(column_order)
        ctypes = dict(ctypes or {})
        roles = dict(roles or {})
        columns = []
        for key in order:
            values = [row.get(key) for row in rows]
            columns.append(
                Column(
                    key,
                    values,
                    ctype=ctypes.get(key),
                    role=roles.get(key, ColumnRole.FEATURE),
                )
            )
        return cls(columns, name=name)

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Sequence[Any]],
        name: str = "dataset",
        ctypes: Mapping[str, str] | None = None,
        roles: Mapping[str, str] | None = None,
    ) -> "Dataset":
        """Build a dataset from a mapping column name → list of values."""
        ctypes = dict(ctypes or {})
        roles = dict(roles or {})
        columns = [
            Column(key, list(values), ctype=ctypes.get(key), role=roles.get(key, ColumnRole.FEATURE))
            for key, values in data.items()
        ]
        return cls(columns, name=name)

    # -- basic protocol ------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return len(next(iter(self._columns.values())))

    @property
    def n_columns(self) -> int:
        return len(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_columns)

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    @property
    def columns(self) -> list[Column]:
        return list(self._columns.values())

    def __len__(self) -> int:
        return self.n_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"no column named {name!r} in dataset {self.name!r}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dataset):
            return NotImplemented
        if self.column_names != other.column_names:
            return False
        return all(self[n] == other[n] for n in self.column_names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dataset({self.name!r}, rows={self.n_rows}, columns={self.n_columns})"

    # -- row access ----------------------------------------------------------

    def row(self, index: int) -> dict[str, Any]:
        """Return row ``index`` as a mapping column name → value."""
        if not 0 <= index < self.n_rows:
            raise SchemaError(f"row index {index} out of range for {self.n_rows} rows")
        return {name: col[index] for name, col in self._columns.items()}

    def iter_rows(self) -> Iterable[dict[str, Any]]:
        """Iterate over rows as dictionaries."""
        for i in range(self.n_rows):
            yield self.row(i)

    def to_rows(self) -> list[dict[str, Any]]:
        """Materialise all rows as a list of dictionaries."""
        return list(self.iter_rows())

    def to_dict(self) -> dict[str, list[Any]]:
        """Return a mapping column name → list of values."""
        return {name: col.tolist() for name, col in self._columns.items()}

    # -- column manipulation ---------------------------------------------------

    def add_column(self, column: Column) -> "Dataset":
        """Return a new dataset with ``column`` appended."""
        if column.name in self._columns:
            raise SchemaError(f"column {column.name!r} already exists")
        if len(column) != self.n_rows:
            raise SchemaError(
                f"column {column.name!r} has {len(column)} rows, dataset has {self.n_rows}"
            )
        return Dataset(self.columns + [column], name=self.name)

    def drop_columns(self, names: Iterable[str]) -> "Dataset":
        """Return a new dataset without the listed columns."""
        drop = set(names)
        missing = drop - set(self._columns)
        if missing:
            raise SchemaError(f"cannot drop unknown columns: {sorted(missing)}")
        kept = [c for c in self.columns if c.name not in drop]
        if not kept:
            raise SchemaError("dropping these columns would leave an empty dataset")
        return Dataset(kept, name=self.name)

    def select_columns(self, names: Sequence[str]) -> "Dataset":
        """Return a new dataset with only the listed columns, in that order."""
        return Dataset([self[name] for name in names], name=self.name)

    def rename_column(self, old: str, new: str) -> "Dataset":
        """Return a new dataset with column ``old`` renamed to ``new``."""
        if new in self._columns and new != old:
            raise SchemaError(f"column {new!r} already exists")
        columns = []
        for col in self.columns:
            if col.name == old:
                renamed = col.copy()
                renamed.name = new
                columns.append(renamed)
            else:
                columns.append(col)
        if old not in self._columns:
            raise SchemaError(f"no column named {old!r}")
        return Dataset(columns, name=self.name)

    def replace_column(self, column: Column) -> "Dataset":
        """Return a new dataset where the column with the same name is replaced."""
        if column.name not in self._columns:
            raise SchemaError(f"no column named {column.name!r} to replace")
        if len(column) != self.n_rows:
            raise SchemaError("replacement column has a different number of rows")
        columns = [column if c.name == column.name else c for c in self.columns]
        return Dataset(columns, name=self.name)

    def set_role(self, name: str, role: str) -> "Dataset":
        """Return a new dataset with the role of column ``name`` changed."""
        if role not in ColumnRole.ALL:
            raise SchemaError(f"unknown column role {role!r}")
        target = self[name].copy()
        target.role = role
        return self.replace_column(target)

    def set_target(self, name: str) -> "Dataset":
        """Return a new dataset where ``name`` is the (single) target column."""
        columns = []
        for col in self.columns:
            clone = col.copy()
            if clone.name == name:
                clone.role = ColumnRole.TARGET
            elif clone.role == ColumnRole.TARGET:
                clone.role = ColumnRole.FEATURE
            columns.append(clone)
        if name not in self._columns:
            raise SchemaError(f"no column named {name!r}")
        return Dataset(columns, name=self.name)

    # -- role-based access ------------------------------------------------------

    def feature_columns(self) -> list[Column]:
        """Columns whose role is ``feature``."""
        return [c for c in self.columns if c.role == ColumnRole.FEATURE]

    def feature_names(self) -> list[str]:
        return [c.name for c in self.feature_columns()]

    def target_column(self) -> Column:
        """Return the single target column; raise if there is none or many."""
        targets = [c for c in self.columns if c.role == ColumnRole.TARGET]
        if len(targets) != 1:
            raise SchemaError(
                f"expected exactly one target column, found {len(targets)}; "
                "call Dataset.set_target() first"
            )
        return targets[0]

    def has_target(self) -> bool:
        return any(c.role == ColumnRole.TARGET for c in self.columns)

    # -- row manipulation ---------------------------------------------------------

    def take(self, indices: Sequence[int]) -> "Dataset":
        """Return a new dataset containing the rows at ``indices`` (in order)."""
        index_array = np.asarray(list(indices) if not isinstance(indices, np.ndarray) else indices, dtype=int)
        return Dataset([c.take(index_array) for c in self.columns], name=self.name)

    def head(self, n: int = 5) -> "Dataset":
        """Return the first ``n`` rows."""
        return self.take(range(min(n, self.n_rows)))

    def filter(self, predicate: Callable[[dict[str, Any]], bool]) -> "Dataset":
        """Return the rows for which ``predicate(row_dict)`` is truthy."""
        indices = [i for i, row in enumerate(self.iter_rows()) if predicate(row)]
        if not indices:
            raise SchemaError("filter removed every row")
        return self.take(indices)

    def sample(self, n: int, seed: int = 0, replace: bool = False) -> "Dataset":
        """Return a reproducible random sample of ``n`` rows."""
        rng = random.Random(seed)
        if replace:
            indices = [rng.randrange(self.n_rows) for _ in range(n)]
        else:
            if n > self.n_rows:
                raise SchemaError(f"cannot sample {n} rows without replacement from {self.n_rows}")
            indices = rng.sample(range(self.n_rows), n)
        return self.take(indices)

    def shuffle(self, seed: int = 0) -> "Dataset":
        """Return the dataset with rows in a reproducibly shuffled order."""
        rng = random.Random(seed)
        indices = list(range(self.n_rows))
        rng.shuffle(indices)
        return self.take(indices)

    def concat(self, other: "Dataset") -> "Dataset":
        """Append the rows of ``other`` (same columns required) to this dataset.

        When every column pair shares a ctype and this dataset already carries
        encoded views, the result's encoding is seeded by extending those views
        with ``other``'s encoded block (vocabulary-stable code extension, see
        :func:`repro.tabular.encoded.extend_encoding`) — bit-identical to a
        cold encode of the concatenation, without re-encoding existing rows.
        """
        if self.column_names != other.column_names:
            raise SchemaError("cannot concatenate datasets with different columns")
        columns = []
        same_ctypes = True
        for col in self.columns:
            other_col = other[col.name]
            if other_col.ctype == col.ctype:
                # Both sides already hold canonical values for this type, so the
                # underlying arrays can be joined directly without re-coercing
                # every cell through the Column constructor.
                merged = Column.__new__(Column)
                merged.name = col.name
                merged.ctype = col.ctype
                merged.role = col.role
                merged._values = np.concatenate([col.values, other_col.values])
                if not col.is_numeric() and col._missing_cache is not None:
                    merged._missing_cache = np.concatenate(
                        [col._missing_cache, other_col.missing_mask()]
                    )
                else:
                    merged._missing_cache = None
                columns.append(merged)
            else:
                same_ctypes = False
                values = col.tolist() + other_col.tolist()
                columns.append(Column(col.name, values, ctype=col.ctype, role=col.role))
        result = Dataset(columns, name=self.name)
        if same_ctypes:
            from repro.tabular.encoded import _CACHE_ATTR, encode_dataset, extend_encoding

            base_encoded = getattr(self, _CACHE_ATTR, None)
            if base_encoded is not None and base_encoded.dataset is self:
                extend_encoding(base_encoded, encode_dataset(other), result)
        return result

    def append_rows(self, rows: Sequence[dict[str, Any]], name: str | None = None) -> "Dataset":
        """Append row dictionaries, keeping this dataset's schema and encodings.

        The rows are coerced against this dataset's column types and roles
        (unknown keys or uncoercible cells raise
        :class:`~repro.exceptions.SchemaError`), then appended via
        :meth:`append_dataset` — so existing encoded views are extended, not
        recomputed.  An empty ``rows`` returns this dataset unchanged.
        """
        from repro.feeds import append_rows

        return append_rows(self, rows, name=name)

    def append_dataset(self, delta: "Dataset", name: str | None = None) -> "Dataset":
        """Append a schema-compatible delta dataset, extending cached encodings.

        ``delta`` must have the same column names and ctypes (roles follow
        this dataset).  Returns the merged dataset; when this dataset is
        already encoded the merged views are seeded in O(len(delta)) and stay
        bit-identical to a cold re-encode.
        """
        from repro.feeds import append_dataset

        return append_dataset(self, delta, name=name)

    def copy(self, name: str | None = None) -> "Dataset":
        """Return a deep copy (values included) of the dataset."""
        clone = Dataset([c.copy() for c in self.columns], name=name or self.name)
        return clone

    # -- numeric views -------------------------------------------------------------

    def numeric_matrix(self, columns: Sequence[str] | None = None) -> np.ndarray:
        """Return a ``(n_rows, k)`` float matrix of the selected numeric columns.

        Non-numeric columns are rejected; missing values stay as ``nan``.
        """
        if columns is None:
            columns = [c.name for c in self.columns if c.is_numeric()]
        mats = []
        for name in columns:
            col = self[name]
            if not col.is_numeric():
                raise SchemaError(f"column {name!r} is not numeric")
            mats.append(col.values.astype(float))
        if not mats:
            return np.empty((self.n_rows, 0), dtype=float)
        return np.column_stack(mats)

    # -- persistence ------------------------------------------------------------------

    def save(self, path) -> Any:
        """Write this dataset and its encoded views to a binary store file.

        The file (format: ``docs/store-format.md``) captures the raw columns
        *and* the encoded views the hot paths run on, so :meth:`open` can
        memory-map them back with near-zero startup cost.  Returns the path
        written.
        """
        from repro.store import save_dataset

        return save_dataset(self, path)

    @classmethod
    def open(cls, path, force_memory: bool = False, verify: bool = False) -> "Dataset":
        """Open a dataset store file as zero-copy memory-mapped views.

        The returned dataset skips encoding entirely: its
        :class:`~repro.tabular.encoded.EncodedDataset` cache is pre-seeded
        with the saved arrays, and every hot path is bit-identical to a cold
        in-memory encode of the same data.  The mapped views are read-only;
        mutating operations copy-on-write into memory.  ``force_memory=True``
        materialises all arrays into memory instead of mapping them;
        ``verify=True`` checksums every array section up front.
        """
        from repro.store import open_dataset

        return open_dataset(path, force_memory=force_memory, verify=verify)

    def close(self) -> None:
        """Release the memory-mapped store file backing this dataset, if any.

        Datasets returned by :meth:`open` hold the store's memory map (and
        its file descriptor) alive for their whole lifetime; ``close()``
        releases both so the ``.rps`` file can be replaced and the
        descriptor returned to the OS.  Afterwards the dataset — and every
        zero-copy view sliced from it — must no longer be used.  For
        in-memory datasets this is a no-op.
        """
        store_file = self.__dict__.pop("_store_file", None)
        if store_file is not None:
            store_file.close()

    def __getstate__(self) -> dict[str, Any]:
        """Pickle without the encoded-view cache or the store-file handle.

        The cached :class:`~repro.tabular.encoded.EncodedDataset` refuses
        pickling outright (its views must never cross a process boundary),
        and a :class:`~repro.store.format.StoreFile` would drag a whole
        memory map through the pipe; both rebuild lazily on the other
        side, so they are dropped here.  The attribute names are owned by
        ``repro.tabular.encoded`` / ``repro.store.reader`` — this module
        cannot import them without a cycle.
        """
        state = dict(self.__dict__)
        state.pop("_encoded_cache", None)
        state.pop("_store_file", None)
        return state

    # -- misc -----------------------------------------------------------------------

    def summary(self) -> dict[str, dict[str, Any]]:
        """Return a light-weight per-column summary (type, role, missing, distinct)."""
        out: dict[str, dict[str, Any]] = {}
        for col in self.columns:
            out[col.name] = {
                "type": col.ctype,
                "role": col.role,
                "n_missing": col.n_missing(),
                "n_distinct": len(col.distinct()),
            }
        return out

    def __deepcopy__(self, memo: dict) -> "Dataset":  # pragma: no cover - convenience
        return self.copy()


def _deep_copy_rows(rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Utility used by IO writers to avoid mutating caller-provided rows."""
    return _copy.deepcopy(rows)
