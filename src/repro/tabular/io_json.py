"""JSON (record-oriented) ingestion and export."""

from __future__ import annotations

import json
from collections.abc import Mapping
from pathlib import Path

from repro.exceptions import SchemaError
from repro.tabular.dataset import Dataset, is_missing_value


def read_json_records(
    source: str | Path,
    name: str | None = None,
    ctypes: Mapping[str, str] | None = None,
    roles: Mapping[str, str] | None = None,
) -> Dataset:
    """Read a JSON array of objects (from a path or a JSON string) into a dataset."""
    text: str
    inferred_name = "json"
    if isinstance(source, Path) or (isinstance(source, str) and not source.lstrip().startswith(("[", "{"))):
        path = Path(source)
        text = path.read_text(encoding="utf-8")
        inferred_name = path.stem
    else:
        text = str(source)
    payload = json.loads(text)
    if isinstance(payload, dict) and "records" in payload:
        payload = payload["records"]
    if not isinstance(payload, list) or not payload:
        raise SchemaError("JSON source must be a non-empty array of objects")
    if not all(isinstance(item, dict) for item in payload):
        raise SchemaError("every JSON record must be an object")
    return Dataset.from_rows(payload, name=name or inferred_name, ctypes=ctypes, roles=roles)


def write_json_records(dataset: Dataset, path: str | Path | None = None, indent: int = 2) -> str:
    """Serialise a dataset as a JSON array of objects; optionally write to disk."""

    def _clean(value):
        return None if is_missing_value(value) else value

    records = [{k: _clean(v) for k, v in row.items()} for row in dataset.iter_rows()]
    text = json.dumps(records, indent=indent, ensure_ascii=False, default=str)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
