"""Tabular data substrate: a typed, column-oriented dataset built on numpy.

Open data is mostly published as CSV, XML or HTML tables (paper, §1).  This
subpackage provides the in-memory representation those sources are loaded
into, plus the relational transforms and descriptive statistics that the data
quality and mining layers are built on.

The central classes are :class:`~repro.tabular.dataset.Column` and
:class:`~repro.tabular.dataset.Dataset`.
"""

from repro.tabular.dataset import Column, Dataset, ColumnType, ColumnRole
from repro.tabular.encoded import EncodedDataset, encode_dataset
from repro.tabular.schema import ColumnSpec, Schema, infer_schema
from repro.tabular.io_csv import read_csv, read_csv_text, write_csv, write_csv_text
from repro.tabular.io_json import read_json_records, write_json_records
from repro.tabular.io_xml import read_xml_records, write_xml_records
from repro.tabular.io_html import read_html_table, write_html_table
from repro.tabular import transforms, stats

__all__ = [
    "Column",
    "Dataset",
    "ColumnType",
    "ColumnRole",
    "EncodedDataset",
    "encode_dataset",
    "ColumnSpec",
    "Schema",
    "infer_schema",
    "read_csv",
    "read_csv_text",
    "write_csv",
    "write_csv_text",
    "read_json_records",
    "write_json_records",
    "read_xml_records",
    "write_xml_records",
    "read_html_table",
    "write_html_table",
    "transforms",
    "stats",
]
