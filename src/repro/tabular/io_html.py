"""HTML ``<table>`` ingestion and export.

The paper motivates OpenBI with open data shared "as HTML tables, without
paying attention in structure nor semantics" (§1).  This module scrapes the
first (or ``index``-th) table out of an HTML document using only the standard
library and turns it into a typed dataset.
"""

from __future__ import annotations

from collections.abc import Mapping
from html.parser import HTMLParser
from pathlib import Path

from repro.exceptions import SchemaError
from repro.tabular.dataset import Dataset, MISSING_TOKENS, is_missing_value


class _TableParser(HTMLParser):
    """Collect the cell text of every ``<table>`` in an HTML document."""

    def __init__(self) -> None:
        super().__init__()
        self.tables: list[list[list[str]]] = []
        self._in_table = False
        self._in_row = False
        self._in_cell = False
        self._current_table: list[list[str]] = []
        self._current_row: list[str] = []
        self._current_cell: list[str] = []

    def handle_starttag(self, tag: str, attrs) -> None:
        if tag == "table":
            self._in_table = True
            self._current_table = []
        elif tag == "tr" and self._in_table:
            self._in_row = True
            self._current_row = []
        elif tag in ("td", "th") and self._in_row:
            self._in_cell = True
            self._current_cell = []

    def handle_endtag(self, tag: str) -> None:
        if tag in ("td", "th") and self._in_cell:
            self._in_cell = False
            self._current_row.append("".join(self._current_cell).strip())
        elif tag == "tr" and self._in_row:
            self._in_row = False
            if self._current_row:
                self._current_table.append(self._current_row)
        elif tag == "table" and self._in_table:
            self._in_table = False
            if self._current_table:
                self.tables.append(self._current_table)

    def handle_data(self, data: str) -> None:
        if self._in_cell:
            self._current_cell.append(data)


def _normalise(cell: str) -> str | None:
    return None if cell.strip().lower() in MISSING_TOKENS else cell.strip()


def read_html_table(
    source: str | Path,
    name: str | None = None,
    index: int = 0,
    ctypes: Mapping[str, str] | None = None,
    roles: Mapping[str, str] | None = None,
) -> Dataset:
    """Parse the ``index``-th HTML table (path or HTML string) into a dataset."""
    inferred_name = "html"
    if isinstance(source, Path) or (isinstance(source, str) and "<" not in source):
        path = Path(source)
        text = path.read_text(encoding="utf-8")
        inferred_name = path.stem
    else:
        text = str(source)
    parser = _TableParser()
    parser.feed(text)
    if not parser.tables:
        raise SchemaError("no <table> element found in HTML source")
    if index >= len(parser.tables):
        raise SchemaError(f"requested table {index}, document only has {len(parser.tables)}")
    table = parser.tables[index]
    if len(table) < 2:
        raise SchemaError("HTML table needs a header row and at least one data row")
    header = [h.strip() for h in table[0]]
    records = []
    for raw in table[1:]:
        padded = list(raw) + [""] * (len(header) - len(raw))
        records.append({h: _normalise(c) for h, c in zip(header, padded)})
    return Dataset.from_rows(records, name=name or inferred_name, ctypes=ctypes, roles=roles, column_order=header)


def write_html_table(dataset: Dataset, path: str | Path | None = None, caption: str | None = None) -> str:
    """Serialise a dataset as a plain HTML table; optionally write to disk."""
    lines = ["<table>"]
    if caption:
        lines.append(f"  <caption>{caption}</caption>")
    lines.append("  <tr>" + "".join(f"<th>{name}</th>" for name in dataset.column_names) + "</tr>")
    for row in dataset.iter_rows():
        cells = []
        for name in dataset.column_names:
            value = row[name]
            if is_missing_value(value):
                cells.append("<td></td>")
            elif isinstance(value, float) and value.is_integer():
                cells.append(f"<td>{int(value)}</td>")
            else:
                cells.append(f"<td>{value}</td>")
        lines.append("  <tr>" + "".join(cells) + "</tr>")
    lines.append("</table>")
    text = "\n".join(lines)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
