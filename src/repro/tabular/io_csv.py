"""CSV ingestion and export.

Open data portals overwhelmingly publish CSV (paper, §1).  The reader performs
delimiter sniffing, missing-token normalisation and type inference so that a
raw civic CSV file becomes a typed :class:`~repro.tabular.dataset.Dataset` in
one call.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Mapping, Sequence
from pathlib import Path

from repro.exceptions import SchemaError
from repro.tabular.dataset import Dataset, MISSING_TOKENS, is_missing_value
from repro.tabular.sniff import sniff_delimiter

# Compatibility alias: the sniffer grew up in this module before the salvage
# tier and the chunked feed reader needed it too; it now lives in
# repro.tabular.sniff and existing imports keep working through this name.
_sniff_delimiter = sniff_delimiter


def _normalise_cell(cell: str | None) -> str | None:
    """Map the textual missing-value tokens used in open data to ``None``."""
    if cell is None:
        return None
    text = cell.strip()
    if text.lower() in MISSING_TOKENS:
        return None
    return text


def read_csv_text(
    text: str,
    name: str = "csv",
    delimiter: str | None = None,
    ctypes: Mapping[str, str] | None = None,
    roles: Mapping[str, str] | None = None,
) -> Dataset:
    """Parse CSV content given as a string into a :class:`Dataset`."""
    if not text.strip():
        raise SchemaError("empty CSV content")
    if delimiter is None:
        delimiter = _sniff_delimiter(text)
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    try:
        rows = list(reader)
    except csv.Error as exc:
        raise SchemaError(
            f"malformed CSV near line {reader.line_num}: {exc} "
            "(use repro.recovery.salvage_csv to repair damaged files)"
        ) from exc
    if len(rows) < 2:
        raise SchemaError("CSV must contain a header row and at least one data row")
    header = [h.strip() for h in rows[0]]
    if len(set(header)) != len(header):
        raise SchemaError(f"duplicate column names in CSV header: {header}")
    records = []
    for row_number, raw in enumerate(rows[1:], start=2):
        if not raw or all(not cell.strip() for cell in raw):
            continue
        if len(raw) > len(header):
            raise SchemaError(
                f"row {row_number} has {len(raw)} cells but the header has {len(header)}: "
                f"{raw!r} (use repro.recovery.salvage_csv to repair ragged files)"
            )
        padded = list(raw) + [None] * (len(header) - len(raw))
        records.append({h: _normalise_cell(c) for h, c in zip(header, padded)})
    if not records:
        raise SchemaError("CSV contains a header but no data rows")
    return Dataset.from_rows(records, name=name, ctypes=ctypes, roles=roles, column_order=header)


def read_csv(
    path: str | Path,
    name: str | None = None,
    delimiter: str | None = None,
    ctypes: Mapping[str, str] | None = None,
    roles: Mapping[str, str] | None = None,
    encoding: str = "utf-8",
) -> Dataset:
    """Read a CSV file from disk into a :class:`Dataset`."""
    path = Path(path)
    with open(path, "r", encoding=encoding, newline="") as handle:
        text = handle.read()
    return read_csv_text(text, name=name or path.stem, delimiter=delimiter, ctypes=ctypes, roles=roles)


def _format_cell(value) -> str:
    if is_missing_value(value):
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def write_csv(dataset: Dataset, path: str | Path, delimiter: str = ",", encoding: str = "utf-8") -> Path:
    """Write a dataset to a CSV file and return the path written."""
    path = Path(path)
    with open(path, "w", encoding=encoding, newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(dataset.column_names)
        for row in dataset.iter_rows():
            writer.writerow([_format_cell(row[name]) for name in dataset.column_names])
    return path


def write_csv_text(dataset: Dataset, delimiter: str = ",") -> str:
    """Serialise a dataset to a CSV string."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter)
    writer.writerow(dataset.column_names)
    for row in dataset.iter_rows():
        writer.writerow([_format_cell(row[name]) for name in dataset.column_names])
    return buffer.getvalue()


def read_csv_files(paths: Sequence[str | Path], name: str = "combined") -> Dataset:
    """Read and vertically concatenate several CSV files with identical headers."""
    if not paths:
        raise SchemaError("no CSV files given")
    datasets = [read_csv(p) for p in paths]
    combined = datasets[0]
    for extra in datasets[1:]:
        combined = combined.concat(extra)
    combined.name = name
    return combined
