"""Record-oriented XML ingestion and export.

Open data is frequently shared as flat XML (paper, §1): a root element whose
children are uniform "record" elements, each with one child element (or
attribute) per field.  This module reads that shape into a
:class:`~repro.tabular.dataset.Dataset` and writes datasets back out the same
way.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections.abc import Mapping
from pathlib import Path

from repro.exceptions import SchemaError
from repro.tabular.dataset import Dataset, MISSING_TOKENS, is_missing_value


def _cell_from_text(text: str | None) -> str | None:
    if text is None:
        return None
    stripped = text.strip()
    if stripped.lower() in MISSING_TOKENS:
        return None
    return stripped


def read_xml_records(
    source: str | Path,
    name: str | None = None,
    record_tag: str | None = None,
    ctypes: Mapping[str, str] | None = None,
    roles: Mapping[str, str] | None = None,
) -> Dataset:
    """Parse record-oriented XML (path or XML string) into a dataset.

    ``record_tag`` restricts which child elements of the root are treated as
    records; by default every direct child is a record.  Fields are taken from
    each record's child elements (tag → text) and attributes.
    """
    inferred_name = "xml"
    if isinstance(source, Path) or (isinstance(source, str) and not source.lstrip().startswith("<")):
        path = Path(source)
        text = path.read_text(encoding="utf-8")
        inferred_name = path.stem
    else:
        text = str(source)
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SchemaError(f"invalid XML: {exc}") from exc
    records = []
    for element in root:
        if record_tag is not None and element.tag != record_tag:
            continue
        row: dict[str, str | None] = {}
        for key, value in element.attrib.items():
            row[key] = _cell_from_text(value)
        for child in element:
            row[child.tag] = _cell_from_text(child.text)
        if row:
            records.append(row)
    if not records:
        raise SchemaError("XML source contains no record elements")
    return Dataset.from_rows(records, name=name or inferred_name, ctypes=ctypes, roles=roles)


def write_xml_records(
    dataset: Dataset,
    path: str | Path | None = None,
    root_tag: str = "records",
    record_tag: str = "record",
) -> str:
    """Serialise a dataset as record-oriented XML; optionally write to disk."""
    root = ET.Element(root_tag)
    for row in dataset.iter_rows():
        record = ET.SubElement(root, record_tag)
        for key, value in row.items():
            child = ET.SubElement(record, key)
            if not is_missing_value(value):
                if isinstance(value, float) and value.is_integer():
                    child.text = str(int(value))
                else:
                    child.text = str(value)
    ET.indent(root)
    text = ET.tostring(root, encoding="unicode")
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
