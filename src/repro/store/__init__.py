"""The persistence tier: a memory-mapped on-disk format for encoded data.

``repro.store`` serializes a dataset together with its encoded views
(:class:`~repro.tabular.encoded.EncodedDataset`) or a graph together with
its columnar snapshot (:class:`~repro.lod.triples.ColumnarTriples`) into a
single ``.rps`` file — magic, versioned header, checksummed section
directory, 64-byte-aligned little-endian payloads — and reopens it as
zero-copy read-only ``np.memmap`` views wired straight into the instance
caches the execution core consumes.  Opening therefore skips encoding
entirely and costs O(metadata), not O(cells); the views can exceed RAM.

The tier follows the library-wide two-tier protocol: everything computed on
a reopened (memmap) payload is bit-identical to a cold in-memory encode of
the same data, and ``force_memory=True`` on the open calls is the escape
hatch that materialises every array back into memory.  Corrupt or truncated
files fail with :class:`~repro.exceptions.StoreCorruptionError` naming the
offending section; salvageable damage can be routed through
:func:`repro.recovery.salvage_store`.

The byte-level layout is a normative, versioned contract — see
``docs/store-format.md``.
"""

from repro.store.format import FORMAT_VERSION, MAGIC, StoreFile
from repro.store.reader import (
    StoredColumn,
    StoredTripleStore,
    inspect_store,
    open_dataset,
    open_graph,
)
from repro.store.writer import save_dataset, save_graph

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "StoreFile",
    "StoredColumn",
    "StoredTripleStore",
    "inspect_store",
    "open_dataset",
    "open_graph",
    "save_dataset",
    "save_graph",
]
