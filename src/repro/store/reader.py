"""Open ``.rps`` store files as memory-mapped datasets and graphs.

Opening does no per-cell work: array sections become zero-copy read-only
:class:`numpy.memmap` views wired straight into the instance caches the
execution core already consumes (:class:`~repro.tabular.encoded.EncodedDataset`
for datasets, :class:`~repro.lod.triples.ColumnarTriples` for graphs), so a
reopened payload starts in microseconds regardless of size and every hot
path is bit-identical to a cold in-memory encode of the same data.

Two store-backed lazy types bridge the gap to the object tiers:

* :class:`StoredColumn` — a :class:`~repro.tabular.dataset.Column` whose
  Python object cells are materialised from the code array and level table
  only when something actually asks for them;
* :class:`StoredTripleStore` — a :class:`~repro.lod.triples.TripleStore`
  whose three dict indexes are replayed from the saved order arrays on
  first access, so reference-tier scans see the exact iteration order the
  live store had at save time.

``force_memory=True`` is the escape hatch back to the in-memory tier: every
array is copied out of the map (the two tiers must be bit-identical, which
the round-trip test suite enforces).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.exceptions import StoreError
from repro.lod.graph import Graph
from repro.lod.terms import BNode, IRI, Literal
from repro.lod.triples import ColumnarTriples, TripleStore
from repro.store.format import KIND_DATASET, KIND_GRAPH, KIND_NAMES, StoreFile
from repro.store.writer import (
    TERM_BNODE,
    TERM_IRI,
    TERM_LITERAL,
    VTAG_BOOL,
    VTAG_FLOAT,
    VTAG_INT,
    VTAG_STR,
)
from repro.tabular.dataset import Column, ColumnType, Dataset
from repro.tabular.encoded import encode_dataset


class StoredColumn(Column):
    """A non-numeric column backed by a store file's code array.

    Holds the int64 codes, the raw level table (``str`` levels, or ``bool``
    for BOOLEAN columns) and the memory-mapped missing mask; the object-cell
    array every :class:`~repro.tabular.dataset.Column` API is defined over
    is materialised lazily (``levels[code]``, ``None`` for ``-1``) the first
    time something reads it.  The encoded hot paths never do — their views
    are seeded from the store — so CV folds, group-bys and profiles run
    without ever paying the object materialisation.

    Mutating operations inherit the copy-on-write semantics of the plain
    column API: they read the cells through the ``_values`` property and
    build ordinary in-memory columns, leaving the map untouched.
    """

    __slots__ = ("_codes", "_levels", "_cells")

    @classmethod
    def _build(cls, name: str, ctype: str, role: str, codes: np.ndarray,
               levels: list, missing: np.ndarray | None) -> "StoredColumn":
        """Assemble a stored column without running ``Column.__init__``."""
        column = cls.__new__(cls)
        column.name = name
        column.ctype = ctype
        column.role = role
        column._codes = codes
        column._levels = levels
        column._cells = None
        column._missing_cache = missing
        return column

    @property
    def _values(self) -> np.ndarray:
        """The object-cell array, materialised on first access and cached."""
        cells = self._cells
        if cells is None:
            table = np.empty(len(self._levels) + 1, dtype=object)
            for i, level in enumerate(self._levels):
                table[i] = level
            table[-1] = None  # code -1 indexes here
            cells = table[np.asarray(self._codes)]
            self._cells = cells
        return cells

    def __len__(self) -> int:
        """Row count, read from the code array (no cell materialisation)."""
        return int(self._codes.shape[0])

    def take(self, indices) -> "StoredColumn":
        """Row subset that stays lazy: sliced codes, shared level table."""
        index_array = np.asarray(indices, dtype=int)
        return StoredColumn._build(
            self.name,
            self.ctype,
            self.role,
            np.asarray(self._codes)[index_array],
            self._levels,
            self._missing_cache[index_array] if self._missing_cache is not None else None,
        )


class StoredTripleStore(TripleStore):
    """A triple store whose dict indexes replay from saved order arrays.

    ``TripleStore`` keeps its three indexes as insertion-ordered nested
    dicts; this subclass starts with none of them built and replays each —
    independently, from its own saved ``(s, p, o)`` id arrays — on first
    access.  Replaying per index matters: the three indexes first see keys
    in different orders during live mutation, so rebuilding all three from
    the SPO arrays would change POS/OSP iteration order and break
    bit-identicality of reference-tier scans.

    Mutations force all three indexes to materialise first (a partially
    replayed store must not later replay an index from arrays that no
    longer reflect the dicts), then delegate to the plain implementation.
    """

    def __init__(self, terms: list, orders: dict, n_triples: int) -> None:
        """Wrap the decoded term table and the saved per-index id arrays."""
        self._terms = terms
        self._saved_orders = orders
        self._spo_index: dict | None = None
        self._pos_index: dict | None = None
        self._osp_index: dict | None = None
        self._size = n_triples
        self._columnar = None

    @property
    def _spo(self) -> dict:
        """The SPO dict index, replayed from the saved SPO arrays on first use."""
        if self._spo_index is None:
            self._spo_index = self._replay("spo")
        return self._spo_index

    @property
    def _pos(self) -> dict:
        """The POS dict index, replayed from the saved POS arrays on first use."""
        if self._pos_index is None:
            self._pos_index = self._replay("pos")
        return self._pos_index

    @property
    def _osp(self) -> dict:
        """The OSP dict index, replayed from the saved OSP arrays on first use."""
        if self._osp_index is None:
            self._osp_index = self._replay("osp")
        return self._osp_index

    def _replay(self, index: str) -> dict:
        """Insert the saved ``index`` rows into fresh nested dicts, in order."""
        terms = self._terms
        s_ids, p_ids, o_ids = self._saved_orders[index]
        if index == "spo":
            first, second, third = s_ids, p_ids, o_ids
        elif index == "pos":
            first, second, third = p_ids, o_ids, s_ids
        else:
            first, second, third = o_ids, s_ids, p_ids
        nested: dict = {}
        for a, b, c in zip(first.tolist(), second.tolist(), third.tolist()):
            nested.setdefault(terms[a], {}).setdefault(terms[b], {})[terms[c]] = None
        return nested

    def _materialize(self) -> None:
        """Force all three dict indexes before the first mutation."""
        if self._spo_index is None:
            self._spo_index = self._replay("spo")
        if self._pos_index is None:
            self._pos_index = self._replay("pos")
        if self._osp_index is None:
            self._osp_index = self._replay("osp")

    def add(self, triple) -> bool:
        """Add a triple (materialising the dict indexes first)."""
        self._materialize()
        return super().add(triple)

    def discard(self, triple) -> bool:
        """Remove a triple (materialising the dict indexes first)."""
        self._materialize()
        return super().discard(triple)


def _open_store(path: Path | str, expected_kind: int) -> StoreFile:
    """Open ``path`` and check its payload kind."""
    store_file = StoreFile(path)
    if store_file.kind != expected_kind:
        store_file.close()
        raise StoreError(
            f"store {path} holds a {KIND_NAMES[store_file.kind]} payload, "
            f"not a {KIND_NAMES[expected_kind]}"
        )
    return store_file


def _loader(force_memory: bool):
    """Identity for the memmap tier; a copying loader for the memory tier."""
    return (lambda view: np.array(view)) if force_memory else (lambda view: view)


def open_dataset(path: Path | str, force_memory: bool = False, verify: bool = False) -> Dataset:
    """Open a dataset store file; see :meth:`repro.tabular.dataset.Dataset.open`.

    Numeric columns alias the mapped ``float64`` sections directly; object
    columns become lazy :class:`StoredColumn` instances; and the dataset's
    :class:`~repro.tabular.encoded.EncodedDataset` cache is pre-seeded with
    the saved code arrays, vocabularies, numeric views and normalised level
    tables — so the encoding step every hot path starts with is skipped
    entirely.  ``verify=True`` additionally checksums every array section
    (metadata sections are always checked).
    """
    store_file = _open_store(path, KIND_DATASET)
    meta = store_file.json("meta")
    load = _loader(force_memory)
    columns: list[Column] = []
    seeds: list[tuple] = []
    for described in meta["columns"]:
        name, ctype, role, prefix = described["name"], described["ctype"], described["role"], described["prefix"]
        if ctype == ColumnType.NUMERIC:
            column = Column.__new__(Column)
            column.name = name
            column.ctype = ctype
            column.role = role
            column._values = load(store_file.array(f"{prefix}.val"))
            column._missing_cache = None
        else:
            codes = load(store_file.array(f"{prefix}.cod"))
            vocabulary = store_file.strings(f"{prefix}.lev")
            mask = load(store_file.array(f"{prefix}.msk"))
            levels = [text == "True" for text in vocabulary] if ctype == ColumnType.BOOLEAN else vocabulary
            column = StoredColumn._build(name, ctype, role, codes, levels, mask)
            seeds.append(
                (
                    name,
                    codes,
                    vocabulary,
                    load(store_file.array(f"{prefix}.num")),
                    load(store_file.array(f"{prefix}.nmk")),
                    store_file.strings(f"{prefix}.nrm"),
                )
            )
        columns.append(column)
    dataset = Dataset(columns, name=meta["name"])
    encoded = encode_dataset(dataset)
    for name, codes, vocabulary, num_values, num_missing, normalised in seeds:
        encoded.seed_categorical(name, codes, vocabulary)
        encoded.seed_numeric(name, num_values, num_missing)
        encoded.seed_normalised(name, normalised)
    if verify:
        store_file.verify()
    dataset._store_file = store_file  # keeps the map alive; provenance for tools
    return dataset


def _decode_terms(store_file: StoreFile) -> list:
    """Decode the interned term table back into RDF term objects.

    Terms were validated when first constructed, before saving, so decoding
    bypasses ``__post_init__`` validation with ``object.__new__`` — opening
    must not re-pay per-term regex checks.
    """
    kinds = store_file.array("term.knd")
    texts = store_file.strings("term.txt")
    vtags = store_file.array("term.vtg")
    datatype_ids = store_file.array("term.dty")
    language_ids = store_file.array("term.lng")
    datatypes = [_new_iri(value) for value in store_file.strings("dty.tab")]
    languages = store_file.strings("lng.tab")
    terms: list = []
    for kind, text, vtag, datatype_id, language_id in zip(
        kinds.tolist(), texts, vtags.tolist(), datatype_ids.tolist(), language_ids.tolist()
    ):
        if kind == TERM_IRI:
            terms.append(_new_iri(text))
        elif kind == TERM_BNODE:
            term = object.__new__(BNode)
            object.__setattr__(term, "identifier", text)
            terms.append(term)
        elif kind == TERM_LITERAL:
            if vtag == VTAG_STR:
                value = text
            elif vtag == VTAG_INT:
                value = int(text)
            elif vtag == VTAG_FLOAT:
                value = float(text)
            elif vtag == VTAG_BOOL:
                value = text == "true"
            else:
                raise StoreError(f"store {store_file.path}: unknown literal value tag {vtag}")
            term = object.__new__(Literal)
            object.__setattr__(term, "value", value)
            object.__setattr__(term, "datatype", datatypes[datatype_id] if datatype_id >= 0 else None)
            object.__setattr__(term, "language", languages[language_id] if language_id >= 0 else None)
            terms.append(term)
        else:
            raise StoreError(f"store {store_file.path}: unknown term kind {kind}")
    return terms


def _new_iri(value: str) -> IRI:
    """Construct an :class:`IRI` without re-running its validation regex."""
    iri = object.__new__(IRI)
    object.__setattr__(iri, "value", value)
    return iri


def open_graph(path: Path | str, force_memory: bool = False, verify: bool = False) -> Graph:
    """Open a graph store file; see :meth:`repro.lod.graph.Graph.open`.

    The columnar snapshot is rebuilt directly from the mapped id arrays and
    block tables (no interning pass), and the dict indexes stay unbuilt
    until a reference-tier scan or a mutation needs them — so the vectorized
    query path runs on a just-opened multi-million-triple graph without any
    per-triple Python.
    """
    store_file = _open_store(path, KIND_GRAPH)
    meta = store_file.json("meta")
    load = _loader(force_memory)
    terms = _decode_terms(store_file)
    term_ids: dict = {}
    for i, term in enumerate(terms):
        term_ids.setdefault(term, i)
    orders = {
        index: tuple(load(store_file.array(f"{index}.{position}")) for position in "spo")
        for index in ("spo", "pos", "osp")
    }
    blocks = {
        index: tuple(load(store_file.array(f"{index}.{suffix}")) for suffix in ("bk", "bs", "be"))
        for index in ("spo", "pos", "osp")
    }
    store = StoredTripleStore(terms, orders, int(meta["n_triples"]))
    snapshot = ColumnarTriples.__new__(ColumnarTriples)
    snapshot.terms = terms
    snapshot.term_ids = term_ids
    snapshot._store = store
    snapshot._orders = orders
    snapshot._blocks = blocks
    store._columnar = snapshot
    graph = Graph(meta["identifier"])
    graph.store = store
    for prefix, namespace in meta["prefixes"].items():
        graph.bind(prefix, namespace)
    graph._bnode_counter = int(meta.get("bnode_counter", 0))
    if verify:
        store_file.verify()
    graph._store_file = store_file  # keeps the map alive; provenance for tools
    return graph


def inspect_store(path: Path | str, verify: bool = False) -> dict:
    """Structural summary of a store file, as a JSON-serialisable dict.

    Returns the header fields plus one entry per section (kind, dtype,
    flags, offset, length, element count, checksum).  With ``verify=True``
    every payload is CRC-checked and per-section ``"status"`` fields report
    ``"ok"`` or the failure reason; structural damage below the
    header/directory level is reported the same way instead of raising.

    Inspection is self-contained: the store file is closed (its descriptor
    released) before the summary is returned.
    """
    with StoreFile(path, tolerant=True) as store_file:
        damage = dict(store_file.damage)
        if verify:
            damage = store_file.verify()
    sections = []
    for name, section in store_file.sections.items():
        sections.append(
            {
                "name": name,
                "kind": section.kind,
                "dtype": section.dtype,
                "derived": section.derived,
                "offset": section.offset,
                "length": section.length,
                "count": section.count,
                "crc32": section.crc,
                "status": damage.get(name, "ok" if verify else "not checked"),
            }
        )
    return {
        "path": str(store_file.path),
        "format_version": store_file.version,
        "payload": KIND_NAMES[store_file.kind],
        "file_length": store_file.file_length,
        "n_sections": len(store_file.sections),
        "damaged": sorted(damage),
        "sections": sections,
    }
