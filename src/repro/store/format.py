"""Byte-level layout of the ``.rps`` binary encoded-store format.

This module is the single place that knows how a store file is laid out on
disk; the writer (:mod:`repro.store.writer`) and reader
(:mod:`repro.store.reader`) both build on it.  The layout itself is a
normative, versioned contract documented in ``docs/store-format.md`` — keep
that spec and this module in lockstep.

A store file is::

    [ 64-byte header ][ section directory ][ padding ][ section payloads... ]

* the **header** starts with the 8-byte magic ``b"RPRSTOR1"`` and carries the
  format version, payload kind (dataset or graph), directory location and the
  total file length, protected by CRC-32 checksums;
* the **directory** is one fixed 64-byte entry per section (ascii name,
  section kind, element dtype, flags, payload offset/length, element count,
  payload CRC-32);
* every **section payload** starts at a 64-byte-aligned offset (so any
  ``float64``/``int64`` view of a memory map of the file is aligned) and is
  one of three kinds: a raw little-endian array, a string table, or a UTF-8
  JSON document.

Everything multi-byte is little-endian.  Array sections are *not*
checksummed at open time — that would page the whole file in and defeat the
near-zero-startup goal — but every metadata section (JSON, string tables)
is, and :meth:`StoreFile.verify` walks the bulk arrays on demand.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.exceptions import StoreCorruptionError, StoreError

#: First 8 bytes of every store file.  The trailing ``1`` is part of the
#: magic, not the version — the version lives in the header proper.
MAGIC = b"RPRSTOR1"

#: Format version written by this library.  Readers reject other majors.
FORMAT_VERSION = 1

#: Header ``kind`` values: what the file's payload is.
KIND_DATASET = 1
KIND_GRAPH = 2
KIND_NAMES = {KIND_DATASET: "dataset", KIND_GRAPH: "graph"}

#: Section payload alignment in bytes.  64 covers every numpy dtype we map
#: and matches a cache line, so memmap views never straddle element bounds.
ALIGNMENT = 64

#: Section kinds.
SECTION_ARRAY = 1
SECTION_STRINGS = 2
SECTION_JSON = 3

#: Element dtype codes for SECTION_ARRAY payloads.
DTYPE_NONE = 0
DTYPE_F8 = 1
DTYPE_I8 = 2
DTYPE_BOOL = 3
DTYPE_U1 = 4

#: dtype code -> numpy dtype string (all little-endian / endian-free).
DTYPE_STRINGS = {DTYPE_F8: "<f8", DTYPE_I8: "<i8", DTYPE_BOOL: "|b1", DTYPE_U1: "|u1"}

#: Section flag bit: the section is *derived* — rebuildable from the primary
#: sections of the same payload, so the salvage tier may drop and rebuild it.
FLAG_DERIVED = 1

#: Header: magic, version u16, kind u16, n_sections u32, directory offset
#: u64, directory length u64, file length u64, directory CRC u32, header CRC
#: u32 (CRC-32 of the 44 bytes preceding it).  Packed size 48, padded to 64.
HEADER_STRUCT = struct.Struct("<8sHHIQQQII")
HEADER_SIZE = 64

#: Directory entry: name 16s (ascii, NUL padded), section kind u16, dtype u8,
#: flags u8, reserved u32, payload offset u64, payload length u64, element
#: count u64, payload CRC u32.  Packed size 56, padded to 64.
ENTRY_STRUCT = struct.Struct("<16sHBBIQQQI")
ENTRY_SIZE = 64


def pad_to(offset: int, alignment: int = ALIGNMENT) -> int:
    """Round ``offset`` up to the next multiple of ``alignment``."""
    return (offset + alignment - 1) // alignment * alignment


def encode_string_table(strings: list[str]) -> bytes:
    """Serialize ``strings`` as a SECTION_STRINGS payload.

    Layout: ``u64 n`` followed by ``n`` ``u64`` cumulative end offsets into
    the UTF-8 blob that follows.  String ``i`` is ``blob[ends[i-1]:ends[i]]``
    (with ``ends[-1]`` read as 0), which keeps lookups O(1) and the payload
    free of escaping.
    """
    encoded = [s.encode("utf-8") for s in strings]
    ends = np.cumsum([len(b) for b in encoded], dtype=np.uint64) if encoded else np.empty(0, np.uint64)
    header = struct.pack("<Q", len(encoded))
    return header + ends.astype("<u8").tobytes() + b"".join(encoded)


def decode_string_table(payload: bytes | memoryview) -> list[str]:
    """Parse a SECTION_STRINGS payload back into a list of strings.

    Raises :class:`ValueError` on structural problems (truncated counts,
    offsets out of bounds, non-monotonic ends, invalid UTF-8); the caller
    wraps that into a :class:`~repro.exceptions.StoreCorruptionError` naming
    the section.
    """
    buf = bytes(payload)
    if len(buf) < 8:
        raise ValueError("string table shorter than its count field")
    (n,) = struct.unpack_from("<Q", buf, 0)
    table_end = 8 + 8 * n
    if n > len(buf) or table_end > len(buf):
        raise ValueError("string table count exceeds payload size")
    ends = np.frombuffer(buf, dtype="<u8", count=n, offset=8)
    blob = buf[table_end:]
    if n and (int(ends[-1]) > len(blob) or np.any(ends[1:] < ends[:-1])):
        raise ValueError("string table offsets out of bounds or non-monotonic")
    strings: list[str] = []
    start = 0
    for end in ends.tolist():
        strings.append(blob[start:end].decode("utf-8"))
        start = end
    return strings


class Section:
    """One parsed directory entry: where a section lives and what it holds."""

    __slots__ = ("name", "kind", "dtype", "flags", "offset", "length", "count", "crc")

    def __init__(self, name: str, kind: int, dtype: int, flags: int,
                 offset: int, length: int, count: int, crc: int) -> None:
        """Record the directory fields verbatim."""
        self.name = name
        self.kind = kind
        self.dtype = dtype
        self.flags = flags
        self.offset = offset
        self.length = length
        self.count = count
        self.crc = crc

    @property
    def derived(self) -> bool:
        """Whether the section is rebuildable from primaries (FLAG_DERIVED)."""
        return bool(self.flags & FLAG_DERIVED)

    def pack(self) -> bytes:
        """Serialize back into a 64-byte directory entry."""
        packed = ENTRY_STRUCT.pack(
            self.name.encode("ascii"), self.kind, self.dtype, self.flags, 0,
            self.offset, self.length, self.count, self.crc,
        )
        return packed.ljust(ENTRY_SIZE, b"\0")


def write_store(path: Path | str, kind: int,
                sections: list[tuple[str, int, int, int, bytes, int]]) -> Path:
    """Write a complete store file and return its path.

    ``sections`` is a list of ``(name, section_kind, dtype_code, flags,
    payload, element_count)`` tuples; payloads are laid out in order, each at
    the next 64-byte-aligned offset after the directory.
    """
    path = Path(path)
    for name, *_ in sections:
        raw = name.encode("ascii")
        if not raw or len(raw) > 16:
            raise StoreError(f"section name {name!r} must be 1-16 ascii bytes")
    directory_offset = HEADER_SIZE
    directory_length = ENTRY_SIZE * len(sections)
    cursor = pad_to(directory_offset + directory_length)
    entries: list[Section] = []
    placements: list[tuple[int, bytes]] = []
    for name, section_kind, dtype_code, flags, payload, count in sections:
        entries.append(Section(name, section_kind, dtype_code, flags,
                               cursor, len(payload), count, zlib.crc32(payload)))
        placements.append((cursor, payload))
        cursor = pad_to(cursor + len(payload))
    file_length = placements[-1][0] + len(placements[-1][1]) if placements else pad_to(
        directory_offset + directory_length
    )

    directory = b"".join(entry.pack() for entry in entries)
    directory_crc = zlib.crc32(directory)
    head = HEADER_STRUCT.pack(
        MAGIC, FORMAT_VERSION, kind, len(sections),
        directory_offset, directory_length, file_length, directory_crc, 0,
    )
    # The header CRC covers every header byte before the CRC field itself.
    head = head[:-4] + struct.pack("<I", zlib.crc32(head[:-4]))
    with open(path, "wb") as fh:
        fh.write(head.ljust(HEADER_SIZE, b"\0"))
        fh.write(directory)
        position = directory_offset + directory_length
        for offset, payload in placements:
            fh.write(b"\0" * (offset - position))
            fh.write(payload)
            position = offset + len(payload)
    return path


class StoreFile:
    """A validated, memory-mapped view of one store file.

    Opening parses and checksums the header and directory, bounds-checks
    every section against the real file size, and maps the file once as a
    read-only ``uint8`` :class:`numpy.memmap`.  Section payloads are exposed
    as zero-copy array views (:meth:`array`), decoded string tables
    (:meth:`strings`) or JSON documents (:meth:`json`); metadata sections
    are CRC-checked on access, bulk arrays only via :meth:`verify`.

    With ``tolerant=True`` structural damage below the header/directory
    level is *collected* (in :attr:`damage`) instead of raised, which is how
    the salvage tier (:func:`repro.recovery.salvage_store`) enumerates what
    survives in a partially corrupt file.

    The memory map holds one file descriptor for as long as the instance
    lives; :meth:`close` (or using the instance as a context manager)
    releases both the map and the descriptor.  Closing invalidates every
    zero-copy view previously handed out by :meth:`array` — like reading
    from a closed file, touching such a view afterwards is undefined — so
    close only once the views are done with.  Consumers that keep a store
    open behind a payload (``Dataset.open`` / ``Graph.open``) expose the
    release as ``Dataset.close()`` / ``Graph.close()``.
    """

    def __init__(self, path: Path | str, tolerant: bool = False) -> None:
        """Open, validate and map ``path``."""
        self.path = Path(path)
        self.tolerant = tolerant
        #: ``{section_name: reason}`` for sections found damaged in tolerant mode.
        self.damage: dict[str, str] = {}
        try:
            size = self.path.stat().st_size
        except OSError as exc:
            raise StoreError(f"cannot open store {self.path}: {exc}") from exc
        if size < HEADER_SIZE:
            raise StoreCorruptionError(self.path, "header", f"file is {size} bytes, shorter than the {HEADER_SIZE}-byte header")
        with open(self.path, "rb") as fh:
            head = fh.read(HEADER_SIZE)
        (magic, version, kind, n_sections, dir_offset, dir_length,
         file_length, dir_crc, head_crc) = HEADER_STRUCT.unpack_from(head)
        if magic != MAGIC:
            raise StoreCorruptionError(self.path, "header", f"bad magic {magic!r} (expected {MAGIC!r})")
        if zlib.crc32(head[: HEADER_STRUCT.size - 4]) != head_crc:
            raise StoreCorruptionError(self.path, "header", "header checksum mismatch")
        if version != FORMAT_VERSION:
            raise StoreError(f"store {self.path}: unsupported format version {version} (this library reads {FORMAT_VERSION})")
        if kind not in KIND_NAMES:
            raise StoreCorruptionError(self.path, "header", f"unknown payload kind {kind}")
        self.version = version
        self.kind = kind
        self.file_length = file_length
        if dir_length != ENTRY_SIZE * n_sections or dir_offset + dir_length > size:
            raise StoreCorruptionError(self.path, "directory", "directory does not fit the file")
        if file_length != size:
            # Truncated (or padded) file: the directory may still be intact,
            # so tolerant mode keeps going and bounds-checks each section.
            if not tolerant:
                raise StoreCorruptionError(
                    self.path, "header",
                    f"file length {size} does not match recorded length {file_length}",
                    salvageable=True,
                )
            self.damage["header"] = f"file length {size} != recorded {file_length}"
        self._mm = np.memmap(self.path, mode="r", dtype=np.uint8)
        directory = bytes(self._mm[dir_offset : dir_offset + dir_length])
        if zlib.crc32(directory) != dir_crc:
            raise StoreCorruptionError(self.path, "directory", "directory checksum mismatch")
        self.sections: dict[str, Section] = {}
        for i in range(n_sections):
            fields = ENTRY_STRUCT.unpack_from(directory, i * ENTRY_SIZE)
            raw_name, s_kind, dtype_code, flags, _reserved, offset, length, count, crc = fields
            name = raw_name.rstrip(b"\0").decode("ascii", errors="replace")
            section = Section(name, s_kind, dtype_code, flags, offset, length, count, crc)
            self.sections[name] = section
            problem = self._bounds_problem(section, size)
            if problem:
                if not tolerant:
                    raise StoreCorruptionError(self.path, name, problem, salvageable=True)
                self.damage[name] = problem

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has released the memory map."""
        return self._mm is None

    def close(self) -> None:
        """Release the memory map and its file descriptor (idempotent).

        The descriptor opened by ``np.memmap`` lives inside the underlying
        :class:`mmap.mmap` object and is only returned to the OS when that
        map is closed — without an explicit release it survives for the
        whole lifetime of the ``StoreFile`` (and of any ``Dataset``/
        ``Graph`` holding it), so a long-lived process that opens many
        stores, or a worker pool forking per dispatch, accumulates
        descriptors it can never drop.  After ``close()`` the header and
        directory metadata stay readable, but payload accessors
        (:meth:`array`, :meth:`strings`, :meth:`json`, :meth:`verify`)
        raise :class:`~repro.exceptions.StoreError`, and any zero-copy view
        created earlier is invalid.
        """
        mm = self._mm
        if mm is None:
            return
        self._mm = None
        inner = getattr(mm, "_mmap", None)
        del mm
        if inner is not None:
            try:
                inner.close()
            except BufferError:  # pragma: no cover - exported buffers pin the map
                pass

    def __enter__(self) -> "StoreFile":
        """Context-manager entry: the opened store itself."""
        return self

    def __exit__(self, *_exc_info) -> None:
        """Context-manager exit: release the map and descriptor."""
        self.close()

    def _map(self) -> np.memmap:
        """The live memory map, or a structured error after :meth:`close`."""
        if self._mm is None:
            raise StoreError(f"store {self.path} is closed")
        return self._mm

    @staticmethod
    def _bounds_problem(section: Section, size: int) -> str | None:
        """Return a description of a bounds/shape problem, or ``None`` if sane."""
        if section.offset % ALIGNMENT or section.offset + section.length > size:
            return f"payload [{section.offset}, {section.offset + section.length}) falls outside the {size}-byte file"
        if section.kind == SECTION_ARRAY:
            dtype = DTYPE_STRINGS.get(section.dtype)
            if dtype is None:
                return f"unknown array dtype code {section.dtype}"
            if section.count * np.dtype(dtype).itemsize != section.length:
                return f"element count {section.count} disagrees with payload length {section.length}"
        return None

    def _payload(self, name: str, check_crc: bool) -> memoryview:
        """Raw bytes of section ``name``, optionally CRC-verified."""
        section = self.section(name)
        if name in self.damage:
            raise StoreCorruptionError(self.path, name, self.damage[name], salvageable=True)
        view = self._map()[section.offset : section.offset + section.length]
        if check_crc and zlib.crc32(view) != section.crc:
            reason = "payload checksum mismatch"
            if self.tolerant:
                self.damage[name] = reason
            raise StoreCorruptionError(self.path, name, reason, salvageable=True)
        return memoryview(view)

    def section(self, name: str) -> Section:
        """The directory entry for ``name`` (raises if the section is absent)."""
        section = self.sections.get(name)
        if section is None:
            raise StoreCorruptionError(self.path, name, "section missing from directory", salvageable=True)
        return section

    def array(self, name: str, verify: bool = False) -> np.ndarray:
        """Zero-copy read-only array view of section ``name``.

        The view aliases the file's memory map; it is only CRC-verified when
        ``verify`` is true (checksumming would page the whole section in).
        """
        section = self.section(name)
        if section.kind != SECTION_ARRAY:
            raise StoreCorruptionError(self.path, name, "section is not an array", salvageable=True)
        payload = self._payload(name, check_crc=verify)
        return np.frombuffer(payload, dtype=DTYPE_STRINGS[section.dtype], count=section.count)

    def strings(self, name: str) -> list[str]:
        """Decode string-table section ``name`` (always CRC-verified)."""
        section = self.section(name)
        if section.kind != SECTION_STRINGS:
            raise StoreCorruptionError(self.path, name, "section is not a string table", salvageable=True)
        payload = self._payload(name, check_crc=True)
        try:
            return decode_string_table(payload)
        except (ValueError, UnicodeDecodeError) as exc:
            reason = f"malformed string table: {exc}"
            if self.tolerant:
                self.damage[name] = reason
            raise StoreCorruptionError(self.path, name, reason, salvageable=True) from exc

    def json(self, name: str):
        """Decode JSON section ``name`` (always CRC-verified)."""
        section = self.section(name)
        if section.kind != SECTION_JSON:
            raise StoreCorruptionError(self.path, name, "section is not a JSON document", salvageable=True)
        payload = self._payload(name, check_crc=True)
        try:
            return json.loads(bytes(payload).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise StoreCorruptionError(self.path, name, f"malformed JSON: {exc}", salvageable=True) from exc

    def verify(self) -> dict[str, str]:
        """CRC-check every section payload; return ``{name: reason}`` failures.

        In strict (non-tolerant) mode the first failure raises instead.
        """
        failures: dict[str, str] = dict(self.damage)
        for name, section in self.sections.items():
            if name in failures:
                continue
            view = self._map()[section.offset : section.offset + section.length]
            if zlib.crc32(view) != section.crc:
                reason = "payload checksum mismatch"
                if not self.tolerant:
                    raise StoreCorruptionError(self.path, name, reason, salvageable=True)
                failures[name] = reason
        if self.tolerant:
            self.damage.update(failures)
        return failures
