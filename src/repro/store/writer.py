"""Serialize datasets and graphs into ``.rps`` store files.

The writer saves not just the raw data but the *encoded views* the execution
core runs on — exactly as the in-memory encoder produced them — so that
reopening (:mod:`repro.store.reader`) can wire memory-mapped arrays straight
into the instance caches and stay bit-identical to a cold encode without
re-running any per-cell Python.  See ``docs/store-format.md`` for the byte
layout and :mod:`repro.store.format` for the framing primitives.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import StoreError
from repro.lod.graph import Graph
from repro.lod.terms import BNode, IRI, Literal
from repro.store.format import (
    DTYPE_BOOL,
    DTYPE_F8,
    DTYPE_I8,
    DTYPE_NONE,
    DTYPE_U1,
    FLAG_DERIVED,
    KIND_DATASET,
    KIND_GRAPH,
    SECTION_ARRAY,
    SECTION_JSON,
    SECTION_STRINGS,
    encode_string_table,
    write_store,
)
from repro.tabular.dataset import Dataset
from repro.tabular.encoded import encode_dataset

#: Literal value-type tags (the ``term.vtg`` array).
VTAG_NONE = 0
VTAG_STR = 1
VTAG_INT = 2
VTAG_FLOAT = 3
VTAG_BOOL = 4

#: Term kind codes (the ``term.knd`` array).
TERM_IRI = 0
TERM_BNODE = 1
TERM_LITERAL = 2


def _array_payload(values: np.ndarray, dtype: str) -> bytes:
    """Little-endian contiguous bytes of ``values`` as ``dtype``."""
    return np.ascontiguousarray(values, dtype=dtype).tobytes()


def _json_section(document: dict) -> tuple[str, int, int, int, bytes, int]:
    """The ``meta`` JSON section tuple for :func:`~repro.store.format.write_store`."""
    payload = json.dumps(document, ensure_ascii=False, sort_keys=True).encode("utf-8")
    return ("meta", SECTION_JSON, DTYPE_NONE, 0, payload, 0)


def save_dataset(dataset: Dataset, path: Path | str) -> Path:
    """Write ``dataset`` and its encoded views to a store file at ``path``.

    Every column contributes its primary representation (the ``float64``
    values for numeric columns; the int64 codes plus the level string table
    for object columns) and, for object columns, the derived views the
    in-memory encoder would otherwise recompute per process: the missing
    mask, the numeric view pair, and the normalised level table.  The
    derived sections are written from the encoder's own output at save time,
    which is what makes a reopened dataset bit-identical to a cold encode by
    construction.
    """
    encoded = encode_dataset(dataset)
    sections: list[tuple[str, int, int, int, bytes, int]] = []
    columns_meta: list[dict] = []
    for i, name in enumerate(dataset.column_names):
        column = dataset[name]
        prefix = f"c{i}"
        columns_meta.append({"name": name, "ctype": column.ctype, "role": column.role, "prefix": prefix})
        if column.is_numeric():
            values, _ = encoded.numeric_view(name)
            sections.append((f"{prefix}.val", SECTION_ARRAY, DTYPE_F8, 0, _array_payload(values, "<f8"), len(values)))
            continue
        codes, vocabulary, _ = encoded.codes_view(name)
        mask = column.missing_mask()
        num_values, num_missing = encoded.numeric_view(name)
        normalised = encoded.normalised_levels(name)
        sections += [
            (f"{prefix}.cod", SECTION_ARRAY, DTYPE_I8, 0, _array_payload(codes, "<i8"), len(codes)),
            (f"{prefix}.lev", SECTION_STRINGS, DTYPE_NONE, 0, encode_string_table(vocabulary), len(vocabulary)),
            (f"{prefix}.msk", SECTION_ARRAY, DTYPE_BOOL, FLAG_DERIVED, _array_payload(mask, "|b1"), len(mask)),
            (f"{prefix}.num", SECTION_ARRAY, DTYPE_F8, FLAG_DERIVED, _array_payload(num_values, "<f8"), len(num_values)),
            (f"{prefix}.nmk", SECTION_ARRAY, DTYPE_BOOL, FLAG_DERIVED, _array_payload(num_missing, "|b1"), len(num_missing)),
            (f"{prefix}.nrm", SECTION_STRINGS, DTYPE_NONE, FLAG_DERIVED, encode_string_table(normalised), len(normalised)),
        ]
    meta = {
        "payload": "dataset",
        "name": dataset.name,
        "n_rows": dataset.n_rows,
        "columns": columns_meta,
    }
    sections.insert(0, _json_section(meta))
    return write_store(path, KIND_DATASET, sections)


def _encode_terms(terms: list) -> tuple[list[tuple], list[str], list[str]]:
    """Encode the interned term table into parallel columns.

    Returns ``(sections, datatype_table, language_table)`` where sections
    are the five ``term.*`` section tuples.  Literal values are written as
    text with a value-type tag: ints as their decimal form, floats via
    ``repr`` (which round-trips every finite and non-finite value exactly),
    bools as ``true``/``false``.
    """
    n = len(terms)
    kinds = np.zeros(n, dtype=np.uint8)
    vtags = np.zeros(n, dtype=np.uint8)
    datatype_ids = np.full(n, -1, dtype=np.int64)
    language_ids = np.full(n, -1, dtype=np.int64)
    texts: list[str] = []
    datatype_table: list[str] = []
    datatype_index: dict[str, int] = {}
    language_table: list[str] = []
    language_index: dict[str, int] = {}
    for i, term in enumerate(terms):
        if isinstance(term, IRI):
            kinds[i] = TERM_IRI
            texts.append(term.value)
        elif isinstance(term, BNode):
            kinds[i] = TERM_BNODE
            texts.append(term.identifier)
        elif isinstance(term, Literal):
            kinds[i] = TERM_LITERAL
            value = term.value
            if isinstance(value, (bool, np.bool_)):
                vtags[i] = VTAG_BOOL
                texts.append("true" if value else "false")
            elif isinstance(value, (int, np.integer)):
                vtags[i] = VTAG_INT
                texts.append(str(int(value)))
            elif isinstance(value, (float, np.floating)):
                vtags[i] = VTAG_FLOAT
                texts.append(repr(float(value)))
            else:
                vtags[i] = VTAG_STR
                texts.append(value if isinstance(value, str) else str(value))
            if term.datatype is not None:
                code = datatype_index.get(term.datatype.value)
                if code is None:
                    code = len(datatype_table)
                    datatype_index[term.datatype.value] = code
                    datatype_table.append(term.datatype.value)
                datatype_ids[i] = code
            if term.language is not None:
                code = language_index.get(term.language)
                if code is None:
                    code = len(language_table)
                    language_index[term.language] = code
                    language_table.append(term.language)
                language_ids[i] = code
        else:
            raise StoreError(f"cannot serialize term of type {type(term).__name__}")
    sections = [
        ("term.knd", SECTION_ARRAY, DTYPE_U1, 0, kinds.tobytes(), n),
        ("term.txt", SECTION_STRINGS, DTYPE_NONE, 0, encode_string_table(texts), n),
        ("term.vtg", SECTION_ARRAY, DTYPE_U1, 0, vtags.tobytes(), n),
        ("term.dty", SECTION_ARRAY, DTYPE_I8, 0, _array_payload(datatype_ids, "<i8"), n),
        ("term.lng", SECTION_ARRAY, DTYPE_I8, 0, _array_payload(language_ids, "<i8"), n),
    ]
    return sections, datatype_table, language_table


def save_graph(graph: Graph, path: Path | str) -> Path:
    """Write ``graph`` and its columnar snapshot to a store file at ``path``.

    The snapshot's three orderings and block tables are forced before
    writing, so the file captures the exact row orders of the live store's
    dict indexes; reopening replays those arrays into identical dict
    indexes, keeping the reference tier (and therefore every query result
    order) bit-identical across the save/open boundary.  The POS/OSP
    orderings and all block tables are flagged derived: the salvage tier can
    rebuild a working store from the SPO arrays alone.
    """
    columnar = graph.store.columnar()
    sections: list[tuple[str, int, int, int, bytes, int]] = []
    term_sections, datatype_table, language_table = _encode_terms(columnar.terms)
    sections += term_sections
    sections += [
        ("dty.tab", SECTION_STRINGS, DTYPE_NONE, 0, encode_string_table(datatype_table), len(datatype_table)),
        ("lng.tab", SECTION_STRINGS, DTYPE_NONE, 0, encode_string_table(language_table), len(language_table)),
    ]
    for index in ("spo", "pos", "osp"):
        order = columnar.order(index)
        flags = 0 if index == "spo" else FLAG_DERIVED
        for position, ids in zip("spo", order):
            sections.append(
                (f"{index}.{position}", SECTION_ARRAY, DTYPE_I8, flags, _array_payload(ids, "<i8"), len(ids))
            )
        keys, starts, ends = columnar._block_table(index)
        for suffix, table in (("bk", keys), ("bs", starts), ("be", ends)):
            sections.append(
                (f"{index}.{suffix}", SECTION_ARRAY, DTYPE_I8, FLAG_DERIVED, _array_payload(table, "<i8"), len(table))
            )
    meta = {
        "payload": "graph",
        "identifier": graph.identifier,
        "prefixes": {prefix: namespace.prefix for prefix, namespace in graph.prefixes.items()},
        "n_triples": columnar.n_triples,
        "n_terms": len(columnar.terms),
        "bnode_counter": graph._bnode_counter,
    }
    sections.insert(0, _json_section(meta))
    return write_store(path, KIND_GRAPH, sections)
