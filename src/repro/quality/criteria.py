"""Criterion base class, measurement record and global registry."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import DataQualityError
from repro.tabular.dataset import Dataset
from repro.tabular.encoded import EncodedDataset


@dataclass(frozen=True)
class CriterionMeasure:
    """The outcome of measuring one criterion on one dataset.

    ``score`` is in ``[0, 1]`` with 1.0 meaning perfect quality; ``details``
    holds criterion-specific breakdowns (e.g. per-column completeness).
    """

    criterion: str
    score: float
    details: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise DataQualityError(
                f"criterion {self.criterion!r} produced a score outside [0, 1]: {self.score}"
            )


class Criterion(ABC):
    """A measurable data quality criterion.

    Subclasses define :attr:`name`, a short :attr:`description` and implement
    :meth:`measure`.  Construction arguments configure thresholds; measurement
    never mutates the dataset.

    Criteria follow the same two-tier execution protocol as the classifiers in
    :mod:`repro.mining.base`: :meth:`measure` is the mandatory row-at-a-time
    **reference implementation**, and :meth:`_measure_encoded` is an optional
    vectorized implementation over the cached encoded-matrix views of the
    dataset (:mod:`repro.tabular.encoded`).  :meth:`measure_encoded` — the
    entry point used by :func:`repro.quality.profile.measure_quality` — tries
    the encoded path first and transparently falls back to :meth:`measure`, so
    criteria opt into vectorization without changing the public API.
    """

    #: Registry key; subclasses override.
    name: str = "criterion"
    #: One-line human readable description used in reports.
    description: str = ""
    #: Set to ``True`` (on an instance, or on a class for a whole run) to pin
    #: measurement to the row-at-a-time reference path — the same escape hatch
    #: as ``_force_row_fit`` on the miners.  Used by the equivalence tests and
    #: the ``bench_perf_quality`` benchmark.
    _force_row_measure: bool = False

    @abstractmethod
    def measure(self, dataset: Dataset) -> CriterionMeasure:
        """Measure this criterion on ``dataset`` (row-at-a-time reference)."""

    def _measure_encoded(self, encoded: EncodedDataset) -> CriterionMeasure | None:
        """Vectorized measurement over an encoded dataset view.

        Return ``None`` (the default) to fall back to :meth:`measure`.
        Implementations must be **bit-identical** to the reference path: the
        same ``score`` float and an equal ``details`` dict (same keys, same
        key order, same plain-Python value types), which in practice means
        replicating the reference float arithmetic operation for operation —
        same summation order, same ``math`` vs ``numpy`` calls — rather than
        merely computing the same quantity.  Implementations must not mutate
        the shared encoded views, and must start by guarding with
        :meth:`_uses_reference_measure` so subclasses that override
        :meth:`measure` keep their customised behaviour.
        """
        return None

    def _uses_reference_measure(self, owner: type) -> bool:
        """True when this instance inherits ``owner``'s :meth:`measure`.

        An encoded path replicates one specific reference implementation; a
        subclass that overrides :meth:`measure` must get its own behaviour, so
        every :meth:`_measure_encoded` guards on this before engaging (the
        quality-side analogue of ``Classifier._uses_base_impl``).
        """
        return type(self).measure is owner.measure

    def measure_encoded(self, encoded: EncodedDataset) -> CriterionMeasure:
        """Measure against ``encoded``, preferring the vectorized path.

        This is how :func:`~repro.quality.profile.measure_quality` invokes
        criteria: the profile encodes the dataset once and hands the same
        :class:`~repro.tabular.encoded.EncodedDataset` to every criterion, so
        column encodings are shared across criteria (and with any mining that
        runs on the dataset afterwards, e.g. the advisor's cross-validation).
        """
        if not self._force_row_measure:
            result = self._measure_encoded(encoded)
            if result is not None:
                return result
        return self.measure(encoded.dataset)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


#: Global registry criterion name → criterion class.
CRITERIA_REGISTRY: dict[str, type[Criterion]] = {}


def register_criterion(cls: type[Criterion]) -> type[Criterion]:
    """Class decorator adding a criterion to :data:`CRITERIA_REGISTRY`."""
    if not issubclass(cls, Criterion):
        raise DataQualityError(f"{cls!r} is not a Criterion subclass")
    if not cls.name or cls.name == "criterion":
        raise DataQualityError(f"{cls.__name__} must define a unique name")
    CRITERIA_REGISTRY[cls.name] = cls
    return cls


def get_criterion(name: str, **kwargs: Any) -> Criterion:
    """Instantiate a registered criterion by name."""
    try:
        cls = CRITERIA_REGISTRY[name]
    except KeyError:
        raise DataQualityError(
            f"unknown data quality criterion {name!r}; known: {sorted(CRITERIA_REGISTRY)}"
        ) from None
    return cls(**kwargs)
