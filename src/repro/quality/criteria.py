"""Criterion base class, measurement record and global registry."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import DataQualityError
from repro.tabular.dataset import Dataset


@dataclass(frozen=True)
class CriterionMeasure:
    """The outcome of measuring one criterion on one dataset.

    ``score`` is in ``[0, 1]`` with 1.0 meaning perfect quality; ``details``
    holds criterion-specific breakdowns (e.g. per-column completeness).
    """

    criterion: str
    score: float
    details: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise DataQualityError(
                f"criterion {self.criterion!r} produced a score outside [0, 1]: {self.score}"
            )


class Criterion(ABC):
    """A measurable data quality criterion.

    Subclasses define :attr:`name`, a short :attr:`description` and implement
    :meth:`measure`.  Construction arguments configure thresholds; measurement
    never mutates the dataset.
    """

    #: Registry key; subclasses override.
    name: str = "criterion"
    #: One-line human readable description used in reports.
    description: str = ""

    @abstractmethod
    def measure(self, dataset: Dataset) -> CriterionMeasure:
        """Measure this criterion on ``dataset``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


#: Global registry criterion name → criterion class.
CRITERIA_REGISTRY: dict[str, type[Criterion]] = {}


def register_criterion(cls: type[Criterion]) -> type[Criterion]:
    """Class decorator adding a criterion to :data:`CRITERIA_REGISTRY`."""
    if not issubclass(cls, Criterion):
        raise DataQualityError(f"{cls!r} is not a Criterion subclass")
    if not cls.name or cls.name == "criterion":
        raise DataQualityError(f"{cls.__name__} must define a unique name")
    CRITERIA_REGISTRY[cls.name] = cls
    return cls


def get_criterion(name: str, **kwargs: Any) -> Criterion:
    """Instantiate a registered criterion by name."""
    try:
        cls = CRITERIA_REGISTRY[name]
    except KeyError:
        raise DataQualityError(
            f"unknown data quality criterion {name!r}; known: {sorted(CRITERIA_REGISTRY)}"
        ) from None
    return cls(**kwargs)
