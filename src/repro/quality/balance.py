"""Class balance of the mining target."""

from __future__ import annotations

import math

import numpy as np

from repro.quality.criteria import Criterion, CriterionMeasure, register_criterion
from repro.tabular.dataset import Column, Dataset
from repro.tabular.encoded import EncodedDataset


@register_criterion
class BalanceCriterion(Criterion):
    """Normalised entropy of the target class distribution.

    A perfectly balanced target scores 1.0; a single-class target scores 0.0.
    When the dataset has no target column the criterion falls back to the
    least balanced categorical column (so it stays usable for unsupervised
    sources).
    """

    name = "balance"
    description = "How evenly the target classes are represented."

    def measure(self, dataset: Dataset) -> CriterionMeasure:
        if dataset.has_target():
            column = dataset.target_column()
        else:
            candidates = [c for c in dataset.feature_columns() if not c.is_numeric()]
            if not candidates:
                return CriterionMeasure(self.name, 1.0, {"note": "no discrete column to assess"})
            column = min(candidates, key=lambda c: self._normalised_entropy(c.value_counts()))
        return self._build_measure(column, {str(k): v for k, v in column.value_counts().items()})

    def _measure_encoded(self, encoded: EncodedDataset) -> CriterionMeasure | None:
        if not self._uses_reference_measure(BalanceCriterion):
            return None
        dataset = encoded.dataset
        if dataset.has_target():
            column = dataset.target_column()
            if column.is_numeric():
                # A numeric target's value counts key on raw floats, where
                # -0.0 and 0.0 share one Counter bucket but two distinct
                # string codes; the reference path keeps that corner exact.
                return None
        else:
            candidates = [c for c in dataset.feature_columns() if not c.is_numeric()]
            if not candidates:
                return CriterionMeasure(self.name, 1.0, {"note": "no discrete column to assess"})
            column = min(
                candidates,
                key=lambda c: self._normalised_entropy(self._encoded_counts(encoded, c.name)),
            )
        return self._build_measure(column, self._encoded_counts(encoded, column.name))

    @staticmethod
    def _encoded_counts(encoded: EncodedDataset, name: str) -> dict[str, int]:
        """Level → frequency from the code view, in first-seen level order.

        The order matters: the entropy loop below must add per-class terms in
        the same order as the row path's insertion-ordered ``Counter``.
        """
        codes, vocabulary, _ = encoded.codes_view(name)
        if not vocabulary:
            return {}
        counts = np.bincount(codes[codes >= 0], minlength=len(vocabulary))
        return dict(zip(vocabulary, counts.tolist()))

    def _build_measure(self, column: Column, counts: dict[str, int]) -> CriterionMeasure:
        score = self._normalised_entropy(counts)
        total = sum(counts.values())
        majority = max(counts.values()) if counts else 0
        minority = min(counts.values()) if counts else 0
        return CriterionMeasure(
            criterion=self.name,
            score=score,
            details={
                "column": column.name,
                "class_counts": dict(counts),
                "majority_share": majority / total if total else 0.0,
                "imbalance_ratio": (majority / minority) if minority else float(total or 1),
            },
        )

    @staticmethod
    def _normalised_entropy(counts: dict) -> float:
        total = sum(counts.values())
        if total == 0 or len(counts) < 2:
            return 0.0
        entropy = 0.0
        for count in counts.values():
            if count == 0:
                continue
            p = count / total
            entropy -= p * math.log2(p)
        # Accumulated float noise can land a hair outside [0, 1] (e.g. a
        # near-uniform distribution over many classes summing to
        # 1.0000000000000004), which CriterionMeasure rejects; clamp.  Shared
        # by both measurement tiers, so bit-identity is preserved.
        return min(1.0, max(0.0, entropy / math.log2(len(counts))))
