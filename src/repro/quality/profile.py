"""Aggregating criterion measures into a data quality profile.

The :class:`DataQualityProfile` is the numeric fingerprint of a source's
quality.  It is what gets attached to the CWM-like common representation
(§3.2.2), stored alongside experiment results in the knowledge base, and
compared by the advisor when matching a new source against past experiments.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import DataQualityError
from repro.parallel import ViewHandle, effective_n_jobs, parallel_map
from repro.quality.criteria import Criterion, CriterionMeasure, get_criterion
from repro.tabular.dataset import Dataset
from repro.tabular.encoded import encode_dataset

#: Criteria measured by default, in a stable order (this is also the order of
#: :meth:`DataQualityProfile.as_vector`).
DEFAULT_CRITERIA: tuple[str, ...] = (
    "completeness",
    "accuracy",
    "consistency",
    "duplication",
    "correlation",
    "balance",
    "dimensionality",
    "outliers",
)


@dataclass
class DataQualityProfile:
    """Measured data quality criteria of one dataset."""

    dataset_name: str
    measures: dict[str, CriterionMeasure] = field(default_factory=dict)

    # -- access -----------------------------------------------------------------

    def score(self, criterion: str) -> float:
        """The [0, 1] score of one criterion (1.0 = perfect)."""
        try:
            return self.measures[criterion].score
        except KeyError:
            raise DataQualityError(f"criterion {criterion!r} was not measured") from None

    def criteria(self) -> list[str]:
        return list(self.measures)

    def as_dict(self) -> dict[str, float]:
        """Mapping criterion → score."""
        return {name: measure.score for name, measure in self.measures.items()}

    def as_vector(self, criteria: Sequence[str] | None = None) -> np.ndarray:
        """Scores as a vector in a stable criterion order (for distance computations)."""
        names = list(criteria) if criteria is not None else [c for c in DEFAULT_CRITERIA if c in self.measures]
        return np.asarray([self.score(name) for name in names], dtype=float)

    def details(self, criterion: str) -> dict[str, Any]:
        """Criterion-specific breakdown recorded during measurement."""
        try:
            return dict(self.measures[criterion].details)
        except KeyError:
            raise DataQualityError(f"criterion {criterion!r} was not measured") from None

    def overall(self, weights: Mapping[str, float] | None = None) -> float:
        """Weighted mean quality over all measured criteria."""
        if not self.measures:
            raise DataQualityError("profile has no measures")
        if weights is None:
            return float(np.mean([m.score for m in self.measures.values()]))
        total = 0.0
        weight_sum = 0.0
        for name, measure in self.measures.items():
            weight = float(weights.get(name, 0.0))
            total += weight * measure.score
            weight_sum += weight
        if weight_sum == 0:
            raise DataQualityError("weights sum to zero over the measured criteria")
        return total / weight_sum

    def worst_criteria(self, k: int = 3) -> list[tuple[str, float]]:
        """The ``k`` criteria with the lowest scores (the main quality problems)."""
        ranked = sorted(self.as_dict().items(), key=lambda kv: kv[1])
        return ranked[:k]

    def distance(self, other: "DataQualityProfile", criteria: Sequence[str] | None = None, weights: Mapping[str, float] | None = None) -> float:
        """Weighted Euclidean distance between two profiles over shared criteria."""
        if criteria is None:
            criteria = [c for c in DEFAULT_CRITERIA if c in self.measures and c in other.measures]
            if not criteria:
                criteria = sorted(set(self.measures) & set(other.measures))
        if not criteria:
            raise DataQualityError("profiles share no criteria to compare")
        total = 0.0
        for name in criteria:
            weight = float(weights.get(name, 1.0)) if weights else 1.0
            diff = self.score(name) - other.score(name)
            total += weight * diff * diff
        return float(np.sqrt(total))

    # -- serialisation ---------------------------------------------------------------

    def to_json_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (scores and details)."""
        return {
            "dataset": self.dataset_name,
            "measures": {
                name: {"score": measure.score, "details": _jsonable(measure.details)}
                for name, measure in self.measures.items()
            },
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "DataQualityProfile":
        measures = {
            name: CriterionMeasure(criterion=name, score=float(entry["score"]), details=dict(entry.get("details", {})))
            for name, entry in payload.get("measures", {}).items()
        }
        return cls(dataset_name=str(payload.get("dataset", "unknown")), measures=measures)


def _jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (np.floating, np.integer)):
        return float(value)
    return value


def _measure_criterion(context: dict[str, Any], index: int) -> CriterionMeasure:
    """Measure one criterion over the shared encoded views (both tiers' unit)."""
    encoded = encode_dataset(context["view"].resolve())
    return context["criteria"][index].measure_encoded(encoded)


def measure_quality(
    dataset: Dataset,
    criteria: Sequence[str | Criterion] | None = None,
    n_jobs: int | None = None,
    **criterion_kwargs: Mapping[str, Any],
) -> DataQualityProfile:
    """Measure a dataset against a set of criteria and return its profile.

    ``criteria`` may mix registered criterion names and already constructed
    :class:`~repro.quality.criteria.Criterion` instances; per-criterion
    keyword arguments can be passed as ``criterion_kwargs[name] = {...}``.

    The dataset is encoded **once** (via the instance cache of
    :func:`~repro.tabular.encoded.encode_dataset`) and the same
    :class:`~repro.tabular.encoded.EncodedDataset` views are shared by every
    criterion — and by whatever mining runs on the same dataset instance
    afterwards, e.g. the cross-validation following the advisor's advice.
    Criteria with ``_force_row_measure`` set take their row-at-a-time
    reference path; both paths are bit-identical.  ``n_jobs`` fans the
    criteria over a worker pool (see :mod:`repro.parallel`); measures are
    merged back in criterion order, so the profile is bit-identical to the
    sequential run at any worker count.
    """
    selected: list[Criterion] = []
    for item in criteria if criteria is not None else DEFAULT_CRITERIA:
        if isinstance(item, Criterion):
            selected.append(item)
        else:
            kwargs = dict(criterion_kwargs.get(item, {})) if criterion_kwargs else {}
            selected.append(get_criterion(str(item), **kwargs))
    encode_dataset(dataset)  # seed the instance cache shared with workers
    context = {"view": ViewHandle(dataset), "criteria": selected}
    n_workers = effective_n_jobs(n_jobs)
    measures = None
    if n_workers > 1 and len(selected) > 1:
        measures = parallel_map(
            _measure_criterion,
            len(selected),
            context=context,
            n_jobs=n_workers,
            error_cls=DataQualityError,
        )
    if measures is None:
        measures = [_measure_criterion(context, i) for i in range(len(selected))]
    profile = DataQualityProfile(dataset_name=dataset.name)
    for criterion, measure in zip(selected, measures):
        profile.measures[criterion.name] = measure
    return profile
