"""Accuracy / noise: how much of the data looks corrupted.

Without ground truth, accuracy is estimated from internal evidence:
numeric cells far outside the robust range of their column (beyond
``iqr_factor`` interquartile ranges) and categorical values that are rare
spelling variants of a dominant level (case/whitespace variants) are counted
as suspected errors.  A clean reference :class:`~repro.tabular.schema.Schema`
can be supplied to count out-of-domain values exactly instead.
"""

from __future__ import annotations

import numpy as np

from repro.lod import linker
from repro.quality.criteria import Criterion, CriterionMeasure, register_criterion
from repro.tabular.dataset import ColumnRole, ColumnType, Dataset
from repro.tabular.encoded import EncodedDataset
from repro.tabular.schema import Schema


@register_criterion
class AccuracyCriterion(Criterion):
    """Estimated fraction of cells that are *not* suspected errors."""

    name = "accuracy"
    description = "Estimated fraction of cells free of noise/corruption."

    def __init__(self, iqr_factor: float = 3.0, schema: Schema | None = None) -> None:
        self.iqr_factor = iqr_factor
        self.schema = schema

    def measure(self, dataset: Dataset) -> CriterionMeasure:
        columns = [c for c in dataset.columns if c.role in (ColumnRole.FEATURE, ColumnRole.TARGET)]
        if not columns:
            columns = dataset.columns
        suspected = 0
        checked = 0
        per_column: dict[str, float] = {}
        for column in columns:
            column_suspected = 0
            values = column.non_missing()
            if not values:
                per_column[column.name] = 1.0
                continue
            spec = self.schema.spec_for(column.name) if self.schema is not None else None
            if column.is_numeric():
                array = np.asarray([float(v) for v in values])
                if spec is not None and (spec.min_value is not None or spec.max_value is not None):
                    low = spec.min_value if spec.min_value is not None else -np.inf
                    high = spec.max_value if spec.max_value is not None else np.inf
                else:
                    q1, q3 = np.percentile(array, [25, 75])
                    iqr = q3 - q1
                    spread = iqr if iqr > 0 else (array.std() or 1.0)
                    low = q1 - self.iqr_factor * spread
                    high = q3 + self.iqr_factor * spread
                column_suspected = int(((array < low) | (array > high)).sum())
            elif column.ctype in (ColumnType.CATEGORICAL, ColumnType.BOOLEAN, ColumnType.STRING):
                if spec is not None and spec.allowed_values is not None:
                    allowed = set(spec.allowed_values)
                    column_suspected = sum(1 for v in values if v not in allowed)
                else:
                    column_suspected = self._spelling_variants(values)
            checked += len(values)
            suspected += column_suspected
            per_column[column.name] = 1.0 - (column_suspected / len(values))
        score = 1.0 - (suspected / checked if checked else 0.0)
        return CriterionMeasure(
            criterion=self.name,
            score=max(min(score, 1.0), 0.0),
            details={"per_column": per_column, "n_suspected_errors": suspected, "n_checked_cells": checked},
        )

    def _measure_encoded(self, encoded: EncodedDataset) -> CriterionMeasure | None:
        if not self._uses_reference_measure(AccuracyCriterion):
            return None
        if self.schema is not None:
            # Schema domains compare raw cell values; the encoded views only
            # hold their string forms, so the reference path stays in charge.
            return None
        dataset = encoded.dataset
        columns = [c for c in dataset.columns if c.role in (ColumnRole.FEATURE, ColumnRole.TARGET)]
        if not columns:
            columns = dataset.columns
        suspected = 0
        checked = 0
        per_column: dict[str, float] = {}
        for column in columns:
            column_suspected = 0
            if column.is_numeric():
                values, missing = encoded.numeric_view(column.name)
                present = values[~missing]
                n_present = int(present.size)
                if n_present == 0:
                    per_column[column.name] = 1.0
                    continue
                q1, q3 = np.percentile(present, [25, 75])
                iqr = q3 - q1
                spread = iqr if iqr > 0 else (present.std() or 1.0)
                low = q1 - self.iqr_factor * spread
                high = q3 + self.iqr_factor * spread
                column_suspected = int(((present < low) | (present > high)).sum())
            else:
                codes, vocabulary, _ = encoded.codes_view(column.name)
                counts = np.bincount(codes[codes >= 0], minlength=len(vocabulary)) if vocabulary else np.zeros(0, dtype=np.int64)
                n_present = int(counts.sum())
                if n_present == 0:
                    per_column[column.name] = 1.0
                    continue
                if column.ctype in (ColumnType.CATEGORICAL, ColumnType.BOOLEAN, ColumnType.STRING):
                    column_suspected = self._spelling_variants_from_counts(
                        vocabulary,
                        counts.tolist(),
                        encoded.normalised_levels(column.name),
                    )
            checked += n_present
            suspected += column_suspected
            per_column[column.name] = 1.0 - (column_suspected / n_present)
        score = 1.0 - (suspected / checked if checked else 0.0)
        return CriterionMeasure(
            criterion=self.name,
            score=max(min(score, 1.0), 0.0),
            details={"per_column": per_column, "n_suspected_errors": suspected, "n_checked_cells": checked},
        )

    @staticmethod
    def _spelling_variants(values: list) -> int:
        """Count values that normalise onto a more frequent differently-spelled value."""
        counts: dict[str, int] = {}
        for value in values:
            counts[str(value)] = counts.get(str(value), 0) + 1
        return AccuracyCriterion._spelling_variants_from_counts(
            list(counts),
            list(counts.values()),
            [linker.normalise_string(raw) for raw in counts],
        )

    @staticmethod
    def _spelling_variants_from_counts(
        levels: list[str], level_counts: list[int], normalised: list[str]
    ) -> int:
        """Shared variant-counting core over a vocabulary and its frequencies.

        ``levels`` must be in first-seen order (which is exactly what both the
        row path's insertion-ordered counting dict and the encoded vocabulary
        produce), so the dominant spelling resolves ties identically on both
        paths.
        """
        counts = dict(zip(levels, level_counts))
        by_normalised: dict[str, list[str]] = {}
        for raw, key in zip(levels, normalised):
            by_normalised.setdefault(key, []).append(raw)
        suspected = 0
        for variants in by_normalised.values():
            if len(variants) < 2:
                continue
            dominant = max(variants, key=lambda v: counts[v])
            suspected += sum(counts[v] for v in variants if v != dominant)
        return suspected
