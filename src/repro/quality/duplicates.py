"""Duplication: repeated records in the data.

The related-work section of the paper lists duplicate detection and
elimination as a classic first-phase data quality problem.  The criterion
counts exact duplicate rows and, optionally, near-duplicates whose string
cells differ only by normalisation (case, accents, whitespace).

The encoded path replaces the per-row key tuples with per-column ``int64``
key-code arrays over the shared encoded views — two cells get equal codes
exactly when their row-path keys would compare equal — and counts duplicates
by hashing whole code rows at once.
"""

from __future__ import annotations

import numpy as np

from repro.lod.linker import normalise_string
from repro.quality.criteria import Criterion, CriterionMeasure, register_criterion
from repro.tabular.dataset import ColumnRole, ColumnType, Dataset, is_missing_value
from repro.tabular.encoded import EncodedDataset, merge_missing_level

#: Column types whose canonical cell representation is ``str`` (the types the
#: fuzzy pass normalises; booleans stay raw ``bool`` cells on the row path).
_STRING_CTYPES = (ColumnType.CATEGORICAL, ColumnType.STRING, ColumnType.DATETIME)


@register_criterion
class DuplicationCriterion(Criterion):
    """1.0 minus the fraction of rows that duplicate an earlier row."""

    name = "duplication"
    description = "Fraction of rows that are unique (not duplicates of earlier rows)."

    def __init__(self, fuzzy: bool = True, ignore_identifier: bool = True) -> None:
        self.fuzzy = fuzzy
        self.ignore_identifier = ignore_identifier

    def _key_columns(self, dataset: Dataset) -> list[str]:
        columns = [
            c.name
            for c in dataset.columns
            if not (self.ignore_identifier and c.role == ColumnRole.IDENTIFIER)
        ]
        return columns or dataset.column_names

    def _row_key(self, row: dict, columns: list[str], fuzzy: bool) -> tuple:
        key = []
        for name in columns:
            value = row[name]
            if is_missing_value(value):
                key.append("<missing>")
            elif fuzzy and isinstance(value, str):
                key.append(normalise_string(value))
            elif isinstance(value, float):
                key.append(round(value, 6))
            else:
                key.append(value)
        return tuple(key)

    def measure(self, dataset: Dataset) -> CriterionMeasure:
        columns = self._key_columns(dataset)
        exact_seen: set[tuple] = set()
        fuzzy_seen: set[tuple] = set()
        exact_duplicates = 0
        fuzzy_duplicates = 0
        for row in dataset.iter_rows():
            exact_key = self._row_key(row, columns, fuzzy=False)
            if exact_key in exact_seen:
                exact_duplicates += 1
            else:
                exact_seen.add(exact_key)
            if self.fuzzy:
                fuzzy_key = self._row_key(row, columns, fuzzy=True)
                if fuzzy_key in fuzzy_seen:
                    fuzzy_duplicates += 1
                else:
                    fuzzy_seen.add(fuzzy_key)
        return self._build_measure(dataset.n_rows, exact_duplicates, fuzzy_duplicates)

    def _measure_encoded(self, encoded: EncodedDataset) -> CriterionMeasure | None:
        if not self._uses_reference_measure(DuplicationCriterion):
            return None
        dataset = encoded.dataset
        columns = self._key_columns(dataset)
        n = dataset.n_rows
        if n == 0:
            return self._build_measure(0, 0, 0)
        exact_codes: list[np.ndarray] = []
        fuzzy_codes: list[np.ndarray] = []
        for name in columns:
            column = dataset[name]
            if column.is_numeric():
                codes = self._numeric_key_codes(encoded, name)
                exact_codes.append(codes)
                fuzzy_codes.append(codes)
                continue
            raw_codes, vocabulary, _ = encoded.codes_view(name)
            # Exact keys label missing cells with the literal "<missing>"
            # string, which (deliberately, matching the row path) collides
            # with a real cell holding that exact text.
            merged, _ = merge_missing_level(raw_codes, vocabulary)
            exact_codes.append(merged)
            if not self.fuzzy:
                continue
            if column.ctype in _STRING_CTYPES:
                # Normalised strings never contain "<" or ">", so the fuzzy
                # "<missing>" key cannot collide with any cell: -1 is safe.
                fuzzy_codes.append(encoded.normalised_codes_view(name)[0])
            else:
                # Boolean cells are raw ``bool`` on the row path — fuzzy keys
                # equal exact keys.
                fuzzy_codes.append(merged)
        exact_duplicates = n - _count_distinct_rows(exact_codes, n)
        fuzzy_duplicates = (n - _count_distinct_rows(fuzzy_codes, n)) if self.fuzzy else 0
        return self._build_measure(n, exact_duplicates, fuzzy_duplicates)

    @staticmethod
    def _numeric_key_codes(encoded: EncodedDataset, name: str) -> np.ndarray:
        """Key codes for a numeric column: equal codes iff ``round(v, 6)`` keys match.

        ``np.round`` is elementwise identical to the ``round(value, 6)`` the
        row path applies to its ``np.float64`` cells, and ``np.unique``
        partitions by ``==`` (collapsing ``-0.0``/``0.0`` just like the row
        path's set of keys).  Missing cells keep ``-1``, which can never
        collide with a value code.
        """
        values, missing = encoded.numeric_view(name)
        codes = np.full(values.shape[0], -1, dtype=np.int64)
        present = ~missing
        if present.any():
            _, inverse = np.unique(np.round(values[present], 6), return_inverse=True)
            codes[present] = inverse
        return codes

    def _build_measure(self, n: int, exact_duplicates: int, fuzzy_duplicates: int) -> CriterionMeasure:
        duplicates = max(exact_duplicates, fuzzy_duplicates if self.fuzzy else 0)
        score = 1.0 - (duplicates / n if n else 0.0)
        return CriterionMeasure(
            criterion=self.name,
            score=score,
            details={
                "n_exact_duplicates": exact_duplicates,
                "n_fuzzy_duplicates": fuzzy_duplicates,
                "n_rows": n,
            },
        )


def _count_distinct_rows(code_columns: list[np.ndarray], n_rows: int) -> int:
    """Number of distinct rows of the (n_rows, n_columns) int64 code matrix.

    Rows are compared as raw bytes (codes are plain int64, so byte equality is
    code equality), which sidesteps the per-row Python tuples of the reference
    path.
    """
    if not code_columns:
        return min(n_rows, 1)
    matrix = np.ascontiguousarray(np.column_stack(code_columns))
    as_rows = matrix.view(np.dtype((np.void, matrix.dtype.itemsize * matrix.shape[1])))
    return int(np.unique(as_rows).size)
