"""Duplication: repeated records in the data.

The related-work section of the paper lists duplicate detection and
elimination as a classic first-phase data quality problem.  The criterion
counts exact duplicate rows and, optionally, near-duplicates whose string
cells differ only by normalisation (case, accents, whitespace).
"""

from __future__ import annotations

from repro.lod.linker import normalise_string
from repro.quality.criteria import Criterion, CriterionMeasure, register_criterion
from repro.tabular.dataset import ColumnRole, Dataset, is_missing_value


@register_criterion
class DuplicationCriterion(Criterion):
    """1.0 minus the fraction of rows that duplicate an earlier row."""

    name = "duplication"
    description = "Fraction of rows that are unique (not duplicates of earlier rows)."

    def __init__(self, fuzzy: bool = True, ignore_identifier: bool = True) -> None:
        self.fuzzy = fuzzy
        self.ignore_identifier = ignore_identifier

    def _row_key(self, row: dict, columns: list[str], fuzzy: bool) -> tuple:
        key = []
        for name in columns:
            value = row[name]
            if is_missing_value(value):
                key.append("<missing>")
            elif fuzzy and isinstance(value, str):
                key.append(normalise_string(value))
            elif isinstance(value, float):
                key.append(round(value, 6))
            else:
                key.append(value)
        return tuple(key)

    def measure(self, dataset: Dataset) -> CriterionMeasure:
        columns = [
            c.name
            for c in dataset.columns
            if not (self.ignore_identifier and c.role == ColumnRole.IDENTIFIER)
        ]
        if not columns:
            columns = dataset.column_names
        exact_seen: set[tuple] = set()
        fuzzy_seen: set[tuple] = set()
        exact_duplicates = 0
        fuzzy_duplicates = 0
        for row in dataset.iter_rows():
            exact_key = self._row_key(row, columns, fuzzy=False)
            if exact_key in exact_seen:
                exact_duplicates += 1
            else:
                exact_seen.add(exact_key)
            if self.fuzzy:
                fuzzy_key = self._row_key(row, columns, fuzzy=True)
                if fuzzy_key in fuzzy_seen:
                    fuzzy_duplicates += 1
                else:
                    fuzzy_seen.add(fuzzy_key)
        n = dataset.n_rows
        duplicates = max(exact_duplicates, fuzzy_duplicates if self.fuzzy else 0)
        score = 1.0 - (duplicates / n if n else 0.0)
        return CriterionMeasure(
            criterion=self.name,
            score=score,
            details={
                "n_exact_duplicates": exact_duplicates,
                "n_fuzzy_duplicates": fuzzy_duplicates,
                "n_rows": n,
            },
        )
