"""Dimensionality: how wide the data is relative to how many rows it has.

"High dimensionality means a great amount of attributes difficult to be
manually handled and making the KDD awkward for non-expert data miners"
(paper, §1).  LOD tabulations are the typical offender; the criterion also
reports sparsity because LOD-derived columns are often mostly empty.
"""

from __future__ import annotations

import math

from repro.quality.criteria import Criterion, CriterionMeasure, register_criterion
from repro.tabular.dataset import ColumnRole, Dataset
from repro.tabular.encoded import EncodedDataset


@register_criterion
class DimensionalityCriterion(Criterion):
    """Score decreasing with the features-per-row ratio.

    ``score = 1 / (1 + (n_features / reference_ratio) / n_rows)`` — with the
    default ``reference_ratio`` of 0.1, ten features per hundred rows yields a
    score of about 0.5, matching the usual rule of thumb that you want at
    least ten rows per feature.
    """

    name = "dimensionality"
    description = "Whether the number of attributes is small relative to the number of rows."

    def __init__(self, reference_ratio: float = 0.1) -> None:
        if reference_ratio <= 0:
            raise ValueError("reference_ratio must be positive")
        self.reference_ratio = reference_ratio

    def measure(self, dataset: Dataset) -> CriterionMeasure:
        features = [c for c in dataset.columns if c.role == ColumnRole.FEATURE]
        missing_cells = sum(c.n_missing() for c in features)
        return self._build_measure(dataset, len(features), missing_cells)

    def _measure_encoded(self, encoded: EncodedDataset) -> CriterionMeasure | None:
        if not self._uses_reference_measure(DimensionalityCriterion):
            return None
        features = [c for c in encoded.dataset.columns if c.role == ColumnRole.FEATURE]
        missing_cells = sum(int(encoded.missing_view(c.name).sum()) for c in features)
        return self._build_measure(encoded.dataset, len(features), missing_cells)

    def _build_measure(self, dataset: Dataset, n_features: int, missing_cells: int) -> CriterionMeasure:
        n_rows = dataset.n_rows
        ratio = n_features / n_rows if n_rows else float("inf")
        score = 1.0 / (1.0 + ratio / self.reference_ratio) if math.isfinite(ratio) else 0.0
        total_cells = n_features * n_rows
        sparsity = missing_cells / total_cells if total_cells else 0.0
        return CriterionMeasure(
            criterion=self.name,
            score=max(min(score, 1.0), 0.0),
            details={
                "n_features": n_features,
                "n_rows": n_rows,
                "features_per_row": ratio,
                "sparsity": sparsity,
            },
        )
