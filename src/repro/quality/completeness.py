"""Completeness: how much of the data is actually present."""

from __future__ import annotations

from repro.quality.criteria import Criterion, CriterionMeasure, register_criterion
from repro.tabular.dataset import Column, ColumnRole, Dataset
from repro.tabular.encoded import EncodedDataset


@register_criterion
class CompletenessCriterion(Criterion):
    """Fraction of non-missing cells over the feature and target columns.

    The score is 1.0 when no cell is missing.  Identifier and metadata columns
    are ignored because their absence does not affect mining.
    """

    name = "completeness"
    description = "Fraction of cells that are present (not missing)."

    def __init__(self, include_target: bool = True) -> None:
        self.include_target = include_target

    def _selected_columns(self, dataset: Dataset) -> list[Column]:
        roles = {ColumnRole.FEATURE}
        if self.include_target:
            roles.add(ColumnRole.TARGET)
        columns = [c for c in dataset.columns if c.role in roles]
        return columns or dataset.columns

    def measure(self, dataset: Dataset) -> CriterionMeasure:
        counts = {c.name: c.n_missing() for c in self._selected_columns(dataset)}
        return self._build_measure(dataset, counts)

    def _measure_encoded(self, encoded: EncodedDataset) -> CriterionMeasure | None:
        if not self._uses_reference_measure(CompletenessCriterion):
            return None
        counts = {
            c.name: int(encoded.missing_view(c.name).sum())
            for c in self._selected_columns(encoded.dataset)
        }
        return self._build_measure(encoded.dataset, counts)

    def _build_measure(self, dataset: Dataset, missing_counts: dict[str, int]) -> CriterionMeasure:
        per_column = {}
        total_cells = 0
        total_missing = 0
        for name, missing in missing_counts.items():
            per_column[name] = 1.0 - missing / dataset.n_rows
            total_cells += dataset.n_rows
            total_missing += missing
        score = 1.0 - (total_missing / total_cells if total_cells else 0.0)
        worst = min(per_column.values()) if per_column else 1.0
        details = {
            "per_column": per_column,
            "worst_column_completeness": worst,
            "n_missing_cells": total_missing,
            "n_cells": total_cells,
        }
        # Datasets that came through the salvage tier carry per-cell
        # provenance; surface how many of the measured cells were repaired
        # rather than read.  Shared by both measurement tiers, so the
        # reference and encoded paths stay bit-identical.
        from repro.recovery.provenance import dataset_provenance, provenance_counts

        provenance = dataset_provenance(dataset)
        if provenance is not None:
            details["salvage"] = provenance_counts(provenance, columns=list(missing_counts))
        return CriterionMeasure(criterion=self.name, score=score, details=details)
