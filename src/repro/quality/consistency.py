"""Consistency: agreement of the data with declared structural rules."""

from __future__ import annotations

from repro.quality.criteria import Criterion, CriterionMeasure, register_criterion
from repro.tabular.dataset import Dataset
from repro.tabular.encoded import EncodedDataset
from repro.tabular.schema import Schema, infer_schema, inferred_schema_name


@register_criterion
class ConsistencyCriterion(Criterion):
    """Fraction of cells that do not violate the (given or inferred) schema.

    With an explicit clean-reference schema this measures true rule
    violations (domains, ranges, nullability, uniqueness, row rules).  When no
    schema is given, a permissive schema is inferred from the dataset itself,
    so only internally contradictory aspects (e.g. duplicated values in a
    unique column) are counted.
    """

    name = "consistency"
    description = "Fraction of cells consistent with the declared/inferred schema."

    def __init__(self, schema: Schema | None = None) -> None:
        self.schema = schema

    def measure(self, dataset: Dataset) -> CriterionMeasure:
        schema = self.schema or infer_schema(dataset)
        violations = schema.validate(dataset)
        n_cells = dataset.n_rows * dataset.n_columns
        per_kind: dict[str, int] = {}
        for violation in violations:
            per_kind[violation.kind] = per_kind.get(violation.kind, 0) + 1
        score = 1.0 - min(len(violations) / n_cells, 1.0) if n_cells else 1.0
        return CriterionMeasure(
            criterion=self.name,
            score=score,
            details={
                "n_violations": len(violations),
                "violations_by_kind": per_kind,
                "schema": schema.name,
            },
        )

    def _measure_encoded(self, encoded: EncodedDataset) -> CriterionMeasure | None:
        if not self._uses_reference_measure(ConsistencyCriterion):
            return None
        if self.schema is not None:
            # An explicit schema can carry arbitrary row rules and raw-value
            # domains; only the reference path can honour those faithfully.
            return None
        # Without an explicit schema the reference path infers one from the
        # dataset itself and then validates the dataset against it.  That
        # schema is permissive by construction: specs copy each column's type,
        # bounds are the observed min/max, domains are the observed distinct
        # values, columns with missing cells are marked nullable, and neither
        # uniqueness nor row rules are ever inferred — so validation provably
        # returns zero violations and the O(cells) walk only re-derives what
        # is true by construction.  This bakes that invariant in: if
        # ``infer_schema``/``validate`` ever grows a check that can fire on a
        # schema's own source dataset, this shortcut must be revisited — the
        # row-vs-encoded equivalence tests (unit and property-based) exist to
        # catch exactly that drift.
        return CriterionMeasure(
            criterion=self.name,
            score=1.0,
            details={
                "n_violations": 0,
                "violations_by_kind": {},
                "schema": inferred_schema_name(encoded.dataset.name),
            },
        )
