"""Correlation / redundancy among the attributes.

The paper's running example: "if some attributes are selected as input for a
classification algorithm (being some of them strongly correlated), the
resulting knowledge pattern, though correct, will not provide the useful
expected value" (§3.1).  The criterion therefore scores how *non-redundant*
the feature set is.
"""

from __future__ import annotations

import math

import numpy as np

from repro.quality.criteria import Criterion, CriterionMeasure, register_criterion
from repro.tabular.dataset import ColumnType, Dataset
from repro.tabular.stats import cramers_v, pearson


@register_criterion
class CorrelationCriterion(Criterion):
    """1.0 minus the share of feature pairs that are strongly associated.

    Numeric pairs use |Pearson| and categorical pairs use Cramér's V; a pair
    counts as redundant when its association exceeds ``threshold``.  The score
    also reports the mean absolute association in the details so degradation
    is visible before any pair crosses the threshold.
    """

    name = "correlation"
    description = "Degree to which features are not redundant with each other."

    def __init__(self, threshold: float = 0.9, max_pairs: int = 2000) -> None:
        self.threshold = threshold
        self.max_pairs = max_pairs

    def measure(self, dataset: Dataset) -> CriterionMeasure:
        features = dataset.feature_columns()
        numeric = [c for c in features if c.is_numeric()]
        categorical = [c for c in features if c.ctype in (ColumnType.CATEGORICAL, ColumnType.BOOLEAN)]

        associations: list[float] = []
        redundant_pairs: list[tuple[str, str, float]] = []

        def consider(name_a: str, name_b: str, value: float) -> None:
            if math.isnan(value):
                return
            associations.append(abs(value))
            if abs(value) >= self.threshold:
                redundant_pairs.append((name_a, name_b, float(value)))

        pairs_examined = 0
        for i in range(len(numeric)):
            for j in range(i + 1, len(numeric)):
                if pairs_examined >= self.max_pairs:
                    break
                consider(numeric[i].name, numeric[j].name, pearson(numeric[i].values, numeric[j].values))
                pairs_examined += 1
        for i in range(len(categorical)):
            for j in range(i + 1, len(categorical)):
                if pairs_examined >= self.max_pairs:
                    break
                consider(categorical[i].name, categorical[j].name, cramers_v(categorical[i], categorical[j]))
                pairs_examined += 1

        if not associations:
            return CriterionMeasure(self.name, 1.0, {"n_pairs": 0, "redundant_pairs": []})

        n_pairs = len(associations)
        redundant_share = len(redundant_pairs) / n_pairs
        mean_association = float(np.mean(associations))
        # Blend: crossing the threshold dominates, pervasive moderate
        # correlation still lowers the score.
        score = 1.0 - (0.7 * redundant_share + 0.3 * mean_association)
        return CriterionMeasure(
            criterion=self.name,
            score=max(min(score, 1.0), 0.0),
            details={
                "n_pairs": n_pairs,
                "mean_association": mean_association,
                "max_association": float(np.max(associations)),
                "redundant_pairs": [
                    {"a": a, "b": b, "association": value} for a, b, value in redundant_pairs
                ],
            },
        )
