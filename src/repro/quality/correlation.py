"""Correlation / redundancy among the attributes.

The paper's running example: "if some attributes are selected as input for a
classification algorithm (being some of them strongly correlated), the
resulting knowledge pattern, though correct, will not provide the useful
expected value" (§3.1).  The criterion therefore scores how *non-redundant*
the feature set is.

The encoded path computes Pearson directly on the cached float views (no
per-cell list round-trips) and Cramér's V from a ``bincount`` contingency
table over code pairs; both replicate the reference arithmetic of
:mod:`repro.tabular.stats` operation for operation, so the scores are
bit-identical.
"""

from __future__ import annotations

import math

import numpy as np

from repro.quality.criteria import Criterion, CriterionMeasure, register_criterion
from repro.tabular.dataset import Column, ColumnType, Dataset
from repro.tabular.encoded import EncodedDataset
from repro.tabular.stats import cramers_v, pearson


@register_criterion
class CorrelationCriterion(Criterion):
    """1.0 minus the share of feature pairs that are strongly associated.

    Numeric pairs use |Pearson| and categorical pairs use Cramér's V; a pair
    counts as redundant when its association exceeds ``threshold``.  The score
    also reports the mean absolute association in the details so degradation
    is visible before any pair crosses the threshold.  At most ``max_pairs``
    pairs are examined (numeric pairs first); the cap ends the examination
    outright on both execution paths.
    """

    name = "correlation"
    description = "Degree to which features are not redundant with each other."

    def __init__(self, threshold: float = 0.9, max_pairs: int = 2000) -> None:
        self.threshold = threshold
        self.max_pairs = max_pairs

    @staticmethod
    def _split_features(dataset: Dataset) -> tuple[list[Column], list[Column]]:
        features = dataset.feature_columns()
        numeric = [c for c in features if c.is_numeric()]
        categorical = [c for c in features if c.ctype in (ColumnType.CATEGORICAL, ColumnType.BOOLEAN)]
        return numeric, categorical

    def measure(self, dataset: Dataset) -> CriterionMeasure:
        numeric, categorical = self._split_features(dataset)
        return self._measure_pairs(
            numeric,
            categorical,
            lambda a, b: pearson(a.values, b.values),
            cramers_v,
        )

    def _measure_encoded(self, encoded: EncodedDataset) -> CriterionMeasure | None:
        if not self._uses_reference_measure(CorrelationCriterion):
            return None
        numeric, categorical = self._split_features(encoded.dataset)
        return self._measure_pairs(
            numeric,
            categorical,
            lambda a, b: _pearson_encoded(encoded, a.name, b.name),
            lambda a, b: _cramers_v_encoded(encoded, a.name, b.name),
        )

    def _measure_pairs(self, numeric, categorical, numeric_assoc, categorical_assoc) -> CriterionMeasure:
        associations: list[float] = []
        redundant_pairs: list[tuple[str, str, float]] = []

        def consider(name_a: str, name_b: str, value: float) -> None:
            if math.isnan(value):
                return
            associations.append(abs(value))
            if abs(value) >= self.threshold:
                redundant_pairs.append((name_a, name_b, float(value)))

        pairs_examined = 0
        capped = False
        for columns, assoc in ((numeric, numeric_assoc), (categorical, categorical_assoc)):
            for i in range(len(columns)):
                for j in range(i + 1, len(columns)):
                    if pairs_examined >= self.max_pairs:
                        capped = True
                        break
                    consider(columns[i].name, columns[j].name, assoc(columns[i], columns[j]))
                    pairs_examined += 1
                if capped:
                    break
            if capped:
                break

        if not associations:
            return CriterionMeasure(self.name, 1.0, {"n_pairs": 0, "redundant_pairs": []})

        n_pairs = len(associations)
        redundant_share = len(redundant_pairs) / n_pairs
        mean_association = float(np.mean(associations))
        # Blend: crossing the threshold dominates, pervasive moderate
        # correlation still lowers the score.
        score = 1.0 - (0.7 * redundant_share + 0.3 * mean_association)
        return CriterionMeasure(
            criterion=self.name,
            score=max(min(score, 1.0), 0.0),
            details={
                "n_pairs": n_pairs,
                "mean_association": mean_association,
                "max_association": float(np.max(associations)),
                "redundant_pairs": [
                    {"a": a, "b": b, "association": value} for a, b, value in redundant_pairs
                ],
            },
        )


def _pearson_encoded(encoded: EncodedDataset, name_a: str, name_b: str) -> float:
    """:func:`repro.tabular.stats.pearson` over the cached float views.

    Same masking, same ``np.corrcoef`` call on the same float64 arrays as the
    reference — only the per-cell ``list``/``asarray`` round-trip is skipped.
    """
    xa, _ = encoded.numeric_view(name_a)
    ya, _ = encoded.numeric_view(name_b)
    mask = ~(np.isnan(xa) | np.isnan(ya))
    xa, ya = xa[mask], ya[mask]
    if xa.size < 2:
        return float("nan")
    if xa.std() == 0 or ya.std() == 0:
        return 0.0
    return float(np.corrcoef(xa, ya)[0, 1])


def _cramers_v_encoded(encoded: EncodedDataset, name_a: str, name_b: str) -> float:
    """:func:`repro.tabular.stats.cramers_v` from bincounts over code pairs.

    The contingency table is laid out with levels in sorted-string order —
    exactly how the reference builds it — because the float reductions over
    the table (``sum``, ``nansum``) are order-sensitive in the last bit.
    """
    codes_a, vocab_a, _ = encoded.codes_view(name_a)
    codes_b, vocab_b, _ = encoded.codes_view(name_b)
    both = (codes_a >= 0) & (codes_b >= 0)
    if not both.any():
        return 0.0
    pairs_a = codes_a[both]
    pairs_b = codes_b[both]
    ranks_a = _sorted_level_ranks(pairs_a, vocab_a)
    ranks_b = _sorted_level_ranks(pairs_b, vocab_b)
    n_a, n_b = ranks_a.max() + 1, ranks_b.max() + 1
    if n_a < 2 or n_b < 2:
        return 0.0
    table = (
        np.bincount(ranks_a * n_b + ranks_b, minlength=n_a * n_b)
        .reshape(n_a, n_b)
        .astype(float)
    )
    n = table.sum()
    row_sums = table.sum(axis=1, keepdims=True)
    col_sums = table.sum(axis=0, keepdims=True)
    expected = row_sums @ col_sums / n
    with np.errstate(divide="ignore", invalid="ignore"):
        chi2 = np.nansum(np.where(expected > 0, (table - expected) ** 2 / expected, 0.0))
    phi2 = chi2 / n
    k = min(n_a - 1, n_b - 1)
    if k == 0:
        return 0.0
    return float(math.sqrt(phi2 / k))


def _sorted_level_ranks(present_codes: np.ndarray, vocabulary: list[str]) -> np.ndarray:
    """Map codes to contiguous ranks ordered by the level *string*.

    Restricting to the levels actually present and ranking them by sorted
    string mirrors the reference's ``sorted({str(x) for x, _ in pairs})``.
    """
    level_codes = np.unique(present_codes)
    strings = [vocabulary[code] for code in level_codes.tolist()]
    rank_of = np.empty(level_codes.size, dtype=np.int64)
    for rank, position in enumerate(sorted(range(len(strings)), key=strings.__getitem__)):
        rank_of[position] = rank
    return rank_of[np.searchsorted(level_codes, present_codes)]
