"""Outliers: extreme numeric values that can dominate distance-based mining."""

from __future__ import annotations

import numpy as np

from repro.quality.criteria import Criterion, CriterionMeasure, register_criterion
from repro.tabular.dataset import ColumnRole, Dataset
from repro.tabular.encoded import EncodedDataset


@register_criterion
class OutlierCriterion(Criterion):
    """1.0 minus the fraction of numeric cells outside the Tukey fences.

    A cell is an outlier when it lies more than ``iqr_factor`` interquartile
    ranges outside the [Q1, Q3] interval of its column.
    """

    name = "outliers"
    description = "Fraction of numeric values that are not extreme outliers."

    def __init__(self, iqr_factor: float = 1.5) -> None:
        if iqr_factor <= 0:
            raise ValueError("iqr_factor must be positive")
        self.iqr_factor = iqr_factor

    def measure(self, dataset: Dataset) -> CriterionMeasure:
        columns = self._numeric_columns(dataset)
        if not columns:
            return CriterionMeasure(self.name, 1.0, {"note": "no numeric columns"})
        present = [np.asarray([float(v) for v in column.non_missing()]) for column in columns]
        return self._build_measure([c.name for c in columns], present)

    def _measure_encoded(self, encoded: EncodedDataset) -> CriterionMeasure | None:
        if not self._uses_reference_measure(OutlierCriterion):
            return None
        columns = self._numeric_columns(encoded.dataset)
        if not columns:
            return CriterionMeasure(self.name, 1.0, {"note": "no numeric columns"})
        views = [encoded.numeric_view(column.name) for column in columns]
        # Slicing the float view by the missing mask preserves cell order, so
        # the percentile/std arithmetic below sees exactly the arrays the
        # reference path builds cell by cell.
        present = [values[~missing] for values, missing in views]
        return self._build_measure([c.name for c in columns], present)

    @staticmethod
    def _numeric_columns(dataset: Dataset) -> list:
        return [
            c
            for c in dataset.columns
            if c.is_numeric() and c.role in (ColumnRole.FEATURE, ColumnRole.TARGET)
        ]

    def _build_measure(self, names: list[str], present: list[np.ndarray]) -> CriterionMeasure:
        outliers = 0
        checked = 0
        per_column: dict[str, float] = {}
        for name, values in zip(names, present):
            if values.size < 4:
                per_column[name] = 0.0
                continue
            q1, q3 = np.percentile(values, [25, 75])
            iqr = q3 - q1
            spread = iqr if iqr > 0 else (values.std() or 1.0)
            low = q1 - self.iqr_factor * spread
            high = q3 + self.iqr_factor * spread
            column_outliers = int(((values < low) | (values > high)).sum())
            per_column[name] = column_outliers / values.size
            outliers += column_outliers
            checked += values.size
        score = 1.0 - (outliers / checked if checked else 0.0)
        return CriterionMeasure(
            criterion=self.name,
            score=max(min(score, 1.0), 0.0),
            details={"outlier_fraction_per_column": per_column, "n_outliers": outliers, "n_checked": checked},
        )
