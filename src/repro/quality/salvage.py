"""Salvage provenance as a data quality criterion.

When a dataset arrives through the recovery tier
(:func:`repro.recovery.salvage_csv`), per-cell provenance flags record every
cell the salvage had to pad, truncate, re-join or coerce.  That record is
itself a quality signal — a file whose cells were largely reconstructed is
less trustworthy than one parsed untouched — so this criterion surfaces it in
the same profile vector as completeness, accuracy and the rest.

The criterion is registered but **not** part of
:data:`~repro.quality.profile.DEFAULT_CRITERIA`: adding it there would change
the length of every existing profile vector.  Request it explicitly, e.g.
``measure_quality(dataset, criteria=[*default_criteria(), SalvageCriterion()])``.
"""

from __future__ import annotations

from repro.quality.criteria import Criterion, CriterionMeasure, register_criterion
from repro.tabular.dataset import Dataset
from repro.tabular.encoded import EncodedDataset


@register_criterion
class SalvageCriterion(Criterion):
    """Fraction of cells recovered untouched by the salvage tier.

    The score is ``1 - flagged_cells / cells`` over the salvage provenance
    attached to the dataset instance, and 1.0 for datasets without provenance
    (parsed strictly, built in memory, or salvaged from clean input — the
    recovery tier only attaches provenance when it intervened).
    """

    name = "salvage"
    description = "Fraction of cells recovered untouched by the salvage tier."

    def measure(self, dataset: Dataset) -> CriterionMeasure:
        """Score the attached salvage provenance (1.0 when there is none)."""
        from repro.recovery.provenance import dataset_provenance, provenance_counts

        provenance = dataset_provenance(dataset)
        if provenance is None:
            return CriterionMeasure(
                criterion=self.name,
                score=1.0,
                details={"has_provenance": False, "n_flagged_cells": 0, "flag_counts": {}},
            )
        counts = provenance_counts(provenance)
        n_cells = sum(len(flags) for flags in provenance.values())
        n_flagged = sum(counts.values())
        score = 1.0 - (n_flagged / n_cells if n_cells else 0.0)
        return CriterionMeasure(
            criterion=self.name,
            score=score,
            details={
                "has_provenance": True,
                "n_flagged_cells": n_flagged,
                "flag_counts": counts,
            },
        )

    def _measure_encoded(self, encoded: EncodedDataset) -> CriterionMeasure | None:
        """Provenance flags are already columnar; the reference path is the fast path."""
        if not self._uses_reference_measure(SalvageCriterion):
            return None
        return self.measure(encoded.dataset)
