"""Human-readable data quality reports.

Kriegel et al. (cited by the paper) ask that "all steps undertaken should be
reported to the user"; the report renders a profile — and optionally the gap
to a clean reference profile — as plain text or Markdown for the OpenBI
dashboards.
"""

from __future__ import annotations

from repro.quality.profile import DataQualityProfile


def _bar(score: float, width: int = 20) -> str:
    filled = int(round(score * width))
    return "#" * filled + "." * (width - filled)


def quality_report(
    profile: DataQualityProfile,
    reference: DataQualityProfile | None = None,
    fmt: str = "text",
) -> str:
    """Render a profile as ``text`` or ``markdown``.

    When a clean ``reference`` profile is given, the per-criterion difference
    is shown so a non-expert user can see which quality problems the source
    has *relative to* a trusted sample.
    """
    if fmt not in ("text", "markdown"):
        raise ValueError(f"unknown report format {fmt!r}")
    rows = []
    for criterion, score in sorted(profile.as_dict().items()):
        delta = None
        if reference is not None and criterion in reference.as_dict():
            delta = score - reference.score(criterion)
        rows.append((criterion, score, delta))

    if fmt == "markdown":
        lines = [f"# Data quality report: {profile.dataset_name}", ""]
        header = "| criterion | score | bar |" + (" delta |" if reference is not None else "")
        separator = "|---|---|---|" + ("---|" if reference is not None else "")
        lines.extend([header, separator])
        for criterion, score, delta in rows:
            row = f"| {criterion} | {score:.3f} | `{_bar(score)}` |"
            if reference is not None:
                row += f" {delta:+.3f} |" if delta is not None else " n/a |"
            lines.append(row)
        lines.append("")
        lines.append(f"Overall quality: **{profile.overall():.3f}**")
        worst = ", ".join(f"{name} ({score:.2f})" for name, score in profile.worst_criteria())
        lines.append(f"Main problems: {worst}")
        return "\n".join(lines)

    width = max(len(criterion) for criterion, _, _ in rows)
    lines = [f"Data quality report: {profile.dataset_name}", "=" * (22 + len(profile.dataset_name))]
    for criterion, score, delta in rows:
        line = f"{criterion.ljust(width)}  {score:6.3f}  [{_bar(score)}]"
        if delta is not None:
            line += f"  ({delta:+.3f} vs reference)"
        lines.append(line)
    lines.append("-" * (32 + width))
    lines.append(f"overall quality: {profile.overall():.3f}")
    worst = ", ".join(f"{name} ({score:.2f})" for name, score in profile.worst_criteria())
    lines.append(f"main problems:   {worst}")
    return "\n".join(lines)
