"""Data quality criteria measurement.

"Data quality means 'fitness for use' … data quality criteria should be
measured to avoid discovering superfluous, contradictory or spurious
knowledge" (paper, §3.1).  Each criterion in this subpackage measures one
aspect of a dataset and returns a score in ``[0, 1]`` where **1.0 means
perfect quality** (no problem present); the scores are aggregated into a
:class:`~repro.quality.profile.DataQualityProfile` that the metamodel
annotations, the knowledge base and the advisor all consume.

Criteria run on the encoded-matrix execution core by default:
:func:`~repro.quality.profile.measure_quality` encodes the dataset once and
every default criterion measures from the shared
:class:`~repro.tabular.encoded.EncodedDataset` views through the
``_measure_encoded`` hook (see :mod:`repro.quality.criteria`), falling back
to — and staying bit-identical with — the row-at-a-time reference
``measure`` implementations.
"""

from repro.quality.criteria import Criterion, CriterionMeasure, CRITERIA_REGISTRY, get_criterion, register_criterion
from repro.quality.completeness import CompletenessCriterion
from repro.quality.accuracy import AccuracyCriterion
from repro.quality.consistency import ConsistencyCriterion
from repro.quality.duplicates import DuplicationCriterion
from repro.quality.correlation import CorrelationCriterion
from repro.quality.balance import BalanceCriterion
from repro.quality.dimensionality import DimensionalityCriterion
from repro.quality.outliers import OutlierCriterion
from repro.quality.salvage import SalvageCriterion
from repro.quality.profile import DataQualityProfile, measure_quality
from repro.quality.report import quality_report

__all__ = [
    "Criterion",
    "CriterionMeasure",
    "CRITERIA_REGISTRY",
    "get_criterion",
    "register_criterion",
    "CompletenessCriterion",
    "AccuracyCriterion",
    "ConsistencyCriterion",
    "DuplicationCriterion",
    "CorrelationCriterion",
    "BalanceCriterion",
    "DimensionalityCriterion",
    "OutlierCriterion",
    "SalvageCriterion",
    "DataQualityProfile",
    "measure_quality",
    "quality_report",
]
