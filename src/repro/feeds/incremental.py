"""Delta maintenance of derived state: profiles, group-bys, cubes, KPI boards.

A feed batch of 1k rows against a 100k-row base must not trigger 100k rows of
recomputation.  The classes here keep just enough state to refresh derived
results in O(len(delta)):

* :class:`IncrementalGroupBy` — running per-group accumulators behind
  :func:`repro.tabular.transforms.group_by` (and therefore behind cube
  aggregation);
* :class:`IncrementalProfile` — running counts behind the incrementalizable
  quality criteria of :func:`repro.quality.profile.measure_quality`;
* :class:`IncrementalKPIBoard` — an incremental group-by plus the grading
  tail of :func:`repro.bi.kpi.evaluate_kpis_by_level`.

Each follows the library's two-tier protocol, extended from *row vs encoded*
to *batch vs incremental*: the batch recompute over base+delta is the
reference tier, ``refresh(merged)`` is the delta tier, and the two must be
**bit-identical** — float summation order included.  That shapes the state:

* ``sum``/``mean`` resume the reference's left fold (Python ``sum`` over the
  group's values in row order) by carrying the running total — continuing a
  left fold is exactly restarting it partway, so the float sequence is the
  reference's;
* ``min``/``max`` fold exactly (ties keep the earlier value, as ``min`` does);
* ``std``/``median`` are not resumable folds, so the state keeps each
  group's full value list and recomputes only the groups the delta touched
  (recompute-over-merged-lists);
* quality criteria keep exact integer counts (missing cells, class
  bincounts, duplicate-key sets) and feed them to the *same*
  ``_build_measure`` helpers the batch tiers call.

Anything that cannot be incrementalized this way — a non-numeric aggregation
source, a criterion without a maintainable state (accuracy, correlation,
outliers, a numeric-target balance, an explicit-schema consistency, any
subclassed criterion) — automatically falls back to the batch recompute, and
every class carries a ``_force_full_refresh`` escape hatch that pins the
batch tier outright, mirroring ``_force_row_*`` elsewhere.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from repro.bi.kpi import KPI
from repro.bi.olap import Cube
from repro.exceptions import OLAPError, ReproError, SchemaError
from repro.quality.balance import BalanceCriterion
from repro.quality.completeness import CompletenessCriterion
from repro.quality.criteria import Criterion, CriterionMeasure
from repro.quality.dimensionality import DimensionalityCriterion
from repro.quality.duplicates import _STRING_CTYPES, DuplicationCriterion
from repro.quality.profile import DEFAULT_CRITERIA, DataQualityProfile, get_criterion, measure_quality
from repro.tabular.dataset import ColumnRole, ColumnType, Dataset
from repro.tabular.encoded import EncodedDataset, encode_dataset
from repro.tabular.transforms import _AGGREGATIONS, _hashable, group_by


def _check_refresh_target(state_dataset: Dataset, state_rows: int, merged: Dataset) -> None:
    """Reject refresh targets that are not an append extension of the base."""
    if merged.column_names != state_dataset.column_names:
        raise SchemaError(
            f"refresh target has columns {merged.column_names}; expected {state_dataset.column_names}"
        )
    if merged.n_rows < state_rows:
        raise SchemaError(
            f"refresh target has {merged.n_rows} rows, fewer than the {state_rows} already folded in; "
            "refresh expects the base dataset plus appended rows"
        )


class IncrementalGroupBy:
    """O(len(delta)) refresh of one ``group_by`` result.

    Construction validates keys and aggregations exactly like
    :func:`~repro.tabular.transforms.group_by` and folds the base dataset
    into per-group accumulators.  :meth:`refresh` folds only the appended
    rows in and returns the full grouped dataset, bit-identical to
    ``group_by(merged, keys, aggregations)``.

    When any aggregation source column is non-numeric the reference tier's
    semantics (per-cell ``float(v)`` coercion of string cells) cannot be
    maintained as a fold, so the instance routes every call to the batch
    ``group_by`` instead; :attr:`incremental` reports which tier is active.
    Setting ``_force_full_refresh`` pins the batch tier on any instance.
    """

    _force_full_refresh: bool = False

    def __init__(
        self,
        dataset: Dataset,
        keys: Sequence[str],
        aggregations: Mapping[str, tuple[str, str]],
    ) -> None:
        """Seed the per-group folds (or pin the batch tier) from ``dataset``."""
        keys = list(keys)
        for key in keys:
            if key not in dataset:
                raise SchemaError(f"unknown group-by key {key!r}")
        for out_name, (source, agg) in aggregations.items():
            if source not in dataset:
                raise SchemaError(f"aggregation {out_name!r} references unknown column {source!r}")
            if agg not in _AGGREGATIONS:
                raise SchemaError(f"unknown aggregation {agg!r}; choose from {sorted(_AGGREGATIONS)}")
        self._keys = keys
        self._aggregations = dict(aggregations)
        self._dataset = dataset
        self._n_rows = 0
        self.incremental = all(dataset[source].is_numeric() for source, _ in aggregations.values())
        if self.incremental:
            self._rebuild_state()

    def _rebuild_state(self) -> None:
        self._groups: dict[tuple, int] = {}
        self._key_values: list[dict[str, Any]] = []
        self._acc: dict[str, list[Any]] = {out: [] for out in self._aggregations}
        self._n_rows = 0
        self._fold_rows(self._dataset, 0)

    def _fold_rows(self, dataset: Dataset, start: int) -> None:
        """Fold rows ``start:`` into the per-group accumulators, in row order."""
        n = dataset.n_rows
        self._n_rows = n
        if start >= n:
            return
        key_lists = [dataset[k].values[start:].tolist() for k in self._keys]
        agg_specs = []
        for out_name, (source, agg) in self._aggregations.items():
            agg_specs.append((self._acc[out_name], agg, dataset[source].values[start:].tolist()))
        groups = self._groups
        for i in range(n - start):
            group_key = tuple(_hashable(cells[i]) for cells in key_lists)
            group = groups.get(group_key)
            if group is None:
                group = len(self._key_values)
                groups[group_key] = group
                # The reference keeps the *raw* first-row key cells (not the
                # hashable forms) as the group's output values.
                first = dataset.row(start + i)
                self._key_values.append({k: first[k] for k in self._keys})
                for acc, agg, _ in agg_specs:
                    if agg in ("sum", "mean"):
                        acc.append([0, 0])  # running total (int 0 start, like sum()), count
                    elif agg in ("min", "max"):
                        acc.append([None])
                    elif agg == "count":
                        acc.append([0])
                    else:  # std / median keep the full value list
                        acc.append([[], None])
            for acc, agg, cells in agg_specs:
                value = cells[i]
                if value != value:  # nan: the only missing form a float column holds
                    continue
                slot = acc[group]
                if agg in ("sum", "mean"):
                    slot[0] += value
                    slot[1] += 1
                elif agg == "min":
                    slot[0] = value if slot[0] is None else min(slot[0], value)
                elif agg == "max":
                    slot[0] = value if slot[0] is None else max(slot[0], value)
                elif agg == "count":
                    slot[0] += 1
                else:
                    slot[0].append(value)
                    slot[1] = None  # dirty: recompute lazily at result time

    def _finalise(self, agg: str, slot: list[Any]) -> float:
        """One group's aggregate from its accumulator, reference arithmetic."""
        if agg == "count":
            return float(slot[0])
        if agg in ("sum", "mean"):
            if slot[1] == 0:
                return float("nan")
            return float(slot[0]) if agg == "sum" else float(slot[0] / slot[1])
        if agg in ("min", "max"):
            return float("nan") if slot[0] is None else float(slot[0])
        # std / median: recompute over the merged value list only when dirty.
        if slot[1] is None:
            slot[1] = _AGGREGATIONS[agg](slot[0]) if slot[0] else float("nan")
        return slot[1]

    def result(self) -> Dataset:
        """The grouped dataset for the rows folded in so far."""
        if not self.incremental:
            return group_by(self._dataset, self._keys, self._aggregations)
        out_rows: list[dict[str, Any]] = []
        for group, key_values in enumerate(self._key_values):
            row = dict(key_values)
            for out_name, (_source, agg) in self._aggregations.items():
                row[out_name] = self._finalise(agg, self._acc[out_name][group])
            out_rows.append(row)
        ctypes = {k: self._dataset[k].ctype for k in self._keys}
        for out_name in self._aggregations:
            ctypes[out_name] = ColumnType.NUMERIC
        return Dataset.from_rows(out_rows, name=f"{self._dataset.name}_grouped", ctypes=ctypes)

    def refresh(self, merged: Dataset) -> Dataset:
        """Fold the appended rows of ``merged`` in and return the grouped dataset.

        ``merged`` must be the base dataset (the rows already folded in)
        followed by the appended delta — exactly what
        :meth:`Dataset.append_rows`/:meth:`Dataset.append_dataset` return.
        """
        _check_refresh_target(self._dataset, self._n_rows if self.incremental else 0, merged)
        if self._force_full_refresh or not self.incremental:
            self._dataset = merged
            if self.incremental:
                self._rebuild_state()
            return group_by(merged, self._keys, self._aggregations)
        start = self._n_rows
        self._dataset = merged
        self._fold_rows(merged, start)
        return self.result()


def incremental_cube_aggregate(cube: Cube, levels: Sequence[str]) -> IncrementalGroupBy:
    """An :class:`IncrementalGroupBy` maintaining ``cube.aggregate(levels)``.

    ``levels`` must be non-empty (the grand-total pseudo-level of
    ``aggregate([])`` has no delta structure worth maintaining — recompute
    it).  A cube pinned to the row tier via ``_force_row_olap`` gets its
    incremental board pinned to the full-refresh tier, keeping the escape
    hatches aligned across the protocol.
    """
    levels = list(levels)
    if not levels:
        raise OLAPError("incremental cube aggregation needs at least one level")
    board = IncrementalGroupBy(cube.dataset, levels, cube._aggregations())
    if cube._force_row_olap:
        board._force_full_refresh = True
    return board


class IncrementalKPIBoard:
    """O(len(delta)) refresh of one per-level KPI scoreboard.

    Wraps an :class:`IncrementalGroupBy` over the cube dataset's per-level
    means and replays the grading tail of
    :func:`repro.bi.kpi.evaluate_kpis_by_level`; :meth:`refresh` is
    bit-identical to rebuilding the scoreboard from a cube over the merged
    dataset.  Validation (column KPIs only, numeric sources, no column
    collisions) matches the batch evaluator's.
    """

    _force_full_refresh: bool = False

    def __init__(self, kpis: Sequence[KPI], cube: Cube, level: str) -> None:
        """Seed per-level KPI folds from ``cube``'s dataset for ``level``."""
        if not kpis:
            raise ReproError("no KPIs to evaluate")
        aggregations: dict[str, tuple[str, str]] = {}
        out_columns = {level}
        for kpi in kpis:
            if callable(kpi.compute):
                raise ReproError(
                    f"KPI {kpi.name!r} uses a callable; per-level evaluation needs a column name"
                )
            if kpi.compute not in cube.dataset:
                raise ReproError(f"KPI {kpi.name!r} references unknown column {kpi.compute!r}")
            if not cube.dataset[kpi.compute].is_numeric():
                raise ReproError(f"KPI {kpi.name!r} references non-numeric column {kpi.compute!r}")
            for column in (kpi.name, f"{kpi.name}_status"):
                if column in out_columns:
                    raise ReproError(
                        f"KPI {kpi.name!r} collides with the {column!r} scoreboard column; "
                        "KPI names must be unique and differ from the level column"
                    )
                out_columns.add(column)
            aggregations[kpi.name] = (kpi.compute, "mean")
        self._kpis = list(kpis)
        self._cube = cube
        self._level = level
        self._grouped = IncrementalGroupBy(cube.dataset, [level], aggregations)
        if cube._force_row_olap:
            self._grouped._force_full_refresh = True

    def refresh(self, merged: Dataset) -> Dataset:
        """Fold the appended rows in and return the refreshed scoreboard."""
        if self._force_full_refresh:
            forced_before = self._grouped._force_full_refresh
            self._grouped._force_full_refresh = True
            try:
                grouped = self._grouped.refresh(merged)
            finally:
                self._grouped._force_full_refresh = forced_before
        else:
            grouped = self._grouped.refresh(merged)
        return self._scoreboard(grouped, merged)

    def result(self) -> Dataset:
        """The scoreboard for the rows folded in so far."""
        return self._scoreboard(self._grouped.result(), self._grouped._dataset)

    def _scoreboard(self, grouped: Dataset, dataset: Dataset) -> Dataset:
        out_rows: list[dict[str, Any]] = []
        for row in grouped.iter_rows():
            out: dict[str, Any] = {self._level: row[self._level]}
            for kpi in self._kpis:
                value = row[kpi.name]
                out[kpi.name] = value
                out[f"{kpi.name}_status"] = kpi.grade(float(value))
            out_rows.append(out)
        ctypes = {self._level: dataset[self._level].ctype}
        for kpi in self._kpis:
            ctypes[kpi.name] = ColumnType.NUMERIC
            ctypes[f"{kpi.name}_status"] = ColumnType.CATEGORICAL
        return Dataset.from_rows(
            out_rows, name=f"{self._cube.name}_kpis_by_{self._level}", ctypes=ctypes
        )


# -- incremental quality criterion states -------------------------------------


class _CompletenessState:
    """Running per-column missing counts behind the completeness criterion."""

    def __init__(self, criterion: CompletenessCriterion, dataset: Dataset, encoded: EncodedDataset) -> None:
        """Count missing cells per assessed column over the base rows."""
        self._criterion = criterion
        self._counts = {
            c.name: int(encoded.missing_view(c.name).sum())
            for c in criterion._selected_columns(dataset)
        }

    def update(self, merged: Dataset, encoded: EncodedDataset, start: int) -> None:
        """Add the delta rows' missing cells to the running counts."""
        for name in self._counts:
            self._counts[name] += int(encoded.missing_view(name)[start:].sum())

    def build(self, merged: Dataset, encoded: EncodedDataset) -> CriterionMeasure:
        """Materialise the criterion measure from the running counts."""
        return self._criterion._build_measure(merged, dict(self._counts))


class _DimensionalityState:
    """Running missing-cell total over the feature columns."""

    def __init__(self, criterion: DimensionalityCriterion, dataset: Dataset, encoded: EncodedDataset) -> None:
        """Total the missing cells across the base rows' feature columns."""
        self._criterion = criterion
        self._features = [c.name for c in dataset.columns if c.role == ColumnRole.FEATURE]
        self._missing = sum(int(encoded.missing_view(name).sum()) for name in self._features)

    def update(self, merged: Dataset, encoded: EncodedDataset, start: int) -> None:
        """Add the delta rows' missing feature cells to the running total."""
        self._missing += sum(int(encoded.missing_view(name)[start:].sum()) for name in self._features)

    def build(self, merged: Dataset, encoded: EncodedDataset) -> CriterionMeasure:
        """Materialise the criterion measure from the running total."""
        return self._criterion._build_measure(merged, len(self._features), self._missing)


class _BalanceState:
    """Running class bincounts per assessed column behind the balance criterion."""

    def __init__(self, criterion: BalanceCriterion, dataset: Dataset, encoded: EncodedDataset) -> None:
        """Build class-count tables for every assessable column of the base."""
        self._criterion = criterion
        if dataset.has_target():
            self._candidates = None
            self._tracked = [dataset.target_column().name]
        else:
            self._candidates = [c.name for c in dataset.feature_columns() if not c.is_numeric()]
            self._tracked = list(self._candidates)
        self._counts = {
            name: BalanceCriterion._encoded_counts(encoded, name) for name in self._tracked
        }

    def update(self, merged: Dataset, encoded: EncodedDataset, start: int) -> None:
        """Fold the delta rows' class codes into the running count tables."""
        for name in self._tracked:
            codes, vocabulary, _ = encoded.codes_view(name)
            delta_codes = codes[start:]
            present = delta_codes[delta_codes >= 0]
            if present.size == 0:
                continue
            bincount = np.bincount(present, minlength=len(vocabulary))
            counts = self._counts[name]
            # New levels land at the end of the extended vocabulary, so
            # walking the nonzero codes in ascending order appends them in
            # exactly the first-seen order a fresh ``_encoded_counts`` of the
            # merged column would use.
            for code in np.flatnonzero(bincount).tolist():
                level = vocabulary[code]
                counts[level] = counts.get(level, 0) + int(bincount[code])

    def build(self, merged: Dataset, encoded: EncodedDataset) -> CriterionMeasure:
        """Choose the least-balanced column and materialise its measure."""
        criterion = self._criterion
        if self._candidates is None:
            column = merged.target_column()
            return criterion._build_measure(column, self._counts[column.name])
        if not self._candidates:
            return CriterionMeasure(criterion.name, 1.0, {"note": "no discrete column to assess"})
        chosen = min(
            self._candidates, key=lambda name: criterion._normalised_entropy(self._counts[name])
        )
        return criterion._build_measure(merged[chosen], self._counts[chosen])


class _DuplicationState:
    """Persisted seen-key sets and duplicate counters behind the duplication criterion.

    Keys are built from the encoded views, one vectorized pass per column
    (mirroring the criterion's encoded tier, whose partitioning the row-path
    equivalence suite already pins): numeric cells by ``np.round(v, 6)``
    (elementwise identical to the row path's ``round(value, 6)``), discrete
    cells by their append-stable vocabulary level, fuzzy keys by the
    per-*level* normalised form.  Every representation is value-based — never
    a dataset-relative code — so keys from earlier folds stay comparable as
    the vocabulary grows.
    """

    def __init__(self, criterion: DuplicationCriterion, dataset: Dataset, encoded: EncodedDataset) -> None:
        """Fold every base row's keys into the seen-sets and counters."""
        self._criterion = criterion
        self._columns = criterion._key_columns(dataset)
        self._exact_seen: set[tuple] = set()
        self._fuzzy_seen: set[tuple] = set()
        self._exact_duplicates = 0
        self._fuzzy_duplicates = 0
        self._fold(dataset, encoded, 0)

    @staticmethod
    def _numeric_key_cells(encoded: EncodedDataset, name: str, start: int) -> list:
        values, missing = encoded.numeric_view(name)
        cells = np.round(values[start:], 6).tolist()
        for i in np.flatnonzero(missing[start:]).tolist():
            cells[i] = "<missing>"
        return cells

    def _fold(self, dataset: Dataset, encoded: EncodedDataset, start: int) -> None:
        if start >= dataset.n_rows:
            return
        fuzzy = self._criterion.fuzzy
        exact_cols: list[list] = []
        fuzzy_cols: list[list] = []
        for name in self._columns:
            column = dataset[name]
            if column.is_numeric():
                cells = self._numeric_key_cells(encoded, name, start)
                exact_cols.append(cells)
                if fuzzy:
                    fuzzy_cols.append(cells)
                continue
            codes, vocabulary, _ = encoded.codes_view(name)
            # Missing cells share the literal "<missing>" key with any real
            # cell holding that text, deliberately matching the row path.
            exact_cols.append(
                ["<missing>" if c < 0 else vocabulary[c] for c in codes[start:].tolist()]
            )
            if not fuzzy:
                continue
            if column.ctype in _STRING_CTYPES:
                n_codes, levels = encoded.normalised_codes_view(name)
                fuzzy_cols.append(
                    ["<missing>" if c < 0 else levels[c] for c in n_codes[start:].tolist()]
                )
            else:
                fuzzy_cols.append(exact_cols[-1])
        exact_seen = self._exact_seen
        for key in zip(*exact_cols):
            if key in exact_seen:
                self._exact_duplicates += 1
            else:
                exact_seen.add(key)
        if fuzzy:
            fuzzy_seen = self._fuzzy_seen
            for key in zip(*fuzzy_cols):
                if key in fuzzy_seen:
                    self._fuzzy_duplicates += 1
                else:
                    fuzzy_seen.add(key)

    def update(self, merged: Dataset, encoded: EncodedDataset, start: int) -> None:
        """Fold the delta rows' keys into the seen-sets and counters."""
        self._fold(merged, encoded, start)

    def build(self, merged: Dataset, encoded: EncodedDataset) -> CriterionMeasure:
        """Materialise the criterion measure from the duplicate counters."""
        return self._criterion._build_measure(
            merged.n_rows, self._exact_duplicates, self._fuzzy_duplicates
        )


def _build_criterion_state(
    criterion: Criterion, dataset: Dataset, encoded: EncodedDataset
) -> Any | None:
    """A delta-maintainable state for ``criterion``, or ``None`` to fall back.

    Mirrors the ``_uses_reference_measure`` guard of the encoded tier: only
    the exact library classes (not subclasses, which may override
    ``measure``) with their reference implementation intact get a state, and
    an instance pinned to the row tier via ``_force_row_measure`` falls back
    too, so the profile stays bit-identical to ``measure_quality`` in every
    configuration.
    """
    if criterion._force_row_measure:
        return None
    if type(criterion) is CompletenessCriterion:
        return _CompletenessState(criterion, dataset, encoded)
    if type(criterion) is DimensionalityCriterion:
        return _DimensionalityState(criterion, dataset, encoded)
    if type(criterion) is BalanceCriterion:
        if dataset.has_target() and dataset.target_column().is_numeric():
            return None  # the batch tiers route numeric targets to the row path
        return _BalanceState(criterion, dataset, encoded)
    if type(criterion) is DuplicationCriterion:
        return _DuplicationState(criterion, dataset, encoded)
    return None


class IncrementalProfile:
    """O(len(delta)) refresh of a data quality profile.

    Construction measures the base dataset once and keeps running state for
    every criterion whose mathematics permit it (completeness,
    dimensionality, duplication, and balance over discrete columns — see
    :attr:`incremental_criteria`).  :meth:`refresh` updates those states from
    the appended rows only, recomputes the rest over the merged dataset's
    (extended) encoded views, and returns a profile bit-identical to
    ``measure_quality(merged, criteria)``.  Setting ``_force_full_refresh``
    pins every criterion to the batch recompute.
    """

    _force_full_refresh: bool = False

    def __init__(self, dataset: Dataset, criteria: Sequence[str | Criterion] | None = None) -> None:
        """Resolve ``criteria`` and seed a running state per incrementalizable one."""
        selected: list[Criterion] = []
        for item in criteria if criteria is not None else DEFAULT_CRITERIA:
            selected.append(item if isinstance(item, Criterion) else get_criterion(str(item)))
        self._criteria = selected
        self._dataset = dataset
        self._n_rows = dataset.n_rows
        self._build_states()

    def _build_states(self) -> None:
        encoded = encode_dataset(self._dataset)
        self._states = [
            _build_criterion_state(criterion, self._dataset, encoded) for criterion in self._criteria
        ]

    @property
    def incremental_criteria(self) -> list[str]:
        """Names of the criteria maintained by delta state."""
        return [c.name for c, s in zip(self._criteria, self._states) if s is not None]

    @property
    def fallback_criteria(self) -> list[str]:
        """Names of the criteria recomputed over the merged views at each refresh."""
        return [c.name for c, s in zip(self._criteria, self._states) if s is None]

    def _assemble(self, merged: Dataset, measures: Sequence[CriterionMeasure]) -> DataQualityProfile:
        profile = DataQualityProfile(dataset_name=merged.name)
        for criterion, measure in zip(self._criteria, measures):
            profile.measures[criterion.name] = measure
        return profile

    def profile(self) -> DataQualityProfile:
        """The profile of the rows folded in so far."""
        encoded = encode_dataset(self._dataset)
        measures = [
            criterion.measure_encoded(encoded) if state is None else state.build(self._dataset, encoded)
            for criterion, state in zip(self._criteria, self._states)
        ]
        return self._assemble(self._dataset, measures)

    def refresh(self, merged: Dataset) -> DataQualityProfile:
        """Fold the appended rows of ``merged`` in and return the refreshed profile."""
        _check_refresh_target(self._dataset, self._n_rows, merged)
        if self._force_full_refresh:
            self._dataset = merged
            self._n_rows = merged.n_rows
            self._build_states()
            return measure_quality(merged, self._criteria)
        start = self._n_rows
        encoded = encode_dataset(merged)
        measures: list[CriterionMeasure] = []
        for criterion, state in zip(self._criteria, self._states):
            if state is None:
                measures.append(criterion.measure_encoded(encoded))
            else:
                state.update(merged, encoded, start)
                measures.append(state.build(merged, encoded))
        self._dataset = merged
        self._n_rows = merged.n_rows
        return self._assemble(merged, measures)
