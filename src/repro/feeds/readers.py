"""Chunked/streaming readers: CSV and JSONL files as fixed-size dataset blocks.

Feeds deliver data in batches, and a batch may be far larger than the chunk a
caller wants to append and refresh in one step.  These readers stream a file
from disk and yield :class:`~repro.tabular.dataset.Dataset` blocks of at most
``chunk_rows`` rows each, without ever materialising the whole file's records
in memory.  Cell normalisation and error behaviour mirror the strict
whole-file readers: the CSV reader shares the quote-aware delimiter sniffer
(:func:`repro.tabular.sniff.sniff_delimiter`) and the missing-token mapping
of :mod:`repro.tabular.io_csv`, so reading a file in chunks and concatenating
the blocks reproduces ``read_csv`` of the same file bit for bit.

Column types are inferred from the first chunk and pinned for the rest of the
stream (pass explicit ``ctypes`` to override), so every yielded block is
schema-compatible with the first and can be fed straight into
:func:`repro.feeds.append.append_dataset`.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Iterator, Mapping, Sequence
from pathlib import Path
from typing import Any

from repro.exceptions import SchemaError
from repro.tabular.dataset import Dataset
from repro.tabular.io_csv import _normalise_cell
from repro.tabular.sniff import sniff_delimiter


def _normalise_record_cell(value: Any, line_number: int, key: str) -> Any:
    """Normalise one JSONL cell: map missing tokens in strings, reject nesting."""
    if isinstance(value, (dict, list)):
        raise SchemaError(
            f"line {line_number}: column {key!r} holds a nested {type(value).__name__}; "
            "feed records must be flat JSON objects"
        )
    if isinstance(value, str):
        return _normalise_cell(value)
    return value


class _ChunkBuilder:
    """Accumulate row dicts and build schema-pinned dataset blocks.

    The first flushed chunk fixes the column types (unless explicit
    ``ctypes`` pinned them up front); later chunks are coerced against that
    schema so all yielded blocks are mutually appendable.
    """

    def __init__(
        self,
        name: str,
        column_order: Sequence[str],
        ctypes: Mapping[str, str] | None,
        roles: Mapping[str, str] | None,
    ) -> None:
        """Remember the chunk schema hints; types pin on the first flush."""
        self.name = name
        self.column_order = list(column_order)
        self.ctypes = dict(ctypes) if ctypes else None
        self.roles = dict(roles) if roles else None
        self.records: list[dict[str, Any]] = []

    def flush(self) -> Dataset:
        """Build a dataset block from the buffered records and reset the buffer."""
        try:
            block = Dataset.from_rows(
                self.records,
                name=self.name,
                ctypes=self.ctypes,
                roles=self.roles,
                column_order=self.column_order,
            )
        except SchemaError:
            raise
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"chunk of {self.name!r} does not match the first chunk's column types: {exc}"
            ) from exc
        if self.ctypes is None:
            self.ctypes = {column.name: column.ctype for column in block.columns}
        self.records = []
        return block


def read_csv_chunks(
    path: str | Path,
    chunk_rows: int = 2000,
    name: str | None = None,
    delimiter: str | None = None,
    ctypes: Mapping[str, str] | None = None,
    roles: Mapping[str, str] | None = None,
    encoding: str = "utf-8",
) -> Iterator[Dataset]:
    """Stream a CSV file as dataset blocks of at most ``chunk_rows`` rows.

    Semantics match :func:`repro.tabular.io_csv.read_csv` exactly — same
    delimiter sniffing, missing-token normalisation, blank-row skipping,
    short-row padding and over-long-row rejection — except that the rows
    arrive as a sequence of blocks instead of one dataset.  Concatenating
    the blocks reproduces ``read_csv`` of the same file bit for bit whenever
    the first chunk infers the same column types the whole file would (pass
    explicit ``ctypes`` to pin them when in doubt).
    """
    if chunk_rows < 1:
        raise SchemaError(f"chunk_rows must be >= 1, got {chunk_rows}")
    path = Path(path)
    with open(path, "r", encoding=encoding, newline="") as handle:
        sample = handle.read(4096)
        if not sample.strip():
            raise SchemaError("empty CSV content")
        if delimiter is None:
            delimiter = sniff_delimiter(sample)
        handle.seek(0)
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header_raw = next(reader)
        except StopIteration:  # pragma: no cover - non-empty sample implies a line
            raise SchemaError("empty CSV content") from None
        header = [h.strip() for h in header_raw]
        if len(set(header)) != len(header):
            raise SchemaError(f"duplicate column names in CSV header: {header}")
        builder = _ChunkBuilder(name or path.stem, header, ctypes, roles)
        yielded = False
        row_number = 1
        while True:
            try:
                raw = next(reader)
            except StopIteration:
                break
            except csv.Error as exc:
                raise SchemaError(
                    f"malformed CSV near line {reader.line_num}: {exc} "
                    "(use repro.recovery.salvage_csv to repair damaged files)"
                ) from exc
            row_number += 1
            if not raw or all(not cell.strip() for cell in raw):
                continue
            if len(raw) > len(header):
                raise SchemaError(
                    f"row {row_number} has {len(raw)} cells but the header has {len(header)}: "
                    f"{raw!r} (use repro.recovery.salvage_csv to repair ragged files)"
                )
            padded = list(raw) + [None] * (len(header) - len(raw))
            builder.records.append({h: _normalise_cell(c) for h, c in zip(header, padded)})
            if len(builder.records) == chunk_rows:
                yield builder.flush()
                yielded = True
        if builder.records:
            yield builder.flush()
            yielded = True
        if not yielded:
            if row_number < 2:
                raise SchemaError("CSV must contain a header row and at least one data row")
            raise SchemaError("CSV contains a header but no data rows")


def read_jsonl_chunks(
    path: str | Path,
    chunk_rows: int = 2000,
    name: str | None = None,
    ctypes: Mapping[str, str] | None = None,
    roles: Mapping[str, str] | None = None,
    column_order: Sequence[str] | None = None,
    encoding: str = "utf-8",
) -> Iterator[Dataset]:
    """Stream a JSON-lines file as dataset blocks of at most ``chunk_rows`` rows.

    Each non-blank line must hold one flat JSON object; parse failures,
    non-object lines and nested values raise :class:`SchemaError` with the
    offending line number.  String cells pass through the same missing-token
    normalisation as the CSV readers.  The column set is fixed by
    ``column_order`` when given, otherwise by first-seen order across the
    first chunk — a key appearing only in a later chunk is an error, so all
    yielded blocks share one schema.
    """
    if chunk_rows < 1:
        raise SchemaError(f"chunk_rows must be >= 1, got {chunk_rows}")
    path = Path(path)
    order = list(column_order) if column_order is not None else None
    known = set(order) if order is not None else None
    builder: _ChunkBuilder | None = None
    yielded = False
    with open(path, "r", encoding=encoding, newline="") as handle:
        for line_number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"malformed JSON on line {line_number} of {path}: {exc}") from exc
            if not isinstance(record, dict):
                raise SchemaError(
                    f"line {line_number} of {path} holds a JSON {type(record).__name__}, "
                    "not an object"
                )
            record = {
                key: _normalise_record_cell(value, line_number, key)
                for key, value in record.items()
            }
            if known is not None:
                unknown = [key for key in record if key not in known]
                if unknown:
                    raise SchemaError(
                        f"line {line_number} of {path}: unknown column(s) {unknown}; "
                        f"expected a subset of {order}"
                    )
            if builder is None:
                builder = _ChunkBuilder(name or path.stem, order or [], ctypes, roles)
            builder.records.append(record)
            if len(builder.records) == chunk_rows:
                if known is None:
                    order = _first_seen_order(builder.records)
                    known = set(order)
                    builder.column_order = order
                yield builder.flush()
                yielded = True
        if builder is not None and builder.records:
            if known is None:
                order = _first_seen_order(builder.records)
                known = set(order)
                builder.column_order = order
            yield builder.flush()
            yielded = True
    if not yielded:
        raise SchemaError(f"{path} contains no records")


def _first_seen_order(records: Sequence[Mapping[str, Any]]) -> list[str]:
    """Column order as first seen across ``records`` (the ``from_rows`` default)."""
    order: list[str] = []
    for record in records:
        for key in record:
            if key not in order:
                order.append(key)
    return order


def read_jsonl(
    path: str | Path,
    name: str | None = None,
    ctypes: Mapping[str, str] | None = None,
    roles: Mapping[str, str] | None = None,
    column_order: Sequence[str] | None = None,
    encoding: str = "utf-8",
) -> Dataset:
    """Read a whole JSON-lines file into one dataset (chunked under the hood)."""
    combined: Dataset | None = None
    for block in read_jsonl_chunks(
        path, name=name, ctypes=ctypes, roles=roles, column_order=column_order, encoding=encoding
    ):
        combined = block if combined is None else combined.concat(block)
    assert combined is not None  # read_jsonl_chunks raises on empty input
    return combined
