"""Offline feed connector: cursor-based delta queries against fixture feeds.

Production open-data sources are feeds, not files: a registry endpoint is
polled with "give me everything after cursor X" queries, pages of a bounded
size come back, and the client throttles itself between pages and retries
transient failures.  This module reproduces that access pattern offline —
the shape follows the MaStR bulk-download clients (a ``--datum-ab``-style
delta query plus ``--limit`` page size and ``--sleep`` throttling) — so the
incremental-ingestion pipeline can be exercised and tested hermetically:

* :class:`FixtureFeed` serves records from a JSONL file, or a directory of
  JSONL batch files consumed in sorted filename order, filtered by a cursor
  field (records whose cursor sorts *after* the requested value);
* :class:`FeedConnector` drives a feed page by page with retry/sleep
  throttling and assembles the fetched records into datasets ready for
  :func:`repro.feeds.append.append_rows`.
"""

from __future__ import annotations

import json
import time
from collections.abc import Iterator, Mapping, Sequence
from pathlib import Path
from typing import Any, Callable

from repro.exceptions import FeedError, FeedTransientError, SchemaError
from repro.feeds.readers import _normalise_record_cell
from repro.tabular.dataset import Dataset


class FixtureFeed:
    """A paged feed backed by JSONL fixtures on disk.

    ``root`` may be a single ``.jsonl`` file or a directory of batch files
    (consumed in sorted filename order, the order a feed would have
    published them).  Records are flat JSON objects; string cells pass
    through the same missing-token normalisation as the file readers.

    ``page(offset, limit, since=...)`` returns one page of the records whose
    ``cursor_field`` value sorts lexicographically *after* ``since`` (ISO
    timestamps sort correctly this way); records lacking the cursor field
    are only served by unfiltered queries.
    """

    def __init__(self, root: str | Path, cursor_field: str = "datum") -> None:
        """Index the fixture file (or directory of batch files) under ``root``."""
        self.root = Path(root)
        self.cursor_field = cursor_field
        if self.root.is_file():
            self._batch_paths = [self.root]
        elif self.root.is_dir():
            self._batch_paths = sorted(self.root.glob("*.jsonl"))
            if not self._batch_paths:
                raise FeedError(f"feed fixture {self.root} contains no .jsonl batch files")
        else:
            raise FeedError(f"feed fixture {self.root} does not exist")
        self._records: list[dict[str, Any]] | None = None

    @property
    def batch_paths(self) -> list[Path]:
        """The fixture files this feed serves, in publication order."""
        return list(self._batch_paths)

    def _load(self) -> list[dict[str, Any]]:
        if self._records is not None:
            return self._records
        records: list[dict[str, Any]] = []
        for path in self._batch_paths:
            with open(path, "r", encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    if not line.strip():
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise FeedError(
                            f"feed fixture {path}: malformed JSON on line {line_number}: {exc}"
                        ) from exc
                    if not isinstance(record, dict):
                        raise FeedError(
                            f"feed fixture {path}: line {line_number} holds a JSON "
                            f"{type(record).__name__}, not an object"
                        )
                    records.append(
                        {
                            key: _normalise_record_cell(value, line_number, key)
                            for key, value in record.items()
                        }
                    )
        self._records = records
        return records

    def page(self, offset: int, limit: int, since: str | None = None) -> list[dict[str, Any]]:
        """Return up to ``limit`` records starting at ``offset`` of the delta after ``since``."""
        records = self._load()
        if since is not None:
            records = [r for r in records if str(r.get(self.cursor_field, "")) > since]
        return records[offset : offset + limit]


class FeedConnector:
    """Page-by-page feed client with retry and sleep throttling.

    The connector repeatedly asks the feed for the next page of ``page_size``
    records (stopping at the first short or empty page), sleeps ``throttle``
    seconds between pages, and retries a page up to ``max_retries`` times
    when the feed raises :class:`FeedTransientError` (waiting ``retry_wait``
    seconds between attempts) before giving up with :class:`FeedError`.
    ``_sleep`` is injectable so tests can count waits instead of waiting.
    """

    def __init__(
        self,
        feed: FixtureFeed,
        page_size: int = 2000,
        throttle: float = 0.0,
        max_retries: int = 3,
        retry_wait: float = 0.5,
        _sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        """Wrap ``feed`` with paging, throttling and transient-error retries."""
        if page_size < 1:
            raise FeedError(f"page_size must be >= 1, got {page_size}")
        if max_retries < 0:
            raise FeedError(f"max_retries must be >= 0, got {max_retries}")
        self.feed = feed
        self.page_size = page_size
        self.throttle = throttle
        self.max_retries = max_retries
        self.retry_wait = retry_wait
        self._sleep = _sleep

    def pages(self, since: str | None = None) -> Iterator[list[dict[str, Any]]]:
        """Yield pages of records newer than ``since`` until the feed runs dry."""
        offset = 0
        first = True
        while True:
            if not first and self.throttle > 0:
                self._sleep(self.throttle)
            first = False
            page = self._page_with_retries(offset, since)
            if not page:
                return
            yield page
            if len(page) < self.page_size:
                return
            offset += len(page)

    def _page_with_retries(self, offset: int, since: str | None) -> list[dict[str, Any]]:
        attempt = 0
        while True:
            try:
                return self.feed.page(offset, self.page_size, since=since)
            except FeedTransientError as exc:
                attempt += 1
                if attempt > self.max_retries:
                    raise FeedError(
                        f"feed page at offset {offset} still failing after "
                        f"{self.max_retries} retries: {exc}"
                    ) from exc
                self._sleep(self.retry_wait)

    def records(self, since: str | None = None) -> list[dict[str, Any]]:
        """Fetch and flatten every page of records newer than ``since``."""
        fetched: list[dict[str, Any]] = []
        for page in self.pages(since=since):
            fetched.extend(page)
        return fetched

    def fetch_dataset(
        self,
        since: str | None = None,
        name: str = "feed",
        ctypes: Mapping[str, str] | None = None,
        roles: Mapping[str, str] | None = None,
        column_order: Sequence[str] | None = None,
    ) -> Dataset | None:
        """Fetch the delta after ``since`` as one dataset, or ``None`` when empty."""
        rows = self.records(since=since)
        if not rows:
            return None
        try:
            return Dataset.from_rows(
                rows, name=name, ctypes=ctypes, roles=roles, column_order=column_order
            )
        except SchemaError:
            raise
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"feed records do not fit the requested schema: {exc}") from exc
