"""Appendable datasets: schema-checked row/dataset appends that extend encodings.

A feed batch arriving against a 100k-row base must not force the base's
columns back through per-cell encoding.  ``append_dataset`` concatenates a
schema-compatible delta onto a base dataset and — when the base already
carries encoded views — seeds the merged dataset's encoding by extending
those views with the delta's encoded block (see
:func:`repro.tabular.encoded.extend_encoding`).  ``append_rows`` is the
row-dictionary front end the CLI and connectors use: it coerces raw records
against the base's schema first, so a schema-incompatible delta fails loudly
as a :class:`~repro.exceptions.SchemaError` before anything is merged.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from repro.exceptions import SchemaError
from repro.tabular.dataset import Dataset


def append_dataset(base: Dataset, delta: Dataset, name: str | None = None) -> Dataset:
    """Return ``base`` with ``delta``'s rows appended, extending cached encodings.

    ``delta`` must carry exactly the base's column names (in order) with the
    same ctypes; anything else raises :class:`SchemaError` mentioning the
    mismatch.  Roles follow the base.  The merged dataset keeps the base's
    name unless ``name`` overrides it.  Appending never re-encodes base rows:
    views cached on the base are extended in O(len(delta)) and remain
    bit-identical to a cold re-encode of the merged data.
    """
    if base.column_names != delta.column_names:
        raise SchemaError(
            f"schema-incompatible delta for dataset {base.name!r}: base columns "
            f"{base.column_names} != delta columns {delta.column_names}"
        )
    for column_name in base.column_names:
        base_ctype = base[column_name].ctype
        delta_ctype = delta[column_name].ctype
        if base_ctype != delta_ctype:
            raise SchemaError(
                f"schema-incompatible delta for dataset {base.name!r}: column "
                f"{column_name!r} is {base_ctype} in the base but {delta_ctype} in the delta"
            )
    merged = base.concat(delta)
    if name is not None:
        merged.name = name
    return merged


def append_rows(
    base: Dataset, rows: Sequence[Mapping[str, Any]], name: str | None = None
) -> Dataset:
    """Append row dictionaries to ``base``, coercing them against its schema.

    Each row may supply any subset of the base's columns (absent keys become
    missing cells); a key outside the base's columns, or a cell that cannot
    be coerced to the column's ctype, raises :class:`SchemaError`.  An empty
    ``rows`` sequence returns ``base`` itself unchanged.  Delegates to
    :func:`append_dataset`, so cached encodings are extended, not rebuilt.
    """
    rows = [dict(row) for row in rows]
    if not rows:
        return base
    known = set(base.column_names)
    for position, row in enumerate(rows):
        unknown = [key for key in row if key not in known]
        if unknown:
            raise SchemaError(
                f"schema-incompatible rows for dataset {base.name!r}: row {position} has "
                f"unknown column(s) {unknown}; expected a subset of {base.column_names}"
            )
    ctypes = {column.name: column.ctype for column in base.columns}
    roles = {column.name: column.role for column in base.columns}
    try:
        delta = Dataset.from_rows(
            rows,
            name=f"{base.name}_delta",
            ctypes=ctypes,
            roles=roles,
            column_order=base.column_names,
        )
    except SchemaError:
        raise
    except (TypeError, ValueError) as exc:
        raise SchemaError(
            f"schema-incompatible rows for dataset {base.name!r}: {exc}"
        ) from exc
    return append_dataset(base, delta, name=name)
