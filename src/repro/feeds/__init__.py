"""Incremental ingestion: feeds, appends, and O(|delta|) refresh of derived state.

Production open-data sources are feeds, not files: batches keep arriving, and
recomputing every profile, cube and index from scratch per batch is O(n) work
for an O(|delta|) change.  This subpackage closes that gap end to end:

* :mod:`repro.feeds.readers` — chunked CSV/JSONL readers that stream a file
  as fixed-size dataset blocks;
* :mod:`repro.feeds.connector` — an offline, cursor-based feed connector
  (fixture-backed, with paging, retry and sleep throttling);
* :mod:`repro.feeds.append` — schema-checked appends whose merged datasets
  extend the base's encoded views instead of re-encoding
  (:func:`repro.tabular.encoded.extend_encoding`);
* :mod:`repro.feeds.incremental` — delta maintenance of quality profiles,
  group-by/cube aggregates and KPI scoreboards, bit-identical to the batch
  recompute, with ``_force_full_refresh`` hatches and automatic fallback
  where the math does not permit a fold.

The ``repro ingest`` CLI ties these to the persistence and serving tiers:
append a feed batch to a ``.rps`` store and ``POST /reload`` a running
server, so the pipeline is feed → append → refresh → snapshot → reload.
"""

from repro.feeds.append import append_dataset, append_rows
from repro.feeds.connector import FeedConnector, FixtureFeed
from repro.feeds.incremental import (
    IncrementalGroupBy,
    IncrementalKPIBoard,
    IncrementalProfile,
    incremental_cube_aggregate,
)
from repro.feeds.readers import read_csv_chunks, read_jsonl, read_jsonl_chunks

__all__ = [
    "append_dataset",
    "append_rows",
    "FeedConnector",
    "FixtureFeed",
    "IncrementalGroupBy",
    "IncrementalKPIBoard",
    "IncrementalProfile",
    "incremental_cube_aggregate",
    "read_csv_chunks",
    "read_jsonl",
    "read_jsonl_chunks",
]
