"""Key performance indicators for dashboards.

A :class:`KPI` evaluates to a single number for a whole dataset
(:meth:`KPI.value`) or to one number per group of an OLAP cube level
(:func:`evaluate_kpis_by_level`).  The per-level evaluation rides on the
two-tier :func:`~repro.tabular.transforms.group_by`: it runs vectorized over
the cube dataset's cached encoded views by default and on the row-at-a-time
reference path when the cube's ``_force_row_olap`` escape hatch is set, with
bit-identical results either way.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.bi.olap import Cube
from repro.exceptions import ReproError
from repro.tabular.dataset import ColumnType, Dataset
from repro.tabular.stats import numeric_summary
from repro.tabular.transforms import group_by


@dataclass(frozen=True)
class KPI:
    """A named indicator computed from a dataset.

    ``compute`` is either the name of a numeric column (its mean is used) or a
    callable ``dataset → float``.  The status is ``good`` when the value is on
    the right side of ``target`` (per ``higher_is_better``), ``warning`` when
    within ``tolerance`` of it, ``bad`` otherwise.
    """

    name: str
    compute: str | Callable[[Dataset], float]
    target: float
    higher_is_better: bool = True
    tolerance: float = 0.1
    description: str = ""

    def value(self, dataset: Dataset) -> float:
        """Evaluate the indicator over the whole dataset.

        Column KPIs use the column mean from
        :func:`~repro.tabular.stats.numeric_summary` (computed on the column's
        array, missing cells excluded); callable KPIs call ``compute`` with
        the dataset.
        """
        if callable(self.compute):
            return float(self.compute(dataset))
        if self.compute not in dataset:
            raise ReproError(f"KPI {self.name!r} references unknown column {self.compute!r}")
        return float(numeric_summary(dataset[self.compute])["mean"])

    def grade(self, value: float) -> str:
        """Return the traffic-light label (``good``/``warning``/``bad``) for ``value``."""
        if self.higher_is_better:
            good = value >= self.target
            warning = value >= self.target * (1.0 - self.tolerance)
        else:
            good = value <= self.target
            warning = value <= self.target * (1.0 + self.tolerance)
        return "good" if good else ("warning" if warning else "bad")

    def status(self, dataset: Dataset) -> dict[str, Any]:
        """Evaluate the KPI and return value, target and traffic-light status."""
        value = self.value(dataset)
        return {
            "kpi": self.name,
            "value": value,
            "target": self.target,
            "status": self.grade(value),
            "higher_is_better": self.higher_is_better,
            "description": self.description,
        }


def evaluate_kpis(kpis: Sequence[KPI], dataset: Dataset) -> list[dict[str, Any]]:
    """Evaluate a list of KPIs against one dataset (whole-dataset values)."""
    if not kpis:
        raise ReproError("no KPIs to evaluate")
    return [kpi.status(dataset) for kpi in kpis]


def evaluate_kpis_by_level(kpis: Sequence[KPI], cube: Cube, level: str) -> Dataset:
    """Evaluate column KPIs per group of one cube dimension level.

    Returns a dataset with one row per distinct ``level`` value (in first-seen
    order), holding each KPI's per-group mean and its traffic-light status
    column (``<name>_status``).  The group means come from the cube's two-tier
    ``group_by`` — vectorized over the encoded views unless the cube's
    ``_force_row_olap`` escape hatch routes to the row-at-a-time reference —
    so both paths produce bit-identical scoreboards.

    Only column KPIs are supported here: a callable ``compute`` cannot be
    pushed into the grouped aggregation and raises :class:`ReproError`.
    """
    if not kpis:
        raise ReproError("no KPIs to evaluate")
    aggregations: dict[str, tuple[str, str]] = {}
    out_columns = {level}
    for kpi in kpis:
        if callable(kpi.compute):
            raise ReproError(
                f"KPI {kpi.name!r} uses a callable; per-level evaluation needs a column name"
            )
        if kpi.compute not in cube.dataset:
            raise ReproError(f"KPI {kpi.name!r} references unknown column {kpi.compute!r}")
        if not cube.dataset[kpi.compute].is_numeric():
            raise ReproError(f"KPI {kpi.name!r} references non-numeric column {kpi.compute!r}")
        for column in (kpi.name, f"{kpi.name}_status"):
            if column in out_columns:
                raise ReproError(
                    f"KPI {kpi.name!r} collides with the {column!r} scoreboard column; "
                    "KPI names must be unique and differ from the level column"
                )
            out_columns.add(column)
        aggregations[kpi.name] = (kpi.compute, "mean")
    grouped = group_by(cube.dataset, [level], aggregations, force_row=cube._force_row_olap)
    out_rows: list[dict[str, Any]] = []
    for row in grouped.iter_rows():
        out: dict[str, Any] = {level: row[level]}
        for kpi in kpis:
            value = row[kpi.name]
            out[kpi.name] = value
            out[f"{kpi.name}_status"] = kpi.grade(float(value))
        out_rows.append(out)
    ctypes = {level: cube.dataset[level].ctype}
    for kpi in kpis:
        ctypes[kpi.name] = ColumnType.NUMERIC
        ctypes[f"{kpi.name}_status"] = ColumnType.CATEGORICAL
    return Dataset.from_rows(out_rows, name=f"{cube.name}_kpis_by_{level}", ctypes=ctypes)
