"""Key performance indicators for dashboards."""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.exceptions import ReproError
from repro.tabular.dataset import Dataset
from repro.tabular.stats import numeric_summary


@dataclass(frozen=True)
class KPI:
    """A named indicator computed from a dataset.

    ``compute`` is either the name of a numeric column (its mean is used) or a
    callable ``dataset → float``.  The status is ``good`` when the value is on
    the right side of ``target`` (per ``higher_is_better``), ``warning`` when
    within ``tolerance`` of it, ``bad`` otherwise.
    """

    name: str
    compute: str | Callable[[Dataset], float]
    target: float
    higher_is_better: bool = True
    tolerance: float = 0.1
    description: str = ""

    def value(self, dataset: Dataset) -> float:
        if callable(self.compute):
            return float(self.compute(dataset))
        if self.compute not in dataset:
            raise ReproError(f"KPI {self.name!r} references unknown column {self.compute!r}")
        return float(numeric_summary(dataset[self.compute])["mean"])

    def status(self, dataset: Dataset) -> dict[str, Any]:
        """Evaluate the KPI and return value, target and traffic-light status."""
        value = self.value(dataset)
        if self.higher_is_better:
            good = value >= self.target
            warning = value >= self.target * (1.0 - self.tolerance)
        else:
            good = value <= self.target
            warning = value <= self.target * (1.0 + self.tolerance)
        label = "good" if good else ("warning" if warning else "bad")
        return {
            "kpi": self.name,
            "value": value,
            "target": self.target,
            "status": label,
            "higher_is_better": self.higher_is_better,
            "description": self.description,
        }


def evaluate_kpis(kpis: Sequence[KPI], dataset: Dataset) -> list[dict[str, Any]]:
    """Evaluate a list of KPIs against one dataset."""
    if not kpis:
        raise ReproError("no KPIs to evaluate")
    return [kpi.status(dataset) for kpi in kpis]
