"""The OpenBI front end: OLAP, reporting, dashboards, KPIs and LOD sharing.

The paper positions OpenBI as giving citizens "reporting, OLAP analysis,
dashboards or data mining" over LOD, plus the ability to share what they learn
back as LOD.  This subpackage implements those user-facing pieces on top of
the tabular, quality, mining and core layers.  The OLAP/KPI aggregations run
on the encoded-matrix execution core (see ``docs/encoded-core.md``) with a
retained, bit-identical row-at-a-time reference path.
"""

from repro.bi.olap import Cube, Dimension, Measure
from repro.bi.reporting import Report, cube_report, dataset_to_table_text
from repro.bi.kpi import KPI, evaluate_kpis, evaluate_kpis_by_level
from repro.bi.dashboard import Dashboard
from repro.bi.charts import bar_chart, series_chart, sparkline
from repro.bi.sharing import share_report_as_lod, share_cube_as_lod, share_recommendation_as_lod

__all__ = [
    "Cube",
    "Dimension",
    "Measure",
    "Report",
    "cube_report",
    "dataset_to_table_text",
    "KPI",
    "evaluate_kpis",
    "evaluate_kpis_by_level",
    "Dashboard",
    "bar_chart",
    "series_chart",
    "sparkline",
    "share_report_as_lod",
    "share_cube_as_lod",
    "share_recommendation_as_lod",
]
