"""The OpenBI front end: OLAP, reporting, dashboards, KPIs and LOD sharing.

The paper positions OpenBI as giving citizens "reporting, OLAP analysis,
dashboards or data mining" over LOD, plus the ability to share what they learn
back as LOD.  This subpackage implements those user-facing pieces on top of
the tabular, quality, mining and core layers.
"""

from repro.bi.olap import Cube, Dimension, Measure
from repro.bi.reporting import Report, dataset_to_table_text
from repro.bi.kpi import KPI, evaluate_kpis
from repro.bi.dashboard import Dashboard
from repro.bi.charts import bar_chart, series_chart, sparkline
from repro.bi.sharing import share_report_as_lod, share_cube_as_lod, share_recommendation_as_lod

__all__ = [
    "Cube",
    "Dimension",
    "Measure",
    "Report",
    "dataset_to_table_text",
    "KPI",
    "evaluate_kpis",
    "Dashboard",
    "bar_chart",
    "series_chart",
    "sparkline",
    "share_report_as_lod",
    "share_cube_as_lod",
    "share_recommendation_as_lod",
]
