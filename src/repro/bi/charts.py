"""Plain-text charts for user-friendly reports and dashboards.

The OpenBI front end targets citizens reading reports in a browser or a
terminal; these helpers render the two chart types the benchmarks and
dashboards need — horizontal bar charts for categorical breakdowns and simple
line/series charts for severity sweeps — without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.exceptions import ReproError


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    title: str | None = None,
    sort: bool = True,
    fill: str = "#",
) -> str:
    """Render a horizontal bar chart of label → value.

    Bars are scaled to the maximum absolute value; negative values are drawn
    with ``-`` so budget deficits and quality drops stay visible.
    """
    if not values:
        raise ReproError("bar_chart needs at least one value")
    if width < 5:
        raise ReproError("width must be at least 5")
    items = list(values.items())
    if sort:
        items.sort(key=lambda kv: -kv[1])
    peak = max(abs(v) for _, v in items) or 1.0
    label_width = max(len(str(label)) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        length = int(round(abs(value) / peak * width))
        bar = (fill if value >= 0 else "-") * length
        lines.append(f"{str(label).ljust(label_width)}  {bar} {value:.3g}")
    return "\n".join(lines)


def series_chart(
    series: Mapping[str, Mapping[float, float]],
    width: int = 50,
    height: int = 12,
    title: str | None = None,
) -> str:
    """Render several named (x → y) series as an ASCII scatter/line chart.

    Each series is drawn with its own symbol; the legend maps symbols back to
    names.  Intended for the Phase-1 sensitivity sweeps (severity on the x
    axis, accuracy on the y axis).
    """
    if not series:
        raise ReproError("series_chart needs at least one series")
    symbols = "ox+*@%&$"
    xs = sorted({x for points in series.values() for x in points})
    ys = [y for points in series.values() for y in points.values()]
    if not xs or not ys:
        raise ReproError("series_chart needs at least one point")
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * (width + 1) for _ in range(height + 1)]
    for index, (name, points) in enumerate(sorted(series.items())):
        symbol = symbols[index % len(symbols)]
        for x, y in points.items():
            column = int(round((x - x_low) / x_span * width))
            row = height - int(round((y - y_low) / y_span * height))
            grid[row][column] = symbol

    lines = [title] if title else []
    lines.append(f"{y_high:8.3f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 9 + "|" + "".join(row))
    lines.append(f"{y_low:8.3f} +" + "".join(grid[-1]))
    lines.append(" " * 10 + f"{x_low:<10.3g}" + " " * max(width - 20, 0) + f"{x_high:>10.3g}")
    legend = "   ".join(
        f"{symbols[i % len(symbols)]} = {name}" for i, name in enumerate(sorted(series))
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Render a compact one-line trend (used in dashboard KPI panels)."""
    if not values:
        raise ReproError("sparkline needs at least one value")
    blocks = "▁▂▃▄▅▆▇█"
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    return "".join(blocks[int((v - low) / span * (len(blocks) - 1))] for v in values)
