"""Report generation: plain-text / Markdown / HTML documents for citizens.

Besides free-form :class:`Report` building, :func:`cube_report` turns an OLAP
:class:`~repro.bi.olap.Cube` into a ready-made report; its tables come from
the cube's vectorized encoded-path aggregations (or the row-at-a-time
reference when the cube's ``_force_row_olap`` escape hatch is set — the
rendered output is identical either way because the aggregated datasets are
bit-identical).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.bi.olap import Cube
from repro.exceptions import ReproError
from repro.tabular.dataset import Dataset, is_missing_value


def _format_cell(value: Any) -> str:
    """Render one table cell: blank for missing, trimmed precision for floats."""
    if is_missing_value(value):
        return ""
    if isinstance(value, float):
        return f"{int(value)}" if value.is_integer() else f"{value:.4g}"
    return str(value)


def dataset_to_table_text(dataset: Dataset, max_rows: int | None = 25, fmt: str = "text") -> str:
    """Render a dataset as an aligned text table, a Markdown table or HTML."""
    if fmt not in ("text", "markdown", "html"):
        raise ReproError(f"unknown table format {fmt!r}")
    rows = dataset.to_rows()
    truncated = False
    if max_rows is not None and len(rows) > max_rows:
        rows = rows[:max_rows]
        truncated = True
    header = dataset.column_names
    rendered = [[_format_cell(row[name]) for name in header] for row in rows]

    if fmt == "html":
        lines = ["<table>", "  <tr>" + "".join(f"<th>{h}</th>" for h in header) + "</tr>"]
        for cells in rendered:
            lines.append("  <tr>" + "".join(f"<td>{c}</td>" for c in cells) + "</tr>")
        lines.append("</table>")
        if truncated:
            lines.append(f"<p>... {dataset.n_rows - max_rows} more rows</p>")
        return "\n".join(lines)

    if fmt == "markdown":
        lines = ["| " + " | ".join(header) + " |", "|" + "---|" * len(header)]
        lines.extend("| " + " | ".join(cells) + " |" for cells in rendered)
        if truncated:
            lines.append(f"| ... {dataset.n_rows - max_rows} more rows |" + " |" * (len(header) - 1))
        return "\n".join(lines)

    widths = [len(h) for h in header]
    for cells in rendered:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    lines.extend("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)) for cells in rendered)
    if truncated:
        lines.append(f"... {dataset.n_rows - max_rows} more rows")
    return "\n".join(lines)


@dataclass
class _Section:
    """One report section: a title plus a text, table or key/value body."""

    title: str
    kind: str  # "text" | "table" | "keyvalue"
    body: Any


@dataclass
class Report:
    """A titled sequence of text, table and key/value sections."""

    title: str
    sections: list[_Section] = field(default_factory=list)

    def add_text(self, title: str, text: str) -> "Report":
        """Append a prose section."""
        self.sections.append(_Section(title, "text", text))
        return self

    def add_table(self, title: str, dataset: Dataset, max_rows: int | None = 25) -> "Report":
        """Append a tabular section."""
        self.sections.append(_Section(title, "table", (dataset, max_rows)))
        return self

    def add_key_values(self, title: str, values: Mapping[str, Any]) -> "Report":
        """Append a key/value (metrics, KPI) section."""
        self.sections.append(_Section(title, "keyvalue", dict(values)))
        return self

    def render(self, fmt: str = "text") -> str:
        """Render the report as ``text``, ``markdown`` or ``html``."""
        if fmt not in ("text", "markdown", "html"):
            raise ReproError(f"unknown report format {fmt!r}")
        lines: list[str] = []
        if fmt == "markdown":
            lines.append(f"# {self.title}")
        elif fmt == "html":
            lines.append(f"<h1>{self.title}</h1>")
        else:
            lines.extend([self.title, "=" * len(self.title)])
        for section in self.sections:
            lines.append("")
            if fmt == "markdown":
                lines.append(f"## {section.title}")
            elif fmt == "html":
                lines.append(f"<h2>{section.title}</h2>")
            else:
                lines.extend([section.title, "-" * len(section.title)])
            if section.kind == "text":
                text = str(section.body)
                lines.append(f"<p>{text}</p>" if fmt == "html" else text)
            elif section.kind == "table":
                dataset, max_rows = section.body
                table_fmt = fmt if fmt != "text" else "text"
                lines.append(dataset_to_table_text(dataset, max_rows=max_rows, fmt=table_fmt))
            else:
                items = section.body
                if fmt == "html":
                    lines.append("<ul>")
                    lines.extend(f"  <li><b>{k}</b>: {_format_cell(v)}</li>" for k, v in items.items())
                    lines.append("</ul>")
                elif fmt == "markdown":
                    lines.extend(f"* **{k}**: {_format_cell(v)}" for k, v in items.items())
                else:
                    width = max((len(str(k)) for k in items), default=0)
                    lines.extend(f"{str(k).ljust(width)} : {_format_cell(v)}" for k, v in items.items())
        return "\n".join(lines)


def cube_report(
    cube: Cube,
    levels: Sequence[str] | None = None,
    max_rows: int | None = 25,
) -> Report:
    """Build a :class:`Report` from an OLAP cube.

    The report opens with a "Grand totals" key/value section (one entry per
    measure) followed by one aggregate table per requested level.  ``levels``
    defaults to the finest level of every cube dimension.  All numbers come
    from :meth:`~repro.bi.olap.Cube.aggregate`, i.e. from the cube's two-tier
    encoded/row execution.
    """
    levels = list(levels) if levels is not None else [d.finest_level for d in cube.dimensions]
    totals = cube.aggregate()
    report = Report(cube.name)
    report.add_key_values(
        "Grand totals", {measure.name: totals[measure.name][0] for measure in cube.measures}
    )
    for level in levels:
        report.add_table(f"By {level}", cube.aggregate([level]), max_rows=max_rows)
    return report
