"""Sharing OpenBI artefacts back as Linked Open Data.

Closing the loop of the paper's §1: after analysing LOD, the citizen shares
"the new acquired information as LOD to be reused by anyone".  These helpers
publish reports, OLAP aggregations and algorithm recommendations through the
:mod:`repro.lod.publish` vocabulary.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bi.olap import Cube
from repro.bi.reporting import Report
from repro.core.advisor import Recommendation
from repro.lod.graph import Graph
from repro.lod.publish import publish_dataset, publish_recommendation
from repro.lod.terms import IRI, Literal
from repro.lod.vocabulary import DCTERMS, OPENBI, RDF


def share_report_as_lod(report: Report, base_iri: str = "http://openbi.example.org/data/", graph: Graph | None = None) -> Graph:
    """Publish a report's structure (title + section titles) as LOD."""
    graph = graph or Graph(f"{base_iri}graph/report")
    slug = "".join(ch if ch.isalnum() else "-" for ch in report.title.lower()).strip("-") or "report"
    report_iri = IRI(f"{base_iri}report/{slug}")
    graph.add(report_iri, RDF.type, OPENBI.Report)
    graph.add(report_iri, DCTERMS.title, Literal(report.title))
    for index, section in enumerate(report.sections):
        section_iri = IRI(f"{base_iri}report/{slug}/section/{index}")
        graph.add(section_iri, RDF.type, OPENBI.ReportSection)
        graph.add(section_iri, DCTERMS.isPartOf, report_iri)
        graph.add(section_iri, DCTERMS.title, Literal(section.title))
        graph.add(section_iri, OPENBI.sectionKind, Literal(section.kind))
    return graph


def share_cube_as_lod(
    cube: Cube,
    levels: Sequence[str],
    base_iri: str = "http://openbi.example.org/data/",
    graph: Graph | None = None,
) -> Graph:
    """Publish an OLAP aggregation of the cube as a ``qb`` data cube."""
    aggregated = cube.aggregate(list(levels))
    aggregated.name = f"{cube.name}-by-{'-'.join(levels)}"
    return publish_dataset(aggregated, base_iri=base_iri, graph=graph, title=aggregated.name)


def share_recommendation_as_lod(
    recommendation: Recommendation,
    base_iri: str = "http://openbi.example.org/data/",
    graph: Graph | None = None,
) -> Graph:
    """Publish an advisor recommendation (and its rationale) as LOD."""
    return publish_recommendation(
        dataset_name=recommendation.dataset,
        algorithm=recommendation.best_algorithm,
        score=recommendation.expected_score,
        rationale=recommendation.rationale,
        base_iri=base_iri,
        graph=graph,
    )
