"""A small OLAP engine over :class:`~repro.tabular.dataset.Dataset`.

A :class:`Cube` is defined by dimensions (categorical columns, optionally with
a level hierarchy) and measures (numeric columns with an aggregation).  The
classic operations — roll-up, drill-down, slice, dice and pivot — all return
ordinary datasets so their results can be reported, mined or shared as LOD.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.exceptions import OLAPError
from repro.tabular.dataset import Dataset, is_missing_value
from repro.tabular.transforms import group_by


@dataclass(frozen=True)
class Dimension:
    """A cube dimension.

    ``levels`` orders the columns from coarsest to finest (e.g. ``["year"]``
    or ``["district"]``); a single-column dimension is the common case.
    """

    name: str
    levels: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise OLAPError(f"dimension {self.name!r} needs at least one level")

    @property
    def finest_level(self) -> str:
        return self.levels[-1]


@dataclass(frozen=True)
class Measure:
    """A cube measure: a numeric source column and an aggregation function."""

    name: str
    column: str
    aggregation: str = "sum"

    def __post_init__(self) -> None:
        if self.aggregation not in ("sum", "mean", "min", "max", "count", "std", "median"):
            raise OLAPError(f"unsupported aggregation {self.aggregation!r} for measure {self.name!r}")


class Cube:
    """A multidimensional view over a dataset."""

    def __init__(self, dataset: Dataset, dimensions: Sequence[Dimension], measures: Sequence[Measure], name: str | None = None) -> None:
        if not dimensions:
            raise OLAPError("a cube needs at least one dimension")
        if not measures:
            raise OLAPError("a cube needs at least one measure")
        for dimension in dimensions:
            for level in dimension.levels:
                if level not in dataset:
                    raise OLAPError(f"dimension level {level!r} is not a column of {dataset.name!r}")
        for measure in measures:
            if measure.column not in dataset:
                raise OLAPError(f"measure column {measure.column!r} is not a column of {dataset.name!r}")
            if not dataset[measure.column].is_numeric():
                raise OLAPError(f"measure column {measure.column!r} must be numeric")
        self.dataset = dataset
        self.dimensions = list(dimensions)
        self.measures = list(measures)
        self.name = name or f"{dataset.name}_cube"

    # -- helpers --------------------------------------------------------------

    def dimension(self, name: str) -> Dimension:
        for dimension in self.dimensions:
            if dimension.name == name:
                return dimension
        raise OLAPError(f"cube {self.name!r} has no dimension {name!r}")

    def _aggregations(self) -> dict[str, tuple[str, str]]:
        return {measure.name: (measure.column, measure.aggregation) for measure in self.measures}

    # -- core operations ----------------------------------------------------------

    def aggregate(self, levels: Sequence[str] | None = None) -> Dataset:
        """Aggregate the measures grouped by the given dimension levels.

        With no levels, the grand total (one row) is returned.
        """
        if levels:
            for level in levels:
                if level not in self.dataset:
                    raise OLAPError(f"unknown group-by level {level!r}")
            return group_by(self.dataset, list(levels), self._aggregations())
        # Grand total: group by a constant pseudo-column.
        rows = [{"all": "all"}]
        working = self.dataset.add_column(
            type(self.dataset.columns[0])("__all__", ["all"] * self.dataset.n_rows)
        )
        result = group_by(working, ["__all__"], self._aggregations())
        return result.drop_columns(["__all__"]) if result.n_columns > 1 else result

    def rollup(self, dimension_name: str, to_level: str | None = None) -> Dataset:
        """Aggregate along one dimension at a coarser level (default: coarsest)."""
        dimension = self.dimension(dimension_name)
        level = to_level or dimension.levels[0]
        if level not in dimension.levels:
            raise OLAPError(f"{level!r} is not a level of dimension {dimension_name!r}")
        return self.aggregate([level])

    def drill_down(self, dimension_name: str, to_level: str | None = None) -> Dataset:
        """Aggregate along one dimension at a finer level (default: finest)."""
        dimension = self.dimension(dimension_name)
        level = to_level or dimension.finest_level
        if level not in dimension.levels:
            raise OLAPError(f"{level!r} is not a level of dimension {dimension_name!r}")
        return self.aggregate([level])

    def slice(self, level: str, value: Any) -> "Cube":
        """Fix one dimension level to a value and return the sub-cube."""
        if level not in self.dataset:
            raise OLAPError(f"unknown level {level!r}")
        filtered = self.dataset.filter(lambda row: not is_missing_value(row[level]) and row[level] == value)
        return Cube(filtered, self.dimensions, self.measures, name=f"{self.name}_slice_{level}")

    def dice(self, selections: Mapping[str, Sequence[Any]]) -> "Cube":
        """Keep only the rows whose level values are in the given sets."""
        for level in selections:
            if level not in self.dataset:
                raise OLAPError(f"unknown level {level!r}")

        def keep(row: dict[str, Any]) -> bool:
            for level, allowed in selections.items():
                if is_missing_value(row[level]) or row[level] not in allowed:
                    return False
            return True

        return Cube(self.dataset.filter(keep), self.dimensions, self.measures, name=f"{self.name}_dice")

    def pivot(self, row_level: str, column_level: str, measure_name: str | None = None) -> Dataset:
        """Cross-tabulate one measure over two dimension levels."""
        measure = self.measures[0] if measure_name is None else next(
            (m for m in self.measures if m.name == measure_name), None
        )
        if measure is None:
            raise OLAPError(f"no measure named {measure_name!r}")
        grouped = group_by(self.dataset, [row_level, column_level], {measure.name: (measure.column, measure.aggregation)})
        row_values = grouped[row_level].distinct()
        column_values = grouped[column_level].distinct()
        lookup = {}
        for row in grouped.iter_rows():
            lookup[(row[row_level], row[column_level])] = row[measure.name]
        out_rows = []
        for rv in row_values:
            out = {row_level: rv}
            for cv in column_values:
                out[f"{column_level}={cv}"] = lookup.get((rv, cv))
            out_rows.append(out)
        return Dataset.from_rows(out_rows, name=f"{self.name}_pivot")

    def measure_summary(self) -> dict[str, dict[str, float]]:
        """Grand-total value of every measure plus simple per-measure statistics."""
        totals = self.aggregate()
        summary: dict[str, dict[str, float]] = {}
        from repro.tabular.stats import numeric_summary

        for measure in self.measures:
            stats = numeric_summary(self.dataset[measure.column])
            summary[measure.name] = {
                "aggregated": float(totals[measure.name][0]),
                "mean": stats["mean"],
                "min": stats["min"],
                "max": stats["max"],
            }
        return summary
