"""A small OLAP engine over :class:`~repro.tabular.dataset.Dataset`.

A :class:`Cube` is defined by dimensions (categorical columns, optionally with
a level hierarchy) and measures (numeric columns with an aggregation).  The
classic operations — roll-up, drill-down, slice, dice and pivot — all return
ordinary datasets so their results can be reported, mined or shared as LOD.

Execution follows the library's two-tier protocol (see
``docs/encoded-core.md``): every operation has a vectorized path over the
dataset's cached encoded views (group keys from the int64 code arrays, slice
and dice masks from code/float comparisons, measures reduced on the float
views) and a retained row-at-a-time reference path.  The two are bit-identical
— values, row order and key order — and the ``_force_row_olap`` attribute is
the escape hatch that routes a cube (and every sub-cube derived from it) to
the reference implementation.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.exceptions import OLAPError, SchemaError
from repro.tabular.dataset import Column, Dataset, is_missing_value
from repro.tabular.encoded import encode_dataset
from repro.tabular.transforms import group_by


@dataclass(frozen=True)
class Dimension:
    """A cube dimension.

    ``levels`` orders the columns from coarsest to finest (e.g. ``["year"]``
    or ``["region", "district"]``); a single-column dimension is the common
    case.
    """

    name: str
    levels: tuple[str, ...]

    def __post_init__(self) -> None:
        """Reject dimensions without levels."""
        if not self.levels:
            raise OLAPError(f"dimension {self.name!r} needs at least one level")

    @property
    def finest_level(self) -> str:
        """The most detailed level column of this dimension."""
        return self.levels[-1]


@dataclass(frozen=True)
class Measure:
    """A cube measure: a numeric source column and an aggregation function."""

    name: str
    column: str
    aggregation: str = "sum"

    def __post_init__(self) -> None:
        """Reject aggregations :func:`~repro.tabular.transforms.group_by` cannot compute."""
        if self.aggregation not in ("sum", "mean", "min", "max", "count", "std", "median"):
            raise OLAPError(f"unsupported aggregation {self.aggregation!r} for measure {self.name!r}")


class Cube:
    """A multidimensional view over a dataset.

    All operations run on the vectorized encoded path by default; set the
    ``_force_row_olap`` attribute to ``True`` to force the row-at-a-time
    reference path (it propagates to the sub-cubes ``slice`` and ``dice``
    return).  Both paths produce bit-identical datasets.
    """

    #: Escape hatch: route every operation to the row-at-a-time reference.
    _force_row_olap = False

    def __init__(
        self,
        dataset: Dataset,
        dimensions: Sequence[Dimension],
        measures: Sequence[Measure],
        name: str | None = None,
    ) -> None:
        """Validate that every level column exists and every measure is numeric."""
        if not dimensions:
            raise OLAPError("a cube needs at least one dimension")
        if not measures:
            raise OLAPError("a cube needs at least one measure")
        for dimension in dimensions:
            for level in dimension.levels:
                if level not in dataset:
                    raise OLAPError(f"dimension level {level!r} is not a column of {dataset.name!r}")
        for measure in measures:
            if measure.column not in dataset:
                raise OLAPError(f"measure column {measure.column!r} is not a column of {dataset.name!r}")
            if not dataset[measure.column].is_numeric():
                raise OLAPError(f"measure column {measure.column!r} must be numeric")
        self.dataset = dataset
        self.dimensions = list(dimensions)
        self.measures = list(measures)
        self.name = name or f"{dataset.name}_cube"

    # -- helpers --------------------------------------------------------------

    def dimension(self, name: str) -> Dimension:
        """Return the dimension called ``name`` or raise :class:`OLAPError`."""
        for dimension in self.dimensions:
            if dimension.name == name:
                return dimension
        raise OLAPError(f"cube {self.name!r} has no dimension {name!r}")

    def _aggregations(self) -> dict[str, tuple[str, str]]:
        """The measures as a :func:`~repro.tabular.transforms.group_by` aggregation map."""
        return {measure.name: (measure.column, measure.aggregation) for measure in self.measures}

    def _derive(self, dataset: Dataset, name: str) -> "Cube":
        """Build a sub-cube over ``dataset``, carrying the execution-path flag."""
        cube = Cube(dataset, self.dimensions, self.measures, name=name)
        cube._force_row_olap = self._force_row_olap
        return cube

    def _keep_rows(self, level: str, allowed: Sequence[Any], name: str) -> "Cube":
        """Vectorized selection: keep the rows whose ``level`` cell is in ``allowed``.

        Mirrors ``dataset.filter`` exactly — same kept indices, and the same
        :class:`SchemaError` when nothing survives — but computes the mask
        from the encoded views and slices through the cached encoding so the
        sub-cube's aggregations never re-encode the surviving rows.
        """
        encoded = encode_dataset(self.dataset)
        column = self.dataset[level]
        if column.is_numeric():
            values, missing = encoded.numeric_view(level)
            mask = np.zeros(values.shape, dtype=bool)
            for candidate in allowed:
                if isinstance(candidate, (bool, int, float, np.bool_, np.integer, np.floating)):
                    # A nan candidate matches nothing, exactly like the row
                    # path's `cell == candidate`.
                    mask |= values == candidate
                elif candidate is not None:
                    # Exotic numeric types (Decimal, Fraction, ...) compare
                    # through Python ==, one distinct cell value at a time.
                    for distinct in np.unique(values[~missing]).tolist():
                        if distinct == candidate:
                            mask |= values == distinct
            mask &= ~missing
        else:
            codes, _, _ = encoded.codes_view(level)
            distinct_codes, first_rows = np.unique(codes, return_index=True)
            allowed_values = list(allowed)
            allowed_codes = [
                code
                for code, first in zip(distinct_codes.tolist(), first_rows.tolist())
                # `in` compares with Python ==, the row path's membership test.
                if code >= 0 and column[first] in allowed_values
            ]
            mask = np.isin(codes, np.asarray(allowed_codes, dtype=np.int64))
        indices = np.flatnonzero(mask)
        if indices.size == 0:
            raise SchemaError("filter removed every row")
        return self._derive(encoded.take(indices), name)

    # -- core operations ----------------------------------------------------------

    def aggregate(self, levels: Sequence[str] | None = None) -> Dataset:
        """Aggregate the measures grouped by the given dimension levels.

        With no levels, the grand total (one row) is returned.  Runs on the
        encoded path unless ``_force_row_olap`` is set; both paths are
        bit-identical (values, row order, key order).
        """
        if levels:
            for level in levels:
                if level not in self.dataset:
                    raise OLAPError(f"unknown group-by level {level!r}")
            return group_by(
                self.dataset, list(levels), self._aggregations(), force_row=self._force_row_olap
            )
        # Grand total: group by a constant pseudo-column.  Always a plain
        # Column — the dataset's own columns may be memory-mapped
        # StoredColumn views, which cannot be built from a value list.
        working = self.dataset.add_column(Column("__all__", ["all"] * self.dataset.n_rows))
        result = group_by(working, ["__all__"], self._aggregations(), force_row=self._force_row_olap)
        return result.drop_columns(["__all__"]) if result.n_columns > 1 else result

    def rollup(self, dimension_name: str, to_level: str | None = None) -> Dataset:
        """Aggregate along one dimension at a coarser level (default: coarsest)."""
        dimension = self.dimension(dimension_name)
        level = to_level or dimension.levels[0]
        if level not in dimension.levels:
            raise OLAPError(f"{level!r} is not a level of dimension {dimension_name!r}")
        return self.aggregate([level])

    def drill_down(self, dimension_name: str, to_level: str | None = None) -> Dataset:
        """Aggregate along one dimension at a finer level (default: finest)."""
        dimension = self.dimension(dimension_name)
        level = to_level or dimension.finest_level
        if level not in dimension.levels:
            raise OLAPError(f"{level!r} is not a level of dimension {dimension_name!r}")
        return self.aggregate([level])

    def slice(self, level: str, value: Any) -> "Cube":
        """Fix one dimension level to a value and return the sub-cube.

        Missing cells never match.  Encoded and row paths keep exactly the
        same rows; an empty result raises :class:`SchemaError` on both.
        """
        if level not in self.dataset:
            raise OLAPError(f"unknown level {level!r}")
        name = f"{self.name}_slice_{level}"
        if self._force_row_olap:
            filtered = self.dataset.filter(
                lambda row: not is_missing_value(row[level]) and row[level] == value
            )
            return self._derive(filtered, name)
        return self._keep_rows(level, [value], name)

    def dice(self, selections: Mapping[str, Sequence[Any]]) -> "Cube":
        """Keep only the rows whose level values are in the given sets.

        ``selections`` maps level columns to allowed values; a row survives
        when every selected level is non-missing and allowed.  Encoded and row
        paths keep exactly the same rows; an empty result raises
        :class:`SchemaError` on both.
        """
        for level in selections:
            if level not in self.dataset:
                raise OLAPError(f"unknown level {level!r}")
        name = f"{self.name}_dice"

        if self._force_row_olap:

            def keep(row: dict[str, Any]) -> bool:
                """Row predicate: every selected level non-missing and allowed."""
                for level, allowed in selections.items():
                    if is_missing_value(row[level]) or row[level] not in allowed:
                        return False
                return True

            return self._derive(self.dataset.filter(keep), name)

        cube = self
        for level, allowed in selections.items():
            cube = cube._keep_rows(level, list(allowed), name)
        if cube is self:
            # Empty selections: the row path still filters into a fresh copy.
            if self.dataset.n_rows == 0:
                raise SchemaError("filter removed every row")
            indices = np.arange(self.dataset.n_rows)
            cube = self._derive(encode_dataset(self.dataset).take(indices), name)
        return cube

    def pivot(self, row_level: str, column_level: str, measure_name: str | None = None) -> Dataset:
        """Cross-tabulate one measure over two dimension levels.

        The underlying aggregation runs through the two-tier ``group_by``;
        the cross-tabulation itself only walks the (small) grouped result, so
        encoded and row paths return bit-identical pivots.
        """
        measure = self.measures[0] if measure_name is None else next(
            (m for m in self.measures if m.name == measure_name), None
        )
        if measure is None:
            raise OLAPError(f"no measure named {measure_name!r}")
        grouped = group_by(
            self.dataset,
            [row_level, column_level],
            {measure.name: (measure.column, measure.aggregation)},
            force_row=self._force_row_olap,
        )
        row_values = grouped[row_level].distinct()
        column_values = grouped[column_level].distinct()
        lookup = {}
        for row in grouped.iter_rows():
            lookup[(row[row_level], row[column_level])] = row[measure.name]
        out_rows = []
        for rv in row_values:
            out = {row_level: rv}
            for cv in column_values:
                out[f"{column_level}={cv}"] = lookup.get((rv, cv))
            out_rows.append(out)
        return Dataset.from_rows(out_rows, name=f"{self.name}_pivot")

    def measure_summary(self) -> dict[str, dict[str, float]]:
        """Grand-total value of every measure plus simple per-measure statistics."""
        totals = self.aggregate()
        summary: dict[str, dict[str, float]] = {}
        from repro.tabular.stats import numeric_summary

        for measure in self.measures:
            stats = numeric_summary(self.dataset[measure.column])
            summary[measure.name] = {
                "aggregated": float(totals[measure.name][0]),
                "mean": stats["mean"],
                "min": stats["min"],
                "max": stats["max"],
            }
        return summary
