"""Dashboards: composed views of KPIs, quality, OLAP summaries and advice."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.bi.kpi import KPI, evaluate_kpis, evaluate_kpis_by_level
from repro.bi.olap import Cube
from repro.bi.reporting import Report, dataset_to_table_text
from repro.core.advisor import Recommendation
from repro.quality.profile import DataQualityProfile
from repro.quality.report import quality_report
from repro.tabular.dataset import Dataset


@dataclass
class Dashboard:
    """A citizen-facing dashboard for one (or more) open data sources.

    Panels are added with the ``add_*`` methods and the whole dashboard is
    rendered as Markdown (the format a thin web front end would consume).
    """

    title: str
    _panels: list[tuple[str, str]] = field(default_factory=list)

    def add_kpi_panel(self, title: str, kpis: Sequence[KPI], dataset: Dataset) -> "Dashboard":
        """Evaluate KPIs on a dataset and add a traffic-light panel."""
        statuses = evaluate_kpis(kpis, dataset)
        lines = []
        for status in statuses:
            icon = {"good": "[OK]", "warning": "[!]", "bad": "[X]"}[status["status"]]
            lines.append(
                f"{icon} **{status['kpi']}**: {status['value']:.3f} "
                f"(target {'>=' if status['higher_is_better'] else '<='} {status['target']:.3f})"
            )
        self._panels.append((title, "\n".join(lines)))
        return self

    def add_quality_panel(self, title: str, profile: DataQualityProfile, reference: DataQualityProfile | None = None) -> "Dashboard":
        """Add the data quality report of a source."""
        self._panels.append((title, quality_report(profile, reference=reference, fmt="markdown")))
        return self

    def add_cube_panel(self, title: str, cube: Cube, levels: Sequence[str]) -> "Dashboard":
        """Add an OLAP aggregation of the cube grouped by the given levels."""
        aggregated = cube.aggregate(list(levels))
        self._panels.append((title, dataset_to_table_text(aggregated, fmt="markdown")))
        return self

    def add_kpi_breakdown_panel(
        self, title: str, kpis: Sequence[KPI], cube: Cube, level: str
    ) -> "Dashboard":
        """Add a per-group KPI scoreboard over one cube dimension level.

        The scoreboard comes from :func:`~repro.bi.kpi.evaluate_kpis_by_level`,
        i.e. from the cube's vectorized encoded-path aggregation (or the
        bit-identical row reference when the cube is forced to it).
        """
        scoreboard = evaluate_kpis_by_level(kpis, cube, level)
        self._panels.append((title, dataset_to_table_text(scoreboard, fmt="markdown")))
        return self

    def add_recommendation_panel(self, title: str, recommendation: Recommendation) -> "Dashboard":
        """Add the advisor's recommendation for a source."""
        lines = [
            f"**Recommended algorithm:** `{recommendation.best_algorithm}` "
            f"(expected score {recommendation.expected_score:.3f})",
            "",
            recommendation.rationale,
            "",
            "| algorithm | expected score |",
            "|---|---|",
        ]
        lines.extend(f"| {name} | {score:.3f} |" for name, score in recommendation.ranked_algorithms)
        self._panels.append((title, "\n".join(lines)))
        return self

    def add_table_panel(self, title: str, dataset: Dataset, max_rows: int = 15) -> "Dashboard":
        """Add a raw table panel (e.g. mined rules or cluster summaries)."""
        self._panels.append((title, dataset_to_table_text(dataset, max_rows=max_rows, fmt="markdown")))
        return self

    def add_text_panel(self, title: str, text: str) -> "Dashboard":
        """Add a free-text panel."""
        self._panels.append((title, text))
        return self

    @property
    def panel_titles(self) -> list[str]:
        """The panel titles in display order."""
        return [title for title, _ in self._panels]

    def render(self) -> str:
        """Render the dashboard as a Markdown document."""
        lines = [f"# {self.title}", ""]
        for title, body in self._panels:
            lines.extend([f"## {title}", "", body, ""])
        return "\n".join(lines)

    def to_report(self) -> Report:
        """Convert the dashboard into a :class:`~repro.bi.reporting.Report`."""
        report = Report(self.title)
        for title, body in self._panels:
            report.add_text(title, body)
        return report
