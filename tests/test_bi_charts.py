"""Unit tests for the plain-text chart helpers."""

from __future__ import annotations

import pytest

from repro.bi import bar_chart, series_chart, sparkline
from repro.exceptions import ReproError


class TestBarChart:
    def test_scaling_and_order(self):
        chart = bar_chart({"transport": 100.0, "health": 50.0, "parks": 25.0}, width=20)
        lines = chart.splitlines()
        assert lines[0].startswith("transport")
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_negative_values_use_minus_bars(self):
        chart = bar_chart({"surplus": 10.0, "deficit": -10.0}, width=10, sort=False)
        assert "-" * 10 in chart

    def test_title_and_custom_fill(self):
        chart = bar_chart({"a": 1.0}, title="Spending", fill="=")
        assert chart.startswith("Spending")
        assert "=" in chart

    def test_validation(self):
        with pytest.raises(ReproError):
            bar_chart({})
        with pytest.raises(ReproError):
            bar_chart({"a": 1.0}, width=2)


class TestSeriesChart:
    def test_renders_all_series_with_legend(self):
        chart = series_chart(
            {
                "naive_bayes": {0.0: 0.98, 0.2: 0.95, 0.4: 0.93},
                "knn": {0.0: 0.95, 0.2: 0.90, 0.4: 0.85},
            },
            width=30,
            height=8,
            title="accuracy vs missing rate",
        )
        assert chart.startswith("accuracy vs missing rate")
        assert "legend:" in chart
        assert "o = knn" in chart and "x = naive_bayes" in chart
        # axis labels show the y extremes
        assert "0.980" in chart and "0.850" in chart

    def test_single_point_series(self):
        chart = series_chart({"only": {0.5: 1.0}})
        assert "legend:" in chart

    def test_validation(self):
        with pytest.raises(ReproError):
            series_chart({})
        with pytest.raises(ReproError):
            series_chart({"empty": {}})


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4, 5])
        assert len(line) == 5
        assert line[0] == "▁" and line[-1] == "█"

    def test_constant_series(self):
        assert len(set(sparkline([3, 3, 3]))) == 1

    def test_validation(self):
        with pytest.raises(ReproError):
            sparkline([])
