"""Property-based tests (hypothesis) for the incremental ingestion tier.

The property under test is the batch-vs-incremental contract: for *any*
sequence of appended batches — mixed sizes, new category levels, all-missing
blocks, empty deltas — the incrementally refreshed profile, group-by, KPI
scoreboard and LOD index state must be bit-identical to a one-shot rebuild
over the concatenation of all the batches.
"""

from __future__ import annotations

import json
import struct

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bi import KPI, Cube, Dimension, Measure, evaluate_kpis_by_level
from repro.feeds import IncrementalGroupBy, IncrementalKPIBoard, IncrementalProfile, append_rows
from repro.lod.terms import IRI, Literal, Triple
from repro.lod.triples import TripleStore
from repro.quality import measure_quality
from repro.tabular.dataset import ColumnType, Dataset
from repro.tabular.encoded import _CACHE_ATTR, encode_dataset
from repro.tabular.transforms import group_by

# -- strategies --------------------------------------------------------------

_CATEGORIES = ["alpha", "beta", "gamma", "delta", "NEW-1", "NEW-2"]

_row = st.fixed_dictionaries(
    {
        "group": st.one_of(st.none(), st.sampled_from(_CATEGORIES)),
        "value": st.one_of(
            st.none(),
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
        ),
    }
)

_batches = st.lists(st.lists(_row, min_size=0, max_size=12), min_size=1, max_size=5)

_CTYPES = {"group": ColumnType.CATEGORICAL, "value": ColumnType.NUMERIC}


def _dataset(rows, name="prop"):
    padded = rows if rows else [{"group": "alpha", "value": 0.0}]
    return Dataset.from_rows(padded, name=name, ctypes=_CTYPES, column_order=["group", "value"])


def _bits(value):
    if isinstance(value, float):
        return struct.pack("<d", value)
    return value


def _assert_identical(a: Dataset, b: Dataset):
    assert a.column_names == b.column_names
    assert a.n_rows == b.n_rows
    for name in a.column_names:
        for x, y in zip(a[name].tolist(), b[name].tolist()):
            assert _bits(x) == _bits(y)


# -- properties ---------------------------------------------------------------


@given(base=st.lists(_row, min_size=1, max_size=20), batches=_batches)
@settings(max_examples=30, deadline=None)
def test_appended_encoding_matches_cold_encode(base, batches):
    """Extended encoded views equal a cold encode of the concatenated rows."""
    merged = _dataset(base)
    encoded = encode_dataset(merged)
    encoded.codes_view("group")
    encoded.numeric_view("value")
    all_rows = list(merged.iter_rows())
    for batch in batches:
        merged = append_rows(merged, batch)
        all_rows.extend(batch)
    cold = encode_dataset(_dataset(all_rows))
    seeded = getattr(merged, _CACHE_ATTR)
    assert seeded.dataset is merged
    codes, vocabulary, _ = seeded.codes_view("group")
    c_codes, c_vocab, _ = cold.codes_view("group")
    assert vocabulary == c_vocab
    assert np.array_equal(codes, c_codes)
    values, missing = seeded.numeric_view("value")
    c_values, c_missing = cold.numeric_view("value")
    assert np.array_equal(values, c_values, equal_nan=True)
    assert np.array_equal(missing, c_missing)


@given(base=st.lists(_row, min_size=1, max_size=20), batches=_batches)
@settings(max_examples=30, deadline=None)
def test_incremental_group_by_matches_one_shot_rebuild(base, batches):
    aggregations = {f"v_{agg}": ("value", agg) for agg in ("sum", "mean", "min", "max", "count", "std", "median")}
    merged = _dataset(base)
    board = IncrementalGroupBy(merged, ["group"], aggregations)
    all_rows = list(merged.iter_rows())
    result = board.result()
    for batch in batches:
        merged = append_rows(merged, batch)
        all_rows.extend(batch)
        result = board.refresh(merged)
    _assert_identical(result, group_by(_dataset(all_rows), ["group"], aggregations))


@given(base=st.lists(_row, min_size=1, max_size=20), batches=_batches)
@settings(max_examples=20, deadline=None)
def test_incremental_profile_matches_one_shot_rebuild(base, batches):
    criteria = ["completeness", "duplication", "balance", "dimensionality", "consistency"]
    merged = _dataset(base)
    profile = IncrementalProfile(merged, criteria=criteria)
    all_rows = list(merged.iter_rows())
    refreshed = profile.profile()
    for batch in batches:
        merged = append_rows(merged, batch)
        all_rows.extend(batch)
        refreshed = profile.refresh(merged)
    rebuilt = measure_quality(_dataset(all_rows), criteria)
    assert json.dumps(refreshed.to_json_dict(), sort_keys=True) == json.dumps(
        rebuilt.to_json_dict(), sort_keys=True
    )


@given(base=st.lists(_row, min_size=2, max_size=20), batches=_batches)
@settings(max_examples=20, deadline=None)
def test_incremental_kpi_board_matches_one_shot_rebuild(base, batches):
    kpis = [KPI("spend", "value", target=10.0, higher_is_better=False)]

    def _cube(dataset):
        return Cube(dataset, [Dimension("g", ("group",))], [Measure("total", "value", "sum")], name="prop")

    merged = _dataset(base)
    board = IncrementalKPIBoard(kpis, _cube(merged), "group")
    all_rows = list(merged.iter_rows())
    result = board.result()
    for batch in batches:
        merged = append_rows(merged, batch)
        all_rows.extend(batch)
        result = board.refresh(merged)
    _assert_identical(result, evaluate_kpis_by_level(kpis, _cube(_dataset(all_rows)), "group"))


@given(
    base_subjects=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=15, unique=True),
    new_batches=st.lists(
        st.lists(st.integers(min_value=100, max_value=130), min_size=1, max_size=6, unique=True),
        min_size=1,
        max_size=3,
    ),
)
@settings(max_examples=20, deadline=None)
def test_triple_append_matches_one_shot_rebuild(base_subjects, new_batches):
    """Extending the columnar snapshot equals rebuilding it, for any batch split."""
    def _triples(ids):
        out = []
        for i in ids:
            subject = IRI(f"http://ex/s{i}")
            out.append(Triple(subject, IRI("http://ex/p"), Literal(str(i))))
            out.append(Triple(subject, IRI("http://ex/q"), IRI(f"http://ex/o{i % 4}")))
        return out

    store = TripleStore()
    for triple in _triples(base_subjects):
        store.add(triple)
    snapshot = store.columnar()
    snapshot.order("spo")
    seen = set(base_subjects)
    appended = []
    for batch in new_batches:
        fresh = [i for i in batch if i not in seen]
        seen.update(fresh)
        appended.extend(fresh)
        store.append(_triples(fresh))
    reference = TripleStore()
    for triple in _triples(base_subjects) + _triples(appended):
        reference.add(triple)
    rebuilt = reference.columnar()
    extended = store.columnar()
    assert extended.terms == rebuilt.terms
    for kind in ("spo", "pos", "osp"):
        for left, right in zip(extended.order(kind), rebuilt.order(kind)):
            assert np.array_equal(left, right)
