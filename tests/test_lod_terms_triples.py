"""Unit tests for RDF terms and the indexed triple store."""

from __future__ import annotations

import pytest

from repro.exceptions import LODError
from repro.lod.terms import BNode, IRI, Literal, Triple, coerce_object
from repro.lod.triples import TripleStore
from repro.lod.vocabulary import Namespace, RDF, XSD

EX = Namespace("http://example.org/")


class TestTerms:
    def test_iri_requires_absolute_form(self):
        with pytest.raises(LODError):
            IRI("not an iri")
        with pytest.raises(LODError):
            IRI("")

    def test_iri_local_name(self):
        assert IRI("http://example.org/thing#part").local_name() == "part"
        assert IRI("http://example.org/path/leaf").local_name() == "leaf"
        assert IRI("urn:isbn:12345").local_name() == "12345"

    def test_iri_n3(self):
        assert IRI("http://example.org/a").n3() == "<http://example.org/a>"

    def test_bnode_validation(self):
        assert str(BNode("b1")) == "_:b1"
        with pytest.raises(LODError):
            BNode("has space")

    def test_literal_lexical_forms(self):
        assert Literal("text").lexical == "text"
        assert Literal(True).lexical == "true"
        assert Literal(3.5).lexical == "3.5"

    def test_literal_language_and_datatype_exclusive(self):
        with pytest.raises(LODError):
            Literal("hola", datatype=XSD.string, language="es")

    def test_literal_n3_escaping(self):
        literal = Literal('say "hi"\nplease')
        rendered = literal.n3()
        assert '\\"' in rendered and "\\n" in rendered

    def test_literal_n3_with_language_and_datatype(self):
        assert Literal("hola", language="es").n3() == '"hola"@es'
        assert Literal(3, datatype=XSD.integer).n3().endswith(XSD.integer.n3())

    def test_triple_validation(self):
        subject, predicate = EX["s"], EX["p"]
        Triple(subject, predicate, Literal(1))
        with pytest.raises(LODError):
            Triple(Literal("x"), predicate, Literal(1))
        with pytest.raises(LODError):
            Triple(subject, BNode("b"), Literal(1))
        with pytest.raises(LODError):
            Triple(subject, predicate, "raw string")

    def test_coerce_object(self):
        assert isinstance(coerce_object("http://example.org/x"), IRI)
        assert isinstance(coerce_object("just text"), Literal)
        assert isinstance(coerce_object(4.2), Literal)
        iri = EX["keep"]
        assert coerce_object(iri) is iri


class TestNamespace:
    def test_term_access(self):
        assert EX.thing == IRI("http://example.org/thing")
        assert EX["other"] == IRI("http://example.org/other")

    def test_containment(self):
        assert EX.thing in EX
        assert IRI("http://elsewhere.org/x") not in EX


class TestTripleStore:
    @pytest.fixture
    def store(self):
        store = TripleStore()
        store.add(Triple(EX["a"], RDF.type, EX.City))
        store.add(Triple(EX["b"], RDF.type, EX.City))
        store.add(Triple(EX["a"], EX.population, Literal(1000)))
        store.add(Triple(EX["a"], EX.name, Literal("Alpha")))
        return store

    def test_add_is_idempotent(self, store):
        assert len(store) == 4
        assert not store.add(Triple(EX["a"], RDF.type, EX.City))
        assert len(store) == 4

    def test_contains_and_iter(self, store):
        assert Triple(EX["a"], EX.population, Literal(1000)) in store
        assert len(list(store)) == len(store)

    def test_match_by_subject(self, store):
        assert len(list(store.match(subject=EX["a"]))) == 3

    def test_match_by_predicate(self, store):
        assert len(list(store.match(predicate=RDF.type))) == 2

    def test_match_by_object(self, store):
        assert len(list(store.match(object=EX.City))) == 2

    def test_match_fully_bound(self, store):
        assert len(list(store.match(EX["a"], RDF.type, EX.City))) == 1
        assert list(store.match(EX["a"], RDF.type, EX.Country)) == []

    def test_subjects_predicates_objects(self, store):
        assert set(store.subjects(RDF.type, EX.City)) == {EX["a"], EX["b"]}
        assert RDF.type in store.predicates(EX["a"])
        assert Literal(1000) in store.objects(EX["a"], EX.population)

    def test_value_shortcut(self, store):
        assert store.value(EX["a"], EX.population) == Literal(1000)
        assert store.value(EX["b"], EX.population, default="none") == "none"

    def test_discard(self, store):
        assert store.discard(Triple(EX["a"], EX.population, Literal(1000)))
        assert len(store) == 3
        assert not store.discard(Triple(EX["a"], EX.population, Literal(1000)))
        # index cleanup: matching by the removed predicate finds nothing for a
        assert list(store.match(EX["a"], EX.population, None)) == []

    def test_update_and_copy(self, store):
        clone = store.copy()
        clone.add(Triple(EX["c"], RDF.type, EX.City))
        assert len(clone) == len(store) + 1

    def test_add_rejects_non_triple(self, store):
        with pytest.raises(LODError):
            store.add(("s", "p", "o"))
