"""Unit tests for DataQualityProfile, measure_quality and the quality report."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.injection import MissingValuesInjector
from repro.exceptions import DataQualityError
from repro.quality import CompletenessCriterion, measure_quality, quality_report
from repro.quality.profile import DEFAULT_CRITERIA, DataQualityProfile


class TestMeasureQuality:
    def test_default_criteria_measured(self, budget_dataset):
        profile = measure_quality(budget_dataset)
        assert set(profile.criteria()) == set(DEFAULT_CRITERIA)

    def test_subset_of_criteria(self, budget_dataset):
        profile = measure_quality(budget_dataset, criteria=("completeness", "balance"))
        assert set(profile.criteria()) == {"completeness", "balance"}

    def test_criterion_instances_accepted(self, budget_dataset):
        profile = measure_quality(budget_dataset, criteria=[CompletenessCriterion(include_target=False)])
        assert profile.criteria() == ["completeness"]

    def test_criterion_kwargs_forwarded(self, budget_dataset):
        profile = measure_quality(budget_dataset, criteria=("outliers",), outliers={"iqr_factor": 10.0})
        assert profile.score("outliers") >= measure_quality(budget_dataset, criteria=("outliers",)).score("outliers")


class TestProfile:
    @pytest.fixture
    def clean_and_dirty(self, clean_classification):
        clean = measure_quality(clean_classification)
        degraded_dataset = MissingValuesInjector().apply(clean_classification, 0.3, seed=0)
        dirty = measure_quality(degraded_dataset)
        return clean, dirty

    def test_score_and_unknown_criterion(self, clean_and_dirty):
        clean, _ = clean_and_dirty
        assert clean.score("completeness") == 1.0
        with pytest.raises(DataQualityError):
            clean.score("imaginary")

    def test_as_vector_stable_order(self, clean_and_dirty):
        clean, _ = clean_and_dirty
        vector = clean.as_vector()
        assert vector.shape == (len(clean.criteria()),)
        assert np.all((0.0 <= vector) & (vector <= 1.0))

    def test_overall_and_weights(self, clean_and_dirty):
        _, dirty = clean_and_dirty
        unweighted = dirty.overall()
        weighted = dirty.overall(weights={"completeness": 1.0})
        assert weighted == pytest.approx(dirty.score("completeness"))
        assert 0.0 <= unweighted <= 1.0

    def test_overall_zero_weights_rejected(self, clean_and_dirty):
        clean, _ = clean_and_dirty
        with pytest.raises(DataQualityError):
            clean.overall(weights={"nonexistent": 1.0})

    def test_worst_criteria(self, clean_and_dirty):
        _, dirty = clean_and_dirty
        worst = dirty.worst_criteria(2)
        assert len(worst) == 2
        assert worst[0][1] <= worst[1][1]
        assert "completeness" in [name for name, _ in dirty.worst_criteria(3)]

    def test_distance_properties(self, clean_and_dirty):
        clean, dirty = clean_and_dirty
        assert clean.distance(clean) == 0.0
        assert clean.distance(dirty) > 0.0
        assert clean.distance(dirty) == pytest.approx(dirty.distance(clean))

    def test_distance_with_weights(self, clean_and_dirty):
        clean, dirty = clean_and_dirty
        emphasised = clean.distance(dirty, weights={"completeness": 10.0})
        ignored = clean.distance(dirty, weights={"completeness": 0.0})
        assert emphasised > ignored

    def test_distance_requires_shared_criteria(self, clean_and_dirty):
        clean, _ = clean_and_dirty
        empty = DataQualityProfile("empty")
        with pytest.raises(DataQualityError):
            clean.distance(empty)

    def test_json_roundtrip(self, clean_and_dirty):
        _, dirty = clean_and_dirty
        payload = json.loads(json.dumps(dirty.to_json_dict()))
        restored = DataQualityProfile.from_json_dict(payload)
        assert restored.as_dict() == pytest.approx(dirty.as_dict())

    def test_details_access(self, clean_and_dirty):
        _, dirty = clean_and_dirty
        assert "per_column" in dirty.details("completeness")
        with pytest.raises(DataQualityError):
            dirty.details("imaginary")

    def test_overall_empty_profile_rejected(self):
        with pytest.raises(DataQualityError):
            DataQualityProfile("empty").overall()


class TestReport:
    def test_text_report_contains_scores(self, budget_dataset):
        profile = measure_quality(budget_dataset)
        text = quality_report(profile)
        assert "completeness" in text
        assert "overall quality" in text

    def test_markdown_report(self, budget_dataset):
        profile = measure_quality(budget_dataset)
        markdown = quality_report(profile, fmt="markdown")
        assert markdown.startswith("# Data quality report")
        assert "| criterion |" in markdown

    def test_reference_deltas(self, clean_classification):
        clean_profile = measure_quality(clean_classification)
        dirty_profile = measure_quality(MissingValuesInjector().apply(clean_classification, 0.3, seed=1))
        text = quality_report(dirty_profile, reference=clean_profile)
        assert "vs reference" in text

    def test_unknown_format_rejected(self, budget_dataset):
        with pytest.raises(ValueError):
            quality_report(measure_quality(budget_dataset), fmt="pdf")
