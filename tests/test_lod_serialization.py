"""Unit tests for N-Triples / Turtle serialisation and parsing."""

from __future__ import annotations

import pytest

from repro.exceptions import LODError
from repro.lod.graph import Graph
from repro.lod.serialization import parse_ntriples, to_ntriples, to_turtle
from repro.lod.terms import BNode, IRI, Literal, Triple
from repro.lod.vocabulary import Namespace, RDF, XSD

EX = Namespace("http://example.org/")


@pytest.fixture
def graph():
    g = Graph()
    g.bind("ex", EX)
    g.add(EX["a"], RDF.type, EX.Thing)
    g.add(EX["a"], EX.count, Literal(42))
    g.add(EX["a"], EX.ratio, Literal(0.5))
    g.add(EX["a"], EX.flag, Literal(True))
    g.add(EX["a"], EX.name, Literal('needs "escaping"\nnewline'))
    g.add(EX["a"], EX.comment, Literal("hola", language="es"))
    g.add_triple(Triple(BNode("node1"), EX.linkedTo, EX["a"]))
    return g


class TestNTriples:
    def test_roundtrip_preserves_every_triple(self, graph):
        text = to_ntriples(graph)
        parsed = parse_ntriples(text)
        assert len(parsed) == len(graph)
        # typed literals keep their python values
        assert parsed.value(EX["a"], EX.count) == 42
        assert parsed.value(EX["a"], EX.ratio) == pytest.approx(0.5)
        assert parsed.value(EX["a"], EX.flag) is True

    def test_roundtrip_preserves_escapes_and_language(self, graph):
        parsed = parse_ntriples(to_ntriples(graph))
        assert parsed.value(EX["a"], EX.name) == 'needs "escaping"\nnewline'
        comment = next(parsed.triples(EX["a"], EX.comment, None)).object
        assert comment.language == "es"

    def test_output_is_sorted_and_stable(self, graph):
        assert to_ntriples(graph) == to_ntriples(graph)
        lines = to_ntriples(graph).strip().splitlines()
        assert lines == sorted(lines)

    def test_file_roundtrip(self, tmp_path, graph):
        path = tmp_path / "graph.nt"
        to_ntriples(graph, path)
        parsed = parse_ntriples(path)
        assert len(parsed) == len(graph)

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\n<http://example.org/a> <http://example.org/p> \"x\" .\n"
        assert len(parse_ntriples(text)) == 1

    def test_invalid_line_rejected(self):
        with pytest.raises(LODError):
            parse_ntriples("this is not a triple .")

    def test_parse_error_names_line_and_quotes_offender(self):
        text = (
            '<http://example.org/a> <http://example.org/p> "ok" .\n'
            "this line is broken\n"
        )
        with pytest.raises(LODError, match="line 2") as excinfo:
            parse_ntriples(text)
        assert "this line is broken" in str(excinfo.value)

    def test_datatype_mismatch_reported_with_line(self):
        text = (
            '<http://example.org/a> <http://example.org/p> '
            '"not-a-number"^^<http://www.w3.org/2001/XMLSchema#integer> .\n'
        )
        with pytest.raises(LODError, match="line 1.*datatype") as excinfo:
            parse_ntriples(text)
        assert "not-a-number" in str(excinfo.value)

    def test_bnode_roundtrip(self, graph):
        parsed = parse_ntriples(to_ntriples(graph))
        assert any(isinstance(t.subject, BNode) for t in parsed)


class TestTurtle:
    def test_prefixes_only_emitted_when_used(self, graph):
        turtle = to_turtle(graph)
        assert "@prefix ex:" in turtle
        assert "@prefix dqv:" not in turtle

    def test_subject_grouping(self, graph):
        turtle = to_turtle(graph)
        # the subject ex:a appears exactly once as a subject block
        assert turtle.count("ex:a\n") == 1

    def test_typed_literals_use_xsd_qnames(self, graph):
        turtle = to_turtle(graph)
        assert "^^xsd:integer" in turtle
        assert "^^xsd:double" in turtle
        assert "^^xsd:boolean" in turtle

    def test_file_output(self, tmp_path, graph):
        path = tmp_path / "graph.ttl"
        text = to_turtle(graph, path)
        assert path.read_text(encoding="utf-8") == text

    def test_empty_graph(self):
        assert to_turtle(Graph()) == ""
        assert to_ntriples(Graph()) == ""
