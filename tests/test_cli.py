"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.core import KnowledgeBase
from repro.datasets import service_requests
from repro.tabular import read_csv, write_csv


@pytest.fixture(scope="module")
def csv_path(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli-data")
    path = directory / "requests.csv"
    write_csv(service_requests(n_rows=150, seed=5), path)
    return path


@pytest.fixture(scope="module")
def dirty_csv_path(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli-dirty")
    path = directory / "requests_dirty.csv"
    write_csv(service_requests(n_rows=150, seed=5, dirty=True), path)
    return path


@pytest.fixture(scope="module")
def kb_path(tmp_path_factory, csv_path):
    directory = tmp_path_factory.mktemp("cli-kb")
    path = directory / "kb.json"
    code = main(
        [
            "experiment",
            "--data", str(csv_path),
            "--target", "resolved_late",
            "--identifier", "request_id",
            "--algorithms", "decision_tree,naive_bayes",
            "--criteria", "completeness,balance",
            "--severities", "0.0,0.3",
            "--output", str(path),
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_help_lists_commands(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        output = capsys.readouterr().out
        for command in ("profile", "experiment", "advise", "mine", "publish", "rules", "datasets"):
            assert command in output


class TestProfileCommand:
    def test_text_report(self, csv_path, capsys):
        assert main(["profile", str(csv_path), "--target", "resolved_late"]) == 0
        output = capsys.readouterr().out
        assert "Data quality report" in output
        assert "completeness" in output

    def test_json_output(self, csv_path, capsys):
        assert main(["profile", str(csv_path), "--target", "resolved_late", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "measures" in payload and "completeness" in payload["measures"]

    def test_reference_comparison(self, csv_path, dirty_csv_path, capsys):
        code = main(
            ["profile", str(dirty_csv_path), "--target", "resolved_late", "--reference", str(csv_path)]
        )
        assert code == 0
        assert "vs reference" in capsys.readouterr().out

    def test_unknown_target_is_an_error(self, csv_path, capsys):
        assert main(["profile", str(csv_path), "--target", "ghost"]) == 2
        assert "error:" in capsys.readouterr().err


class TestExperimentAndAdvise:
    def test_experiment_writes_knowledge_base(self, kb_path):
        knowledge_base = KnowledgeBase.from_json(kb_path)
        assert len(knowledge_base) > 0
        assert set(knowledge_base.algorithms()) == {"decision_tree", "naive_bayes"}

    def test_experiment_with_civic_generator(self, tmp_path, capsys):
        output = tmp_path / "kb.db"
        code = main(
            [
                "experiment",
                "--civic", "municipal_budget",
                "--rows", "100",
                "--algorithms", "one_r,naive_bayes",
                "--criteria", "completeness",
                "--severities", "0.0,0.3",
                "--output", str(output),
            ]
        )
        assert code == 0
        assert output.exists()
        assert len(KnowledgeBase.from_sqlite(output)) > 0

    def test_experiment_without_sources_is_an_error(self, tmp_path, capsys):
        assert main(["experiment", "--output", str(tmp_path / "kb.json")]) == 2

    def test_advise_text(self, kb_path, dirty_csv_path, capsys):
        code = main(
            ["advise", str(kb_path), str(dirty_csv_path), "--target", "resolved_late", "--identifier", "request_id"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "the best option is" in output
        assert "full ranking" in output

    def test_advise_json(self, kb_path, dirty_csv_path, capsys):
        code = main(
            ["advise", str(kb_path), str(dirty_csv_path), "--target", "resolved_late", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["best_algorithm"] in {"decision_tree", "naive_bayes"}

    def test_advise_missing_kb_is_an_error(self, dirty_csv_path, capsys):
        assert main(["advise", "/nonexistent/kb.json", str(dirty_csv_path), "--target", "resolved_late"]) == 2

    def test_rules_command(self, kb_path, capsys):
        assert main(["rules", str(kb_path), "--threshold", "0.95", "--min-observations", "2"]) == 0
        output = capsys.readouterr().out
        assert "knowledge base" in output.lower()


class TestMineCommand:
    def test_holdout_evaluation(self, csv_path, capsys):
        code = main(
            ["mine", str(csv_path), "--target", "resolved_late", "--identifier", "request_id",
             "--algorithm", "naive_bayes"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "accuracy" in output and "kappa" in output

    def test_cross_validation_with_rules(self, csv_path, capsys):
        code = main(
            ["mine", str(csv_path), "--target", "resolved_late", "--identifier", "request_id",
             "--algorithm", "decision_tree", "--cross-validate", "--show-rules"]
        )
        assert code == 0
        assert "rules:" in capsys.readouterr().out

    def test_unknown_algorithm_is_an_error(self, csv_path, capsys):
        assert main(["mine", str(csv_path), "--target", "resolved_late", "--algorithm", "oracle"]) == 2


class TestPublishAndDatasets:
    def test_publish_turtle_to_stdout(self, csv_path, capsys):
        code = main(["publish", str(csv_path), "--identifier", "request_id"])
        assert code == 0
        output = capsys.readouterr().out
        assert "@prefix" in output and "qb:Observation" in output

    def test_publish_ntriples_with_quality_to_file(self, csv_path, tmp_path, capsys):
        output_path = tmp_path / "data.nt"
        code = main(
            ["publish", str(csv_path), "--target", "resolved_late", "--format", "ntriples",
             "--with-quality", "--output", str(output_path)]
        )
        assert code == 0
        text = output_path.read_text(encoding="utf-8")
        assert "dqv#value" in text or "dqv" in text

    def test_datasets_command_roundtrip(self, tmp_path, capsys):
        output_path = tmp_path / "budget.csv"
        code = main(["datasets", "municipal_budget", str(output_path), "--rows", "50", "--dirty"])
        assert code == 0
        loaded = read_csv(output_path)
        assert loaded.n_rows >= 50

    def test_datasets_unknown_name_is_an_error(self, tmp_path):
        assert main(["datasets", "weather_on_mars", str(tmp_path / "x.csv")]) == 2


class TestLodCommands:
    AIR_TYPE = "http://openbi.example.org/civic/AirQualityReading"

    @pytest.fixture(scope="class")
    def graph_paths(self, tmp_path_factory):
        from repro.datasets import air_quality
        from repro.datasets.civic import civic_lod_graph
        from repro.lod import to_ntriples

        directory = tmp_path_factory.mktemp("cli-lod")
        left = directory / "left.nt"
        right = directory / "right.nt"
        to_ntriples(civic_lod_graph(air_quality(n_rows=40, seed=1), entity_class="AirQualityReading"), left)
        # Same readings republished under a different class (and thus subject
        # IRIs), so linking on the shared dcterms:identifier finds every row.
        to_ntriples(civic_lod_graph(air_quality(n_rows=40, seed=1), entity_class="AirReading"), right)
        return left, right

    def test_tabulate_to_csv(self, graph_paths, tmp_path, capsys):
        output = tmp_path / "air.csv"
        code = main(["lod", "tabulate", str(graph_paths[0]), "--type", self.AIR_TYPE, "--output", str(output)])
        assert code == 0
        assert "tabulated 40 rows" in capsys.readouterr().out
        loaded = read_csv(output)
        assert loaded.n_rows == 40
        assert "no2" in loaded.column_names

    def test_tabulate_prints_a_table_without_output(self, graph_paths, capsys):
        code = main(["lod", "tabulate", str(graph_paths[0]), "--type", self.AIR_TYPE, "--max-rows", "3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "subject" in output and "more rows" in output

    def test_tabulate_force_row_matches_columnar(self, graph_paths, tmp_path):
        fast_path, slow_path = tmp_path / "fast.csv", tmp_path / "slow.csv"
        assert main(["lod", "tabulate", str(graph_paths[0]), "--type", self.AIR_TYPE, "--output", str(fast_path)]) == 0
        assert main(["lod", "tabulate", str(graph_paths[0]), "--type", self.AIR_TYPE, "--force-row", "--output", str(slow_path)]) == 0
        assert fast_path.read_text() == slow_path.read_text()

    def test_tabulate_unknown_class_is_an_error(self, graph_paths, capsys):
        assert main(["lod", "tabulate", str(graph_paths[0]), "--type", "http://example.org/Nothing"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_link_writes_same_as_triples(self, graph_paths, tmp_path, capsys):
        output = tmp_path / "links.nt"
        code = main(
            ["lod", "link", str(graph_paths[0]), str(graph_paths[1]),
             "--type", self.AIR_TYPE,
             "--right-type", "http://openbi.example.org/civic/AirReading",
             "--property", "http://purl.org/dc/terms/identifier",
             "--threshold", "0.99", "--output", str(output)]
        )
        assert code == 0
        text = output.read_text(encoding="utf-8")
        assert "owl#sameAs" in text
        assert "wrote 40 owl:sameAs links" in capsys.readouterr().out

    def test_link_mismatched_properties_is_an_error(self, graph_paths, capsys):
        code = main(
            ["lod", "link", str(graph_paths[0]), str(graph_paths[1]),
             "--type", self.AIR_TYPE,
             "--property", "http://purl.org/dc/terms/identifier",
             "--right-property", "http://a.org/x,http://a.org/y"]
        )
        assert code == 2


class TestSalvageCommand:
    @pytest.fixture()
    def corrupt_csv(self, tmp_path):
        path = tmp_path / "corrupt.csv"
        path.write_text("city,pop\nParis,2148000,SPILL\nLyon\nNice,342000\n", encoding="utf-8")
        return path

    @pytest.fixture()
    def corrupt_nt(self, tmp_path):
        path = tmp_path / "corrupt.nt"
        path.write_text(
            '<http://ex/a> <http://ex/p> "v"\n'
            "<http://ex/b> <http://ex/p> <http://ex/a> .\n"
            "garbage\n",
            encoding="utf-8",
        )
        return path

    def test_salvage_csv_with_output_and_report(self, corrupt_csv, tmp_path, capsys):
        cleaned = tmp_path / "clean.csv"
        report = tmp_path / "report.json"
        code = main(
            ["salvage", str(corrupt_csv), "--output", str(cleaned), "--report", str(report)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "cell recovery rate" in output
        assert read_csv(cleaned).column_names == ["city", "pop"]
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["is_clean"] is False
        assert payload["flag_counts"]

    def test_salvage_ntriples_auto_detected(self, corrupt_nt, tmp_path, capsys):
        cleaned = tmp_path / "clean.nt"
        assert main(["salvage", str(corrupt_nt), "--output", str(cleaned)]) == 0
        output = capsys.readouterr().out
        assert "repaired 1 lines, skipped 1 lines" in output
        assert cleaned.read_text(encoding="utf-8").count(" .") == 2

    def test_salvage_clean_file_reports_clean(self, csv_path, capsys):
        assert main(["salvage", str(csv_path)]) == 0
        assert "input was clean" in capsys.readouterr().out

    def test_salvage_strict_hatch_fails_on_corrupt_input(self, corrupt_csv, capsys):
        assert main(["salvage", str(corrupt_csv), "--strict"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_salvage_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["salvage", str(tmp_path / "nope.csv")]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestStoreCommandErrors:
    def test_store_open_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["store", "open", str(tmp_path / "nope.rps")]) == 2
        assert "cannot open store" in capsys.readouterr().err

    def test_store_inspect_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["store", "inspect", str(tmp_path / "nope.rps")]) == 2
        assert "cannot open store" in capsys.readouterr().err

    def test_store_save_missing_input_is_an_error(self, tmp_path, capsys):
        assert main(["store", "save", str(tmp_path / "nope.csv"), str(tmp_path / "out.rps")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_salvage_store_format_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["salvage", str(tmp_path / "nope.rps"), "--format", "store"]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestIngestCommandErrors:
    @pytest.fixture()
    def ingest_store(self, tmp_path):
        from repro.tabular.dataset import Dataset

        path = tmp_path / "requests.rps"
        Dataset.from_rows(
            [{"city": "Paris", "pop": 2148000.0}, {"city": "Lyon", "pop": 516000.0}],
            name="requests",
        ).save(path)
        return path

    @pytest.fixture()
    def ingest_feed(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text('{"city": "Nice", "pop": 342000}\n', encoding="utf-8")
        return path

    def test_missing_feed_fixture_is_an_error(self, ingest_store, tmp_path, capsys):
        assert main(["ingest", str(tmp_path / "nope"), str(ingest_store)]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_missing_store_is_an_error(self, ingest_feed, tmp_path, capsys):
        assert main(["ingest", str(ingest_feed), str(tmp_path / "nope.rps")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_unreachable_reload_url_is_an_error(self, ingest_feed, ingest_store, capsys):
        code = main(
            ["ingest", str(ingest_feed), str(ingest_store), "--reload-url", "http://127.0.0.1:1"]
        )
        assert code == 2
        assert "cannot reach the server" in capsys.readouterr().err

    def test_schema_incompatible_delta_is_an_error(self, ingest_store, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"citta": "Roma"}\n', encoding="utf-8")
        assert main(["ingest", str(bad), str(ingest_store)]) == 2
        err = capsys.readouterr().err
        assert "schema-incompatible" in err and "citta" in err


class TestServeCommand:
    @pytest.fixture(scope="class")
    def store_path(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("cli-serve")
        return service_requests(n_rows=40, seed=7).save(directory / "requests.rps")

    def test_serve_missing_store_is_an_error(self, tmp_path, capsys):
        assert main(["serve", "--store", str(tmp_path / "nope.rps"), "--port", "0"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_serve_corrupt_store_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "garbage.rps"
        path.write_bytes(b"this is not a store file")
        assert main(["serve", "--store", str(path), "--port", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_without_snapshots_is_an_error(self, capsys):
        assert main(["serve", "--port", "0"]) == 2
        assert "at least one --store or --graph" in capsys.readouterr().err

    def test_serve_out_of_range_port_is_an_error(self, store_path, capsys):
        assert main(["serve", "--store", str(store_path), "--port", "99999"]) == 2
        assert "port must be in [0, 65535]" in capsys.readouterr().err

    def test_serve_duplicate_snapshot_names_is_an_error(self, store_path, tmp_path, capsys):
        clash = tmp_path / "requests.rps"
        clash.write_bytes(store_path.read_bytes())
        code = main(
            ["serve", "--store", str(store_path), "--store", str(clash), "--port", "0"]
        )
        assert code == 2
        assert "share the name" in capsys.readouterr().err

    def test_serve_sigterm_is_a_clean_shutdown(self, store_path):
        """The long-running server process exits 0 on SIGTERM."""
        import os
        import signal
        import subprocess
        import sys
        from pathlib import Path

        import repro

        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--store", str(store_path), "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )
        try:
            banner = process.stdout.readline()
            assert "serving requests on http://" in banner
            process.send_signal(signal.SIGTERM)
            output = process.communicate(timeout=30)[0]
        finally:
            if process.poll() is None:
                process.kill()
        assert process.returncode == 0, output
        assert "shutting down (SIGTERM)" in output
