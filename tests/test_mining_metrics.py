"""Unit tests for the evaluation metrics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import MiningError
from repro.mining.metrics import (
    accuracy,
    classification_report,
    cohen_kappa,
    confusion_matrix,
    macro_f1,
    mean_absolute_error,
    mean_squared_error,
    precision_recall_f1,
    r2_score,
    rule_interestingness,
    silhouette_score,
    sum_of_squared_errors,
)


class TestClassificationMetrics:
    def test_accuracy(self):
        assert accuracy(["a", "b", "a"], ["a", "b", "b"]) == pytest.approx(2 / 3)
        assert accuracy(["a"], ["a"]) == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(MiningError):
            accuracy(["a"], ["a", "b"])
        with pytest.raises(MiningError):
            accuracy([], [])

    def test_confusion_matrix(self):
        labels, matrix = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
        assert labels == ["a", "b"]
        assert matrix.tolist() == [[1, 1], [0, 1]]
        assert matrix.sum() == 3

    def test_precision_recall_f1(self):
        stats = precision_recall_f1(["a", "a", "b", "b"], ["a", "b", "b", "b"])
        assert stats["a"]["precision"] == 1.0
        assert stats["a"]["recall"] == pytest.approx(0.5)
        assert stats["b"]["recall"] == 1.0

    def test_macro_f1_perfect(self):
        assert macro_f1(["a", "b"], ["a", "b"]) == 1.0

    def test_macro_f1_handles_missing_class_predictions(self):
        value = macro_f1(["a", "b", "c"], ["a", "a", "a"])
        assert 0.0 < value < 1.0

    def test_cohen_kappa_perfect_and_chance(self):
        assert cohen_kappa(["a", "b", "a", "b"], ["a", "b", "a", "b"]) == 1.0
        chance = cohen_kappa(["a", "a", "b", "b"], ["a", "b", "a", "b"])
        assert chance == pytest.approx(0.0)

    def test_classification_report_keys(self):
        report = classification_report(["a", "b"], ["a", "b"])
        assert set(report) == {"accuracy", "macro_f1", "kappa"}


class TestRegressionMetrics:
    def test_mse_and_mae(self):
        assert mean_squared_error([1, 2, 3], [1, 2, 5]) == pytest.approx(4 / 3)
        assert mean_absolute_error([1, 2, 3], [1, 2, 5]) == pytest.approx(2 / 3)

    def test_r2_perfect_and_mean_predictor(self):
        truth = [1.0, 2.0, 3.0, 4.0]
        assert r2_score(truth, truth) == 1.0
        assert r2_score(truth, [2.5] * 4) == pytest.approx(0.0)

    def test_r2_constant_truth(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0


class TestClusteringMetrics:
    def test_sse_zero_at_centroids(self):
        matrix = np.asarray([[0.0, 0.0], [1.0, 1.0]])
        centroids = matrix.copy()
        assert sum_of_squared_errors(matrix, [0, 1], centroids) == 0.0

    def test_sse_mismatch_rejected(self):
        with pytest.raises(MiningError):
            sum_of_squared_errors(np.zeros((3, 2)), [0, 1], np.zeros((1, 2)))

    def test_silhouette_separated_blobs(self):
        blob_a = np.random.default_rng(0).normal(0, 0.1, size=(10, 2))
        blob_b = np.random.default_rng(1).normal(5, 0.1, size=(10, 2))
        matrix = np.vstack([blob_a, blob_b])
        labels = [0] * 10 + [1] * 10
        assert silhouette_score(matrix, labels) > 0.9

    def test_silhouette_single_cluster_is_zero(self):
        assert silhouette_score(np.zeros((5, 2)), [0] * 5) == 0.0

    def test_silhouette_mismatch_rejected(self):
        with pytest.raises(MiningError):
            silhouette_score(np.zeros((3, 2)), [0, 1])


class TestRuleInterestingness:
    def test_confidence_lift_leverage(self):
        measures = rule_interestingness(0.4, 0.5, 0.3)
        assert measures["confidence"] == pytest.approx(0.75)
        assert measures["lift"] == pytest.approx(1.5)
        assert measures["leverage"] == pytest.approx(0.3 - 0.2)
        assert measures["conviction"] == pytest.approx((1 - 0.5) / (1 - 0.75))

    def test_perfect_confidence_gives_infinite_conviction(self):
        measures = rule_interestingness(0.3, 0.5, 0.3)
        assert math.isinf(measures["conviction"])

    def test_out_of_range_support_rejected(self):
        with pytest.raises(MiningError):
            rule_interestingness(1.2, 0.5, 0.3)
