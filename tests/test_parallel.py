"""Contract tests for the parallel execution tier (``repro.parallel``).

The contract under test (docs/encoded-core.md §6): every ``n_jobs`` call
site produces **bit-identical** results at any worker count — float
summation order included — because both tiers run the same per-unit
function and merge in deterministic unit order; views reach workers
without being pickled; a worker that raises or dies surfaces the call
site's structured error instead of a hang; and the escape hatches
(``n_jobs=1``, ``REPRO_N_JOBS``, ``force_sequential``) route to the
sequential tier.
"""

from __future__ import annotations

import os
import pickle
import signal
import struct
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import make_classification_dataset, service_requests
from repro.exceptions import DataQualityError, MiningError, ParallelError
from repro.lod.graph import Graph
from repro.lod.linker import EntityLinker, LinkRule
from repro.lod.terms import IRI, Literal
from repro.lod.vocabulary import RDF
from repro.mining.ensemble import BaggingClassifier, RandomSubspaceForest
from repro.mining.tree import DecisionTreeClassifier
from repro.mining.validation import cross_validate
from repro.parallel import (
    N_JOBS_ENV,
    ViewHandle,
    effective_n_jobs,
    force_sequential,
    parallel_map,
)
from repro.parallel import pool as pool_module
from repro.quality import measure_quality
from repro.tabular.dataset import Dataset
from repro.tabular.encoded import encode_dataset
from repro.tabular.transforms import group_by


def _bits(value: float) -> bytes:
    """The raw IEEE-754 bits of a float (NaN-safe bit-exact comparison)."""
    return struct.pack("<d", float(value))


def _row_bits(rows):
    """Group-by result rows with every float replaced by its bit pattern."""
    return [
        {k: _bits(v) if isinstance(v, float) else v for k, v in row.items()}
        for row in rows
    ]


@pytest.fixture
def dataset() -> Dataset:
    return make_classification_dataset(n_rows=150, n_numeric=3, n_categorical=1, seed=11)


@pytest.fixture
def dirty_dataset() -> Dataset:
    return service_requests(n_rows=120, dirty=True)


@pytest.fixture
def graph_pair() -> tuple[Graph, Graph, IRI, IRI]:
    entity = IRI("http://example.org/Entity")
    name = IRI("http://example.org/name")
    titles = ["alpha beta", "gamma delta", "epsilon zeta", "alpha betta", "gamma delt", "omega psi"]
    left, right = Graph("left"), Graph("right")
    for i, title in enumerate(titles):
        subject = IRI(f"http://example.org/l{i}")
        left.add(subject, RDF.type, entity)
        left.add(subject, name, Literal(title))
    for i, title in enumerate(titles):
        subject = IRI(f"http://example.org/r{i}")
        right.add(subject, RDF.type, entity)
        right.add(subject, name, Literal(title.upper()))
    return left, right, entity, name


@pytest.fixture
def snapshot_mode(monkeypatch):
    """Force the store-snapshot sharing mode regardless of fork availability."""
    monkeypatch.setattr(pool_module, "_FORCE_MODE", "snapshot")


# ---------------------------------------------------------------------------
# n_jobs resolution and escape hatches
# ---------------------------------------------------------------------------


def test_effective_n_jobs_defaults_to_sequential(monkeypatch):
    monkeypatch.delenv(N_JOBS_ENV, raising=False)
    assert effective_n_jobs() == 1
    assert effective_n_jobs(3) == 3


def test_effective_n_jobs_reads_environment(monkeypatch):
    monkeypatch.setenv(N_JOBS_ENV, "3")
    assert effective_n_jobs() == 3
    assert effective_n_jobs(2) == 2  # explicit argument wins


def test_effective_n_jobs_rejects_bad_environment(monkeypatch):
    monkeypatch.setenv(N_JOBS_ENV, "many")
    with pytest.raises(ParallelError, match="not an integer"):
        effective_n_jobs()


def test_effective_n_jobs_all_cores():
    assert effective_n_jobs(0) == (os.cpu_count() or 1)
    assert effective_n_jobs(-1) == (os.cpu_count() or 1)


def test_force_sequential_hatch():
    force_sequential(True)
    try:
        assert effective_n_jobs(8) == 1
    finally:
        force_sequential(False)
    assert effective_n_jobs(8) == 8


def _probe_nested(context, index):
    return effective_n_jobs(8)


def test_workers_never_nest_parallelism():
    results = parallel_map(_probe_nested, 3, context=None, n_jobs=2)
    assert results == [1, 1, 1]


# ---------------------------------------------------------------------------
# Parity: every call site, parallel vs sequential, bit-exact
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n_jobs", [2, 3])
def test_cross_validate_parity(dataset, n_jobs):
    factory = lambda: DecisionTreeClassifier(max_depth=4)  # noqa: E731
    sequential = cross_validate(factory, dataset, k=4, n_jobs=1)
    parallel = cross_validate(factory, dataset, k=4, n_jobs=n_jobs)
    assert _bits(parallel.accuracy) == _bits(sequential.accuracy)
    assert _bits(parallel.macro_f1) == _bits(sequential.macro_f1)
    assert _bits(parallel.kappa) == _bits(sequential.kappa)
    assert [_bits(a) for a in parallel.fold_accuracies] == [
        _bits(a) for a in sequential.fold_accuracies
    ]
    assert parallel.algorithm == sequential.algorithm


def test_ensemble_fit_parity(dataset):
    sequential = BaggingClassifier(n_estimators=6, feature_fraction=0.6, seed=3, n_jobs=1)
    parallel = BaggingClassifier(n_estimators=6, feature_fraction=0.6, seed=3, n_jobs=2)
    sequential.fit(dataset)
    parallel.fit(dataset)
    assert parallel.estimator_features_ == sequential.estimator_features_
    assert parallel.predict(dataset) == sequential.predict(dataset)
    for left, right in zip(parallel.predict_proba(dataset), sequential.predict_proba(dataset)):
        assert {k: _bits(v) for k, v in left.items()} == {k: _bits(v) for k, v in right.items()}


def test_random_subspace_forest_parity(dataset):
    sequential = RandomSubspaceForest(n_estimators=5, seed=0, n_jobs=1)
    parallel = RandomSubspaceForest(n_estimators=5, seed=0, n_jobs=2)
    sequential.fit(dataset)
    parallel.fit(dataset)
    assert parallel.predict(dataset) == sequential.predict(dataset)


def test_measure_quality_parity(dirty_dataset):
    sequential = measure_quality(dirty_dataset, n_jobs=1)
    parallel = measure_quality(dirty_dataset, n_jobs=2)
    assert list(parallel.measures) == list(sequential.measures)
    for name in sequential.measures:
        assert _bits(parallel.score(name)) == _bits(sequential.score(name)), name


def test_linker_parity(graph_pair):
    left, right, entity, name = graph_pair
    sequential = EntityLinker([LinkRule(name, name)], threshold=0.8, n_jobs=1)
    parallel = EntityLinker([LinkRule(name, name)], threshold=0.8, n_jobs=2)
    expected = sequential.link(left, entity, right, entity)
    actual = parallel.link(left, entity, right, entity)
    assert [(l.left, l.right, _bits(l.score)) for l in actual] == [
        (l.left, l.right, _bits(l.score)) for l in expected
    ]
    assert expected  # the fixture links at least one pair


def test_group_by_parity(dirty_dataset):
    aggregations = {
        "total": ("resolution_days", "sum"),
        "spread": ("resolution_days", "std"),
        "middle": ("resolution_days", "median"),
        "n": ("resolution_days", "count"),
    }
    sequential = group_by(dirty_dataset, ["district"], aggregations, n_jobs=1)
    parallel = group_by(dirty_dataset, ["district"], aggregations, n_jobs=2)
    assert _row_bits(parallel.iter_rows()) == _row_bits(sequential.iter_rows())


def test_env_variable_routes_call_sites(dirty_dataset, monkeypatch):
    baseline = measure_quality(dirty_dataset, n_jobs=1)
    monkeypatch.setenv(N_JOBS_ENV, "2")
    routed = measure_quality(dirty_dataset)
    for name in baseline.measures:
        assert _bits(routed.score(name)) == _bits(baseline.score(name))


# ---------------------------------------------------------------------------
# Snapshot sharing mode (no fork: views travel as store paths)
# ---------------------------------------------------------------------------


def test_snapshot_mode_cross_validate_parity(dataset, snapshot_mode):
    sequential = cross_validate(DecisionTreeClassifier, dataset, k=3, n_jobs=1)
    parallel = cross_validate(DecisionTreeClassifier, dataset, k=3, n_jobs=2)
    assert [_bits(a) for a in parallel.fold_accuracies] == [
        _bits(a) for a in sequential.fold_accuracies
    ]


def test_snapshot_mode_unpicklable_context_falls_back(dataset, snapshot_mode):
    factory = lambda: DecisionTreeClassifier(max_depth=4)  # noqa: E731
    sequential = cross_validate(factory, dataset, k=3, n_jobs=1)
    parallel = cross_validate(factory, dataset, k=3, n_jobs=2)  # lambda: sequential fallback
    assert [_bits(a) for a in parallel.fold_accuracies] == [
        _bits(a) for a in sequential.fold_accuracies
    ]


def test_snapshot_mode_group_by_parity(dirty_dataset, snapshot_mode):
    aggregations = {"total": ("resolution_days", "sum"), "n": ("resolution_days", "count")}
    sequential = group_by(dirty_dataset, ["district"], aggregations, n_jobs=1)
    parallel = group_by(dirty_dataset, ["district"], aggregations, n_jobs=2)
    assert _row_bits(parallel.iter_rows()) == _row_bits(sequential.iter_rows())


def test_snapshot_mode_linker_parity(graph_pair, snapshot_mode):
    left, right, entity, name = graph_pair
    sequential = EntityLinker([LinkRule(name, name)], threshold=0.8, n_jobs=1)
    parallel = EntityLinker([LinkRule(name, name)], threshold=0.8, n_jobs=2)
    expected = sequential.link(left, entity, right, entity)
    actual = parallel.link(left, entity, right, entity)
    assert [(l.left, l.right, _bits(l.score)) for l in actual] == [
        (l.left, l.right, _bits(l.score)) for l in expected
    ]


def test_snapshot_mode_leaves_no_temp_files(dirty_dataset, snapshot_mode):
    before = set(Path(tempfile.gettempdir()).glob("repro-parallel-*"))
    measure_quality(dirty_dataset, n_jobs=2)
    after = set(Path(tempfile.gettempdir()).glob("repro-parallel-*"))
    assert after == before


def test_view_handle_reuses_open_store(tmp_path, dataset):
    path = tmp_path / "reuse.rps"
    dataset.save(path)
    opened = Dataset.open(path)
    handle = ViewHandle(opened)
    handle.ensure_stored(str(tmp_path / "unused"))
    assert handle._path == str(path)  # no second copy written
    clone = pickle.loads(pickle.dumps(handle))
    assert clone.resolve().n_rows == dataset.n_rows
    opened.close()


def test_view_handle_refuses_pickle_before_ensure_stored(dataset):
    with pytest.raises(ParallelError, match="ensure_stored"):
        pickle.dumps(ViewHandle(dataset))


# ---------------------------------------------------------------------------
# Fault injection: failures surface structurally, never hang
# ---------------------------------------------------------------------------


def _raising_worker(context, index):
    if index == 1:
        raise ValueError("unit 1 is broken")
    return index


def _dying_worker(context, index):
    if index == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return index


def test_worker_exception_surfaces_as_structured_error():
    with pytest.raises(MiningError, match="worker failed"):
        parallel_map(_raising_worker, 4, context=None, n_jobs=2, error_cls=MiningError)


def test_worker_death_surfaces_as_structured_error():
    with pytest.raises(DataQualityError, match="died mid-run"):
        parallel_map(_dying_worker, 4, context=None, n_jobs=2, error_cls=DataQualityError)


def _unpicklable_result_worker(context, index):
    if index == 1:
        return lambda: index  # cannot travel back through the result pipe
    return index


def test_unpicklable_result_falls_back_to_sequential():
    assert parallel_map(_unpicklable_result_worker, 3, context=None, n_jobs=2) is None


def test_worker_death_leaves_no_temp_files(monkeypatch):
    monkeypatch.setattr(pool_module, "_FORCE_MODE", "snapshot")
    before = set(Path(tempfile.gettempdir()).glob("repro-parallel-*"))
    with pytest.raises(ParallelError):
        parallel_map(_dying_worker, 4, context=None, n_jobs=2)
    after = set(Path(tempfile.gettempdir()).glob("repro-parallel-*"))
    assert after == before


# ---------------------------------------------------------------------------
# Views never cross the process boundary by value
# ---------------------------------------------------------------------------


def test_encoded_dataset_refuses_pickling(dataset):
    with pytest.raises(TypeError, match="cannot be pickled"):
        pickle.dumps(encode_dataset(dataset))


def test_dataset_pickle_drops_view_state(tmp_path, dataset):
    encode_dataset(dataset)  # populate the instance cache
    clone = pickle.loads(pickle.dumps(dataset))
    assert not hasattr(clone, "_encoded_cache")
    path = tmp_path / "drop.rps"
    dataset.save(path)
    opened = Dataset.open(path)
    encode_dataset(opened)
    state = opened.__getstate__()
    assert "_store_file" not in state
    assert "_encoded_cache" not in state
    opened.close()


def test_no_memmap_crosses_the_pipe(tmp_path, dirty_dataset, monkeypatch, snapshot_mode):
    """Spy: with memmap pickling booby-trapped, a store-backed run still works."""
    path = tmp_path / "spy.rps"
    dirty_dataset.save(path)
    opened = Dataset.open(path)

    def _refuse(self, *args):
        raise AssertionError("a memory map was pickled across the process boundary")

    monkeypatch.setattr(np.memmap, "__reduce__", _refuse, raising=False)
    baseline = measure_quality(dirty_dataset, n_jobs=1)
    profile = measure_quality(opened, n_jobs=2)
    for name in baseline.measures:
        assert _bits(profile.score(name)) == _bits(baseline.score(name))
    opened.close()
