"""Corruption detection and salvage tests for the binary persistence tier.

Seeded byte mutators damage specific sections, truncate the file or mangle
the header; the strict opener must raise a structured
:class:`~repro.exceptions.StoreCorruptionError` naming the offending
section (with the right salvageability verdict), and
:func:`repro.recovery.salvage_store` must recover exactly what the
surviving primaries determine.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets import service_requests
from repro.exceptions import StoreCorruptionError, StoreError
from repro.lod.publish import publish_dataset
from repro.recovery import salvage_store
from repro.store import (
    FORMAT_VERSION,
    StoreFile,
    inspect_store,
    open_dataset,
    open_graph,
    save_dataset,
    save_graph,
)


def _dataset_store(tmp_path, n_rows=60):
    dataset = service_requests(n_rows=n_rows, dirty=True)
    return dataset, save_dataset(dataset, tmp_path / "ds.rps")


def _graph_store(tmp_path, n_rows=30):
    graph = publish_dataset(service_requests(n_rows=n_rows, dirty=True))
    return graph, save_graph(graph, tmp_path / "g.rps")


def _flip_bytes(path, offset, length, seed=0, n_flips=3):
    """Flip ``n_flips`` seeded-random bytes inside ``[offset, offset+length)``."""
    rng = random.Random(seed)
    data = bytearray(path.read_bytes())
    for _ in range(n_flips):
        position = offset + rng.randrange(length)
        data[position] ^= 0xFF
    path.write_bytes(bytes(data))


def _corrupt_section(path, name, seed=0):
    section = StoreFile(path).sections[name]
    _flip_bytes(path, section.offset, section.length, seed=seed)


# -- detection: the error names the section -----------------------------------


def test_bad_magic_names_header(tmp_path):
    _, path = _dataset_store(tmp_path)
    data = bytearray(path.read_bytes())
    data[0:4] = b"NOPE"
    path.write_bytes(bytes(data))
    with pytest.raises(StoreCorruptionError) as excinfo:
        open_dataset(path)
    assert excinfo.value.section == "header"
    assert not excinfo.value.salvageable


def test_unsupported_version_rejected(tmp_path):
    _, path = _dataset_store(tmp_path)
    data = bytearray(path.read_bytes())
    assert data[8] == FORMAT_VERSION
    # bump the version *and* refresh the header CRC so only the version is bad
    import struct
    import zlib

    data[8:10] = struct.pack("<H", FORMAT_VERSION + 1)
    data[44:48] = struct.pack("<I", zlib.crc32(bytes(data[:44])))
    path.write_bytes(bytes(data))
    with pytest.raises(StoreError) as excinfo:
        open_dataset(path)
    assert "version" in str(excinfo.value)


def test_directory_damage_is_detected(tmp_path):
    _, path = _dataset_store(tmp_path)
    _flip_bytes(path, 64 + 24, 8, seed=1)  # entry 0's offset field
    with pytest.raises(StoreCorruptionError) as excinfo:
        open_dataset(path)
    assert excinfo.value.section == "directory"


def test_metadata_damage_is_detected_eagerly(tmp_path):
    _, path = _dataset_store(tmp_path)
    _corrupt_section(path, "meta", seed=2)
    with pytest.raises(StoreCorruptionError) as excinfo:
        open_dataset(path)
    assert excinfo.value.section == "meta"


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_array_damage_is_caught_by_verify(tmp_path, seed):
    dataset, path = _dataset_store(tmp_path)
    section = f"c{seed}.cod" if seed else "c1.cod"
    _corrupt_section(path, section, seed=seed)
    # the default open is O(metadata) and does not checksum bulk arrays
    open_dataset(path)
    with pytest.raises(StoreCorruptionError) as excinfo:
        open_dataset(path, verify=True)
    assert excinfo.value.section == section
    assert excinfo.value.salvageable


def test_graph_array_damage_named_by_verify(tmp_path):
    _, path = _graph_store(tmp_path)
    _corrupt_section(path, "pos.s", seed=3)
    with pytest.raises(StoreCorruptionError) as excinfo:
        open_graph(path, verify=True)
    assert excinfo.value.section == "pos.s"


@pytest.mark.parametrize("fraction", [0.2, 0.5, 0.9])
def test_truncation_sweep_is_detected_and_salvageable(tmp_path, fraction):
    _, path = _dataset_store(tmp_path)
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * fraction)])
    with pytest.raises((StoreCorruptionError, StoreError)) as excinfo:
        open_dataset(path)
    if isinstance(excinfo.value, StoreCorruptionError):
        assert excinfo.value.section in ("header", "directory")


def test_inspect_reports_damage(tmp_path):
    _, path = _dataset_store(tmp_path)
    _corrupt_section(path, "c1.lev", seed=4)
    info = inspect_store(path, verify=True)
    assert "c1.lev" in info["damaged"]
    statuses = {s["name"]: s["status"] for s in info["sections"]}
    assert statuses["c1.lev"] != "ok"
    assert statuses["c0.cod"] == "ok"


# -- salvage: derived rebuilt, primaries drop, vitals abort -------------------


def test_salvage_rebuilds_damaged_derived_sections(tmp_path):
    dataset, path = _dataset_store(tmp_path)
    _corrupt_section(path, "c1.msk", seed=5)
    _corrupt_section(path, "c1.nrm", seed=6)
    result = salvage_store(path)
    assert result.payload == dataset
    assert not result.report.dropped_columns
    assert set(result.report.rebuilt_sections) == {"c1.msk", "c1.nrm"}
    assert set(result.report.damaged_sections) == {"c1.msk", "c1.nrm"}


def test_salvage_drops_column_with_damaged_primary(tmp_path):
    dataset, path = _dataset_store(tmp_path)
    _corrupt_section(path, "c1.cod", seed=7)
    result = salvage_store(path)
    dropped = result.report.dropped_columns
    assert dropped == [dataset.column_names[1]]
    assert result.payload.column_names == [
        name for name in dataset.column_names if name not in dropped
    ]
    for name in result.payload.column_names:
        assert result.payload[name] == dataset[name]
    assert "damaged section" in result.report.summary()


def test_salvage_clean_file_reports_clean(tmp_path):
    dataset, path = _dataset_store(tmp_path)
    result = salvage_store(path)
    assert result.report.is_clean
    assert result.payload == dataset
    assert "clean" in result.report.summary()
    assert result.report.to_json_dict()["is_clean"]


def test_salvage_raises_when_every_column_lost(tmp_path):
    dataset = service_requests(n_rows=20, dirty=True)
    path = save_dataset(dataset, tmp_path / "ds.rps")
    for i, name in enumerate(dataset.column_names):
        store_file = StoreFile(path)
        primary = f"c{i}.val" if f"c{i}.val" in store_file.sections else f"c{i}.cod"
        _corrupt_section(path, primary, seed=10 + i)
    with pytest.raises(StoreError):
        salvage_store(path)


def test_salvage_graph_rebuilds_derived_orders(tmp_path):
    graph, path = _graph_store(tmp_path)
    _corrupt_section(path, "pos.s", seed=8)
    _corrupt_section(path, "osp.bk", seed=9)
    result = salvage_store(path)
    salvaged = result.payload
    assert len(salvaged) == len(graph)
    assert {t.n3() for t in salvaged} == {t.n3() for t in graph}
    assert "pos.s" in result.report.rebuilt_sections
    assert "osp.bk" in result.report.rebuilt_sections


@pytest.mark.parametrize("vital", ["term.txt", "spo.s", "dty.tab"])
def test_salvage_graph_vital_damage_is_fatal(tmp_path, vital):
    _, path = _graph_store(tmp_path)
    _corrupt_section(path, vital, seed=11)
    with pytest.raises(StoreError):
        salvage_store(path)


def test_salvage_truncated_file_recovers_leading_columns(tmp_path):
    dataset, path = _dataset_store(tmp_path)
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * 0.7)])
    result = salvage_store(path)
    assert 0 < len(result.payload.column_names) < len(dataset.column_names)
    for name in result.payload.column_names:
        assert result.payload[name] == dataset[name]
    assert result.report.dropped_columns


# -- CLI ----------------------------------------------------------------------


def test_cli_inspect_flags_damage_and_salvage_recovers(tmp_path, capsys):
    from repro.cli.main import main

    dataset, path = _dataset_store(tmp_path)
    _corrupt_section(path, "c1.cod", seed=12)
    assert main(["store", "inspect", str(path), "--verify"]) == 1
    out_csv = tmp_path / "rescued.csv"
    report_path = tmp_path / "report.json"
    assert (
        main(
            [
                "salvage",
                str(path),
                "--output",
                str(out_csv),
                "--report",
                str(report_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "store salvage" in out
    assert out_csv.exists() and report_path.exists()


def test_cli_open_refuses_corrupt_header(tmp_path, capsys):
    from repro.cli.main import main

    _, path = _dataset_store(tmp_path)
    _flip_bytes(path, 0, 8, seed=13)
    assert main(["store", "open", str(path)]) != 0
